//! Write-ahead log with logical redo records and group commit.
//!
//! Demaq's append-only queues allow purely *logical* logging: every state
//! change is one of a handful of idempotent-by-replay operations, and
//! in-place updates never happen (paper Sec. 4.1: "our append-only approach
//! for message queues simplifies logging and recovery because there are
//! fewer in-place updates"). Deletions by the retention GC need *no*
//! logging at all — after a crash, the decision to delete is re-derivable
//! from slice membership ("frees the system from the need to fully log
//! message deletions").
//!
//! Record framing: `[len u32][crc32 u32][payload]`. A record payload is
//! never empty (encoding always emits at least the tag byte), so a frame
//! header of `len == 0` can only be a zero-filled tail — the scan treats
//! it as end-of-log, never as a record.
//!
//! # Tail semantics (the recovery boundary)
//!
//! [`read_log`] distinguishes two kinds of damage:
//!
//! * **Torn tail** — a truncated frame, a CRC mismatch, or a zero-length
//!   frame header. These are the expected signatures of a crash
//!   mid-`write`: the scan stops cleanly at the last valid record and
//!   reports the discarded byte count ([`LogScan::discarded`], which
//!   excludes trailing zeros — journaling filesystems can legitimately
//!   recover a crashed file with its size extended but the data
//!   unwritten, i.e. a zero tail). The zero-frame check runs *before*
//!   the CRC check: `crc32` of an empty payload is 0, so an all-zero
//!   frame would otherwise read as CRC-valid and then fail decoding as
//!   hard corruption, turning an ordinary crash into a refused recovery.
//!   Everything before the tear is trusted.
//! * **Hard corruption** — a frame whose CRC verifies but whose payload
//!   does not decode. A CRC-valid-but-undecodable record cannot be
//!   produced by a torn write (the CRC covers the whole payload), so it
//!   means the file was damaged *in the middle* or written by a
//!   different/buggy encoder — recovery must not guess past it and
//!   [`read_log`] returns [`StoreError::Corrupt`].
//!
//! [`LogWriter::open`] truncates the file to the valid prefix before
//! appending. Without that truncation, post-crash appends would land
//! *after* the torn garbage and every later committed record would be
//! unreachable to the next recovery scan (which stops at the tear).
//!
//! # Group commit
//!
//! Committers append their records under the append mutex, then make them
//! durable through a leader/follower protocol ([`LogWriter::sync_to`]):
//! the first committer to arrive becomes the sync leader, optionally waits
//! a short batching window ([`GroupCommitCfg::max_wait`]) for more commits
//! to pile in, flushes, and issues a single `sync_data` covering every
//! follower's LSN — *outside* the append mutex, so appends continue while
//! the device syncs. Followers block on a condvar until some leader's sync
//! covers their commit LSN.

use crate::error::{Result, StoreError};
use crate::types::{Lsn, MsgId, PayloadBytes, PropValue, TxnId};
use demaq_obs::{Counter, Histogram, Registry};
use parking_lot::{Condvar, Mutex};
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// One logical WAL record.
#[derive(Debug, Clone, PartialEq)]
pub enum LogRecord {
    Begin {
        txn: TxnId,
    },
    Commit {
        txn: TxnId,
    },
    Abort {
        txn: TxnId,
    },
    /// A message entered a queue.
    Enqueue {
        txn: TxnId,
        queue: String,
        msg: MsgId,
        /// Shared handle onto the enqueuer's payload buffer — building
        /// this record never copies the payload. Decoding (recovery)
        /// validates UTF-8 once in `get_str`, so the handle it yields is
        /// proof-carrying too.
        payload: PayloadBytes,
        props: Vec<(String, PropValue)>,
        enqueued_at: i64,
    },
    /// The rule engine finished processing a message.
    MarkProcessed {
        txn: TxnId,
        msg: MsgId,
    },
    /// A message joined a slice (slicing name + key).
    SliceAdd {
        txn: TxnId,
        slicing: String,
        key: PropValue,
        msg: MsgId,
    },
    /// A slice began a new lifetime.
    SliceReset {
        txn: TxnId,
        slicing: String,
        key: PropValue,
    },
    /// Fuzzy checkpoint marker: state as of this LSN lives in the named
    /// snapshot file.
    Checkpoint {
        snapshot: String,
    },
    /// Causal lineage of one rule-driven enqueue: `msg` was created (into
    /// `queue`) by `rule` firing on `parent`; `root` names the causal
    /// tree. Redundant with the message's provenance system properties by
    /// design — it lets the full causal index be rebuilt from WAL records
    /// alone, with a durable LSN per edge.
    Lineage {
        txn: TxnId,
        msg: MsgId,
        parent: MsgId,
        root: MsgId,
        rule: String,
        queue: String,
    },
}

const T_BEGIN: u8 = 1;
const T_COMMIT: u8 = 2;
const T_ABORT: u8 = 3;
const T_ENQUEUE: u8 = 4;
const T_PROCESSED: u8 = 5;
const T_SLICE_ADD: u8 = 6;
const T_SLICE_RESET: u8 = 7;
const T_CHECKPOINT: u8 = 8;
const T_LINEAGE: u8 = 9;

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn get_str(buf: &[u8], at: &mut usize) -> Option<String> {
    let len = u32::from_le_bytes(buf.get(*at..*at + 4)?.try_into().ok()?) as usize;
    *at += 4;
    let s = std::str::from_utf8(buf.get(*at..*at + len)?)
        .ok()?
        .to_string();
    *at += len;
    Some(s)
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn get_u64(buf: &[u8], at: &mut usize) -> Option<u64> {
    let v = u64::from_le_bytes(buf.get(*at..*at + 8)?.try_into().ok()?);
    *at += 8;
    Some(v)
}

fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn get_i64(buf: &[u8], at: &mut usize) -> Option<i64> {
    let v = i64::from_le_bytes(buf.get(*at..*at + 8)?.try_into().ok()?);
    *at += 8;
    Some(v)
}

impl LogRecord {
    /// Serialize the record payload (without framing).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            LogRecord::Begin { txn } => {
                out.push(T_BEGIN);
                put_u64(&mut out, txn.0);
            }
            LogRecord::Commit { txn } => {
                out.push(T_COMMIT);
                put_u64(&mut out, txn.0);
            }
            LogRecord::Abort { txn } => {
                out.push(T_ABORT);
                put_u64(&mut out, txn.0);
            }
            LogRecord::Enqueue {
                txn,
                queue,
                msg,
                payload,
                props,
                enqueued_at,
            } => {
                out.push(T_ENQUEUE);
                put_u64(&mut out, txn.0);
                put_str(&mut out, queue);
                put_u64(&mut out, msg.0);
                put_i64(&mut out, *enqueued_at);
                put_str(&mut out, payload);
                out.extend_from_slice(&(props.len() as u32).to_le_bytes());
                for (name, value) in props {
                    put_str(&mut out, name);
                    value.encode(&mut out);
                }
            }
            LogRecord::MarkProcessed { txn, msg } => {
                out.push(T_PROCESSED);
                put_u64(&mut out, txn.0);
                put_u64(&mut out, msg.0);
            }
            LogRecord::SliceAdd {
                txn,
                slicing,
                key,
                msg,
            } => {
                out.push(T_SLICE_ADD);
                put_u64(&mut out, txn.0);
                put_str(&mut out, slicing);
                key.encode(&mut out);
                put_u64(&mut out, msg.0);
            }
            LogRecord::SliceReset { txn, slicing, key } => {
                out.push(T_SLICE_RESET);
                put_u64(&mut out, txn.0);
                put_str(&mut out, slicing);
                key.encode(&mut out);
            }
            LogRecord::Checkpoint { snapshot } => {
                out.push(T_CHECKPOINT);
                put_str(&mut out, snapshot);
            }
            LogRecord::Lineage {
                txn,
                msg,
                parent,
                root,
                rule,
                queue,
            } => {
                out.push(T_LINEAGE);
                put_u64(&mut out, txn.0);
                put_u64(&mut out, msg.0);
                put_u64(&mut out, parent.0);
                put_u64(&mut out, root.0);
                put_str(&mut out, rule);
                put_str(&mut out, queue);
            }
        }
        out
    }

    /// Deserialize a record payload.
    pub fn decode(buf: &[u8]) -> Option<LogRecord> {
        let mut at = 0usize;
        let tag = *buf.first()?;
        at += 1;
        let rec = match tag {
            T_BEGIN => LogRecord::Begin {
                txn: TxnId(get_u64(buf, &mut at)?),
            },
            T_COMMIT => LogRecord::Commit {
                txn: TxnId(get_u64(buf, &mut at)?),
            },
            T_ABORT => LogRecord::Abort {
                txn: TxnId(get_u64(buf, &mut at)?),
            },
            T_ENQUEUE => {
                let txn = TxnId(get_u64(buf, &mut at)?);
                let queue = get_str(buf, &mut at)?;
                let msg = MsgId(get_u64(buf, &mut at)?);
                let enqueued_at = get_i64(buf, &mut at)?;
                // `get_str` validated UTF-8; the handle carries the proof.
                let payload = PayloadBytes::from(get_str(buf, &mut at)?);
                let n = u32::from_le_bytes(buf.get(at..at + 4)?.try_into().ok()?) as usize;
                at += 4;
                let mut props = Vec::with_capacity(n);
                for _ in 0..n {
                    let name = get_str(buf, &mut at)?;
                    let value = PropValue::decode(buf, &mut at)?;
                    props.push((name, value));
                }
                LogRecord::Enqueue {
                    txn,
                    queue,
                    msg,
                    payload,
                    props,
                    enqueued_at,
                }
            }
            T_PROCESSED => LogRecord::MarkProcessed {
                txn: TxnId(get_u64(buf, &mut at)?),
                msg: MsgId(get_u64(buf, &mut at)?),
            },
            T_SLICE_ADD => LogRecord::SliceAdd {
                txn: TxnId(get_u64(buf, &mut at)?),
                slicing: get_str(buf, &mut at)?,
                key: PropValue::decode(buf, &mut at)?,
                msg: MsgId(get_u64(buf, &mut at)?),
            },
            T_SLICE_RESET => LogRecord::SliceReset {
                txn: TxnId(get_u64(buf, &mut at)?),
                slicing: get_str(buf, &mut at)?,
                key: PropValue::decode(buf, &mut at)?,
            },
            T_CHECKPOINT => LogRecord::Checkpoint {
                snapshot: get_str(buf, &mut at)?,
            },
            T_LINEAGE => LogRecord::Lineage {
                txn: TxnId(get_u64(buf, &mut at)?),
                msg: MsgId(get_u64(buf, &mut at)?),
                parent: MsgId(get_u64(buf, &mut at)?),
                root: MsgId(get_u64(buf, &mut at)?),
                rule: get_str(buf, &mut at)?,
                queue: get_str(buf, &mut at)?,
            },
            _ => return None,
        };
        if at != buf.len() {
            return None;
        }
        Some(rec)
    }

    /// The transaction this record belongs to, if any.
    pub fn txn(&self) -> Option<TxnId> {
        match self {
            LogRecord::Begin { txn }
            | LogRecord::Commit { txn }
            | LogRecord::Abort { txn }
            | LogRecord::Enqueue { txn, .. }
            | LogRecord::MarkProcessed { txn, .. }
            | LogRecord::SliceAdd { txn, .. }
            | LogRecord::SliceReset { txn, .. }
            | LogRecord::Lineage { txn, .. } => Some(*txn),
            LogRecord::Checkpoint { .. } => None,
        }
    }
}

/// CRC32 (IEEE 802.3, reflected) — small standalone implementation to keep
/// the dependency set minimal.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// Byte-at-a-time lookup table for [`crc32`], built at compile time. The
/// checksum runs over every WAL byte on the commit path, so the naive
/// bit-loop (8 shift/xor rounds per byte) was a measurable slice of
/// per-commit CPU; the table does one shift/xor per byte.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0usize;
    while i < 256 {
        let mut crc = i as u32;
        let mut j = 0;
        while j < 8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
            j += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// Group-commit tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupCommitCfg {
    /// Stop the batching window early once this many commits are pending
    /// for the next sync. `<= 1` disables grouping entirely: every commit
    /// performs its own fsync while holding the append mutex (the
    /// fsync-per-commit baseline measured by bench E9).
    pub max_batch: usize,
    /// Cap on how long a sync leader waits for more committers to join its
    /// batch. The wait is *adaptive*: the leader only waits while fewer
    /// commits are pending than the previous batch delivered (recent
    /// concurrency predicts current concurrency), so a lone committer
    /// never waits at all, while N concurrent committers quickly converge
    /// on batches of N. Zero disables the window entirely — batching then
    /// only happens among commits that pile up during an in-flight fsync.
    ///
    /// Deliberately *not* tuned to chase maximal batches: measured on a
    /// single-core host, forcing the batch up to the full worker count
    /// (probing windows) reduced throughput — with every worker blocked
    /// in one big batch, nothing overlaps the device flush, whereas
    /// smaller batches hide the fsync behind the other workers' compute.
    pub max_wait: Duration,
}

impl Default for GroupCommitCfg {
    fn default() -> GroupCommitCfg {
        GroupCommitCfg {
            max_batch: 64,
            max_wait: Duration::from_micros(200),
        }
    }
}

/// Registry handles for WAL metrics, attached once by the store.
struct WalObs {
    /// `demaq_store_group_commit_batch_size` — commits made durable per
    /// WAL sync (a value histogram, not nanoseconds).
    batch_size: Histogram,
    /// `demaq_store_wal_syncs_total` — fsyncs issued.
    syncs: Counter,
    /// `demaq_store_group_commit_waits_total` — commits that blocked on
    /// another committer's in-flight sync instead of issuing their own.
    sync_waits: Counter,
}

/// The write side of the log.
pub struct LogWriter {
    inner: Mutex<WriterInner>,
    /// Cloned handle used for `sync_data` outside the append mutex.
    sync_handle: File,
    cfg: GroupCommitCfg,
    sync_state: Mutex<SyncState>,
    /// Durability waiters: followers blocked until a sync covers their
    /// commit LSN, notified once per completed sync (plus leadership
    /// handoff). Kept separate from [`LogWriter::window_cv`] so the
    /// per-commit registration in `append_commit` never wakes them —
    /// with one shared condvar every arriving commit woke every blocked
    /// follower just to recheck and sleep again, a storm of futex
    /// round-trips that was pure overhead on the commit path.
    sync_cv: Condvar,
    /// The batching-window leader (at most one), woken per new commit so
    /// its window can fill early.
    window_cv: Condvar,
    obs: OnceLock<WalObs>,
}

struct WriterInner {
    file: BufWriter<File>,
    /// Next byte offset (== LSN of the next record).
    offset: u64,
    /// Bytes written since open (stats for the recovery bench).
    bytes_logged: u64,
    /// Crash-injection failpoint (`DEMAQ_WAL_CRASH_AFTER_BYTES`): byte
    /// budget left before the writer tears a record mid-write and aborts
    /// the process. Test-harness only; `None` in normal operation.
    crash_budget: Option<u64>,
}

struct SyncState {
    /// Bytes `[0, durable)` of the file are known fsynced.
    durable: u64,
    /// A leader is currently flushing/syncing.
    leader_active: bool,
    /// Commit records appended since the last sync consumed the batch.
    pending_commits: u64,
    /// Size of the last consumed batch — the adaptive window's estimate of
    /// current commit concurrency.
    prev_batch: u64,
}

impl LogWriter {
    /// Open (or create) the log at `path`, truncating any torn tail so new
    /// appends are contiguous with the last valid record.
    pub fn open(path: &Path, cfg: GroupCommitCfg) -> Result<LogWriter> {
        // Scan before opening for append: find the valid prefix.
        let scan = read_log(path)?;
        let file = OpenOptions::new()
            .read(true)
            .append(true)
            .create(true)
            .open(path)?;
        if file.metadata()?.len() > scan.valid_len {
            // A torn tail from a previous crash: cut it off, or appends
            // would land beyond garbage the next recovery scan stops at.
            file.set_len(scan.valid_len)?;
            file.sync_data()?;
        }
        let sync_handle = file.try_clone()?;
        let crash_budget = std::env::var("DEMAQ_WAL_CRASH_AFTER_BYTES")
            .ok()
            .and_then(|v| v.parse::<u64>().ok());
        Ok(LogWriter {
            inner: Mutex::new(WriterInner {
                file: BufWriter::new(file),
                offset: scan.valid_len,
                bytes_logged: 0,
                crash_budget,
            }),
            sync_handle,
            cfg,
            sync_state: Mutex::new(SyncState {
                durable: 0,
                leader_active: false,
                pending_commits: 0,
                prev_batch: 1,
            }),
            sync_cv: Condvar::new(),
            window_cv: Condvar::new(),
            obs: OnceLock::new(),
        })
    }

    /// Resolve metric handles in `registry` (idempotent; first call wins).
    pub fn attach_obs(&self, registry: &Registry) {
        let _ = self.obs.set(WalObs {
            batch_size: registry.histogram("demaq_store_group_commit_batch_size"),
            syncs: registry.counter("demaq_store_wal_syncs_total"),
            sync_waits: registry.counter("demaq_store_group_commit_waits_total"),
        });
    }

    /// Append a record; returns its LSN. Does not sync.
    pub fn append(&self, rec: &LogRecord) -> Result<Lsn> {
        let payload = rec.encode();
        let mut framed = Vec::with_capacity(payload.len() + 8);
        framed.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        framed.extend_from_slice(&crc32(&payload).to_le_bytes());
        framed.extend_from_slice(&payload);
        let mut inner = self.inner.lock();
        if let Some(budget) = inner.crash_budget {
            if (framed.len() as u64) > budget {
                // Failpoint: tear this record mid-write and die, exactly
                // like a crash between two disk writes.
                let cut = budget as usize;
                let _ = inner.file.write_all(&framed[..cut]);
                let _ = inner.file.flush();
                std::process::abort();
            }
            inner.crash_budget = Some(budget - framed.len() as u64);
        }
        let lsn = Lsn(inner.offset);
        inner.file.write_all(&framed)?;
        inner.offset += framed.len() as u64;
        inner.bytes_logged += framed.len() as u64;
        Ok(lsn)
    }

    /// Append a commit record and register it with the group-commit
    /// coordinator. Returns `(commit LSN, durable target)` — the commit is
    /// durable once a sync covers the target (see [`LogWriter::sync_to`]).
    pub fn append_commit(&self, txn: TxnId) -> Result<(Lsn, u64)> {
        let lsn = self.append(&LogRecord::Commit { txn })?;
        let target = self.inner.lock().offset;
        let mut st = self.sync_state.lock();
        st.pending_commits += 1;
        drop(st);
        // Wake only a leader sitting in its batching window — durability
        // waiters on `sync_cv` don't care about new arrivals.
        self.window_cv.notify_one();
        Ok((lsn, target))
    }

    /// Block until bytes `[0, target)` are fsynced — the leader/follower
    /// group-commit protocol. The first arriving committer becomes leader,
    /// waits up to [`GroupCommitCfg::max_wait`] for the batch to fill,
    /// then flushes (briefly under the append mutex) and fsyncs *outside*
    /// all locks; everyone whose target the sync covered is released.
    pub fn sync_to(&self, target: u64) -> Result<()> {
        let mut st = self.sync_state.lock();
        loop {
            if st.durable >= target {
                return Ok(());
            }
            if st.leader_active {
                if let Some(obs) = self.obs.get() {
                    obs.sync_waits.inc();
                }
                self.sync_cv.wait(&mut st);
                continue;
            }
            st.leader_active = true;
            if self.cfg.max_wait > Duration::ZERO {
                // Adaptive window: gather as many commits as the previous
                // batch had (capped by max_batch / max_wait). prev_batch=1
                // (no recent concurrency) skips the wait entirely.
                let target = st.prev_batch.clamp(1, self.cfg.max_batch as u64);
                if st.pending_commits < target {
                    let deadline = Instant::now() + self.cfg.max_wait;
                    while st.pending_commits < target {
                        let now = Instant::now();
                        if now >= deadline {
                            break;
                        }
                        if self.window_cv.wait_for(&mut st, deadline - now).timed_out() {
                            break;
                        }
                    }
                }
            }
            let batch = st.pending_commits;
            st.pending_commits = 0;
            st.prev_batch = batch.max(1);
            drop(st);

            let result = (|| -> Result<u64> {
                let covered = {
                    let mut inner = self.inner.lock();
                    inner.file.flush()?;
                    inner.offset
                };
                // The expensive part happens with no lock held: appends
                // and other committers keep running.
                self.sync_handle.sync_data()?;
                Ok(covered)
            })();

            st = self.sync_state.lock();
            st.leader_active = false;
            match result {
                Ok(covered) => {
                    st.durable = st.durable.max(covered);
                    if let Some(obs) = self.obs.get() {
                        obs.syncs.inc();
                        if batch > 0 {
                            obs.batch_size.record_ns(batch);
                        }
                    }
                    self.sync_cv.notify_all();
                    // Loop: `covered >= target` always holds here (we
                    // appended before calling), so this returns.
                }
                Err(e) => {
                    // Let a follower take over leadership and retry.
                    self.sync_cv.notify_all();
                    return Err(e);
                }
            }
        }
    }

    /// Flush and fsync while holding the append mutex — the serialized
    /// fsync-per-commit baseline ([`GroupCommitCfg::max_batch`] `<= 1`).
    pub fn sync_each(&self) -> Result<()> {
        let mut inner = self.inner.lock();
        inner.file.flush()?;
        inner.file.get_ref().sync_data()?;
        let covered = inner.offset;
        drop(inner);
        let mut st = self.sync_state.lock();
        st.durable = st.durable.max(covered);
        let batch = std::mem::take(&mut st.pending_commits);
        drop(st);
        if let Some(obs) = self.obs.get() {
            obs.syncs.inc();
            obs.batch_size.record_ns(batch.max(1));
        }
        self.sync_cv.notify_all();
        Ok(())
    }

    /// Make everything appended so far durable (checkpoints, explicit
    /// `sync()` under the batch policy). Cooperates with in-flight group
    /// syncs.
    pub fn sync_now(&self) -> Result<()> {
        let end = self.inner.lock().offset;
        self.sync_to(end)
    }

    /// Total bytes appended since open (benchmark metric E4).
    pub fn bytes_logged(&self) -> u64 {
        self.inner.lock().bytes_logged
    }

    /// Current end-of-log LSN.
    pub fn end_lsn(&self) -> Lsn {
        Lsn(self.inner.lock().offset)
    }
}

/// Result of scanning a log file: the valid records plus where the valid
/// prefix ends (for tail truncation and discard reporting).
#[derive(Debug, Default)]
pub struct LogScan {
    pub records: Vec<(Lsn, LogRecord)>,
    /// Byte length of the valid prefix — the offset right after the last
    /// valid record. [`LogWriter::open`] truncates the file here.
    pub valid_len: u64,
    /// Trailing bytes discarded as a torn tail — the suffix after
    /// `valid_len` up to the last non-zero byte. A zero-filled tail does
    /// not count; zero for a clean file.
    pub discarded: u64,
}

/// Read every valid record from a log file.
///
/// A truncated frame or CRC mismatch is a *torn tail*: the scan stops
/// cleanly and reports the discarded suffix length. A frame whose CRC
/// verifies but whose payload does not decode is *hard corruption* (a torn
/// write cannot produce it) and yields [`StoreError::Corrupt`] — see the
/// module docs for why the two are treated differently.
pub fn read_log(path: &Path) -> Result<LogScan> {
    let mut file = match File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(LogScan::default()),
        Err(e) => return Err(e.into()),
    };
    let mut buf = Vec::new();
    file.read_to_end(&mut buf)?;
    let mut out = Vec::new();
    let mut at = 0usize;
    while at + 8 <= buf.len() {
        let len = u32::from_le_bytes(buf[at..at + 4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(buf[at + 4..at + 8].try_into().unwrap());
        if len == 0 {
            // A record payload is never empty, so this is a zero-filled
            // tail (a tear that never got past the header, or a
            // filesystem that recovered the crashed file's size without
            // its data): end of log. Checked before the CRC — crc32 of
            // an empty payload is 0, so an all-zero frame would
            // otherwise read as CRC-valid and then fail decoding as
            // hard corruption, refusing recovery after an ordinary
            // crash.
            break;
        }
        if at + 8 + len > buf.len() {
            break; // torn tail: truncated frame
        }
        let payload = &buf[at + 8..at + 8 + len];
        if crc32(payload) != crc {
            break; // torn tail: CRC mismatch
        }
        match LogRecord::decode(payload) {
            Some(rec) => out.push((Lsn(at as u64), rec)),
            None => {
                return Err(StoreError::Corrupt(format!(
                    "undecodable log record at offset {at} (CRC valid — not a torn write)"
                )))
            }
        }
        at += 8 + len;
    }
    // Torn bytes are the suffix after the valid prefix *minus* trailing
    // zeros: a zero-filled tail is an ordinary crash signature (see the
    // module docs), not damage worth reporting.
    let tail_end = buf
        .iter()
        .rposition(|&b| b != 0)
        .map_or(0, |p| p + 1)
        .max(at);
    Ok(LogScan {
        records: out,
        valid_len: at as u64,
        discarded: (tail_end - at) as u64,
    })
}

/// Truncate the log file (after a checkpoint has captured its effects).
pub fn truncate_log(path: &Path) -> Result<()> {
    let file = OpenOptions::new()
        .write(true)
        .create(true)
        .truncate(true)
        .open(path)?;
    file.sync_data()?;
    Ok(())
}

/// Convenience for the recovery bench: current size of the log file.
pub fn log_size(path: &PathBuf) -> u64 {
    std::fs::metadata(path).map(|m| m.len()).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Seek, SeekFrom};
    use tempfile::TempDir;

    fn writer(path: &Path) -> LogWriter {
        LogWriter::open(path, GroupCommitCfg::default()).unwrap()
    }

    fn sample_records() -> Vec<LogRecord> {
        vec![
            LogRecord::Begin { txn: TxnId(1) },
            LogRecord::Enqueue {
                txn: TxnId(1),
                queue: "finance".into(),
                msg: MsgId(10),
                payload: "<order><id>7</id></order>".into(),
                props: vec![
                    ("orderID".into(), PropValue::Str("7".into())),
                    ("isVIP".into(), PropValue::Bool(false)),
                ],
                enqueued_at: 123_456,
            },
            LogRecord::SliceAdd {
                txn: TxnId(1),
                slicing: "orders".into(),
                key: PropValue::Str("7".into()),
                msg: MsgId(10),
            },
            LogRecord::MarkProcessed {
                txn: TxnId(1),
                msg: MsgId(9),
            },
            LogRecord::SliceReset {
                txn: TxnId(1),
                slicing: "orders".into(),
                key: PropValue::Str("6".into()),
            },
            LogRecord::Commit { txn: TxnId(1) },
            LogRecord::Abort { txn: TxnId(2) },
            LogRecord::Lineage {
                txn: TxnId(1),
                msg: MsgId(11),
                parent: MsgId(10),
                root: MsgId(3),
                rule: "forwardOrder".into(),
                queue: "finance".into(),
            },
            LogRecord::Checkpoint {
                snapshot: "ckpt-000001".into(),
            },
        ]
    }

    #[test]
    fn record_encode_decode_roundtrip() {
        for rec in sample_records() {
            let buf = rec.encode();
            let back = LogRecord::decode(&buf).unwrap();
            assert_eq!(back, rec);
        }
    }

    #[test]
    fn write_then_read_log() {
        let dir = TempDir::new().unwrap();
        let path = dir.path().join("wal.log");
        let w = writer(&path);
        for rec in sample_records() {
            w.append(&rec).unwrap();
        }
        w.sync_now().unwrap();
        let scan = read_log(&path).unwrap();
        let read: Vec<LogRecord> = scan.records.into_iter().map(|(_, r)| r).collect();
        assert_eq!(read, sample_records());
        assert_eq!(scan.discarded, 0);
    }

    #[test]
    fn torn_tail_is_ignored_and_reported() {
        let dir = TempDir::new().unwrap();
        let path = dir.path().join("wal.log");
        let w = writer(&path);
        for rec in sample_records() {
            w.append(&rec).unwrap();
        }
        w.sync_now().unwrap();
        let clean_len = w.end_lsn().0;
        drop(w);
        // Garbage at the append offset (inside the preallocated zeros),
        // simulating a torn write where the writer actually writes.
        let mut f = OpenOptions::new().write(true).open(&path).unwrap();
        f.seek(SeekFrom::Start(clean_len)).unwrap();
        f.write_all(&[200, 1, 0, 0, 77, 77]).unwrap();
        let scan = read_log(&path).unwrap();
        assert_eq!(scan.records.len(), sample_records().len());
        assert_eq!(scan.valid_len, clean_len);
        // Only the torn bytes count — the zero padding after them doesn't.
        assert_eq!(scan.discarded, 6);
    }

    /// A zero-filled tail — what a journaling filesystem can leave behind
    /// when it recovers a crashed file's size but not its data — must scan
    /// as an ordinary torn tail with nothing discarded, not as hard
    /// corruption. (An all-zero frame header is `len == 0, crc == 0`, and
    /// crc32 of the empty payload *is* 0: without the explicit zero-length
    /// check the scan would call it CRC-valid, fail to decode it, and
    /// refuse recovery after an ordinary crash.)
    #[test]
    fn zero_filled_tail_is_a_clean_tail() {
        let dir = TempDir::new().unwrap();
        let path = dir.path().join("wal.log");
        let w = writer(&path);
        w.append(&LogRecord::Begin { txn: TxnId(1) }).unwrap();
        w.append(&LogRecord::Commit { txn: TxnId(1) }).unwrap();
        w.sync_now().unwrap();
        let clean_len = w.end_lsn().0;
        drop(w);
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&[0u8; 4096]).unwrap();
        drop(f);
        let scan = read_log(&path).unwrap();
        assert_eq!(scan.records.len(), 2);
        assert_eq!(scan.valid_len, clean_len);
        assert_eq!(scan.discarded, 0, "a zero tail must not read as torn");
    }

    /// The torn-tail regression: records appended *after* reopening over a
    /// torn tail must be readable. The old `LogWriter::open` started at
    /// `metadata().len()`, placing them beyond the garbage where the scan
    /// never reaches.
    #[test]
    fn reopen_over_torn_tail_keeps_later_appends_readable() {
        let dir = TempDir::new().unwrap();
        let path = dir.path().join("wal.log");
        let clean_len;
        {
            let w = writer(&path);
            w.append(&LogRecord::Begin { txn: TxnId(1) }).unwrap();
            w.append(&LogRecord::Commit { txn: TxnId(1) }).unwrap();
            w.sync_now().unwrap();
            clean_len = w.end_lsn().0;
        }
        // Crash mid-record: half a frame of garbage at the append offset.
        {
            let mut f = OpenOptions::new().write(true).open(&path).unwrap();
            f.seek(SeekFrom::Start(clean_len)).unwrap();
            f.write_all(&[90, 0, 0, 0, 1, 2, 3]).unwrap();
        }
        // Reopen appends a fresh committed record…
        {
            let w = writer(&path);
            w.append(&LogRecord::Begin { txn: TxnId(2) }).unwrap();
            w.append(&LogRecord::Commit { txn: TxnId(2) }).unwrap();
            w.sync_now().unwrap();
        }
        // …and recovery must see it.
        let recs: Vec<LogRecord> = read_log(&path)
            .unwrap()
            .records
            .into_iter()
            .map(|(_, r)| r)
            .collect();
        assert_eq!(
            recs,
            vec![
                LogRecord::Begin { txn: TxnId(1) },
                LogRecord::Commit { txn: TxnId(1) },
                LogRecord::Begin { txn: TxnId(2) },
                LogRecord::Commit { txn: TxnId(2) },
            ],
            "the post-reopen commit is lost behind the torn tail"
        );
    }

    #[test]
    fn corrupted_crc_stops_scan() {
        let dir = TempDir::new().unwrap();
        let path = dir.path().join("wal.log");
        let w = writer(&path);
        for rec in sample_records() {
            w.append(&rec).unwrap();
        }
        w.sync_now().unwrap();
        let clean_len = w.end_lsn().0;
        drop(w);
        // Flip a byte in the middle of the valid prefix: scan stops at
        // the damaged record and reports the damaged suffix (up to where
        // the real records end — the zero padding beyond is not damage).
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = (clean_len / 2) as usize;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let scan = read_log(&path).unwrap();
        assert!(scan.records.len() < sample_records().len());
        assert_eq!(
            scan.valid_len + scan.discarded,
            clean_len,
            "discarded must account for the whole damaged suffix"
        );
        assert!(scan.discarded > 0);
    }

    /// The recovery boundary: CRC-valid but undecodable is *hard
    /// corruption* (a torn write can't produce it), not a clean tail.
    #[test]
    fn crc_valid_undecodable_record_is_hard_corruption() {
        let dir = TempDir::new().unwrap();
        let path = dir.path().join("wal.log");
        let w = writer(&path);
        w.append(&LogRecord::Begin { txn: TxnId(1) }).unwrap();
        w.sync_now().unwrap();
        let clean_len = w.end_lsn().0;
        drop(w);
        // A frame with a bogus record tag but a *correct* CRC, at the
        // append offset where a real (buggy) writer would put it.
        let payload = [0xEEu8, 1, 2, 3];
        let mut f = OpenOptions::new().write(true).open(&path).unwrap();
        f.seek(SeekFrom::Start(clean_len)).unwrap();
        f.write_all(&(payload.len() as u32).to_le_bytes()).unwrap();
        f.write_all(&crc32(&payload).to_le_bytes()).unwrap();
        f.write_all(&payload).unwrap();
        drop(f);
        match read_log(&path) {
            Err(StoreError::Corrupt(msg)) => {
                assert!(msg.contains("undecodable"), "{msg}");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn lsn_monotonic_and_reopen_appends() {
        let dir = TempDir::new().unwrap();
        let path = dir.path().join("wal.log");
        let l1;
        {
            let w = writer(&path);
            l1 = w.append(&LogRecord::Begin { txn: TxnId(1) }).unwrap();
            w.sync_now().unwrap();
        }
        let w = writer(&path);
        let l2 = w.append(&LogRecord::Commit { txn: TxnId(1) }).unwrap();
        assert!(l2 > l1);
        w.sync_now().unwrap();
        assert_eq!(read_log(&path).unwrap().records.len(), 2);
    }

    #[test]
    fn crc32_known_vector() {
        // Standard test vector: CRC-32 of "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn truncate_resets_log() {
        let dir = TempDir::new().unwrap();
        let path = dir.path().join("wal.log");
        let w = writer(&path);
        w.append(&LogRecord::Begin { txn: TxnId(1) }).unwrap();
        w.sync_now().unwrap();
        drop(w);
        truncate_log(&path).unwrap();
        assert!(read_log(&path).unwrap().records.is_empty());
    }

    #[test]
    fn concurrent_group_commits_all_become_durable() {
        let dir = TempDir::new().unwrap();
        let path = dir.path().join("wal.log");
        let w = std::sync::Arc::new(writer(&path));
        let threads: Vec<_> = (0..8u64)
            .map(|t| {
                let w = std::sync::Arc::clone(&w);
                std::thread::spawn(move || {
                    for i in 0..25u64 {
                        let txn = TxnId(t * 1000 + i);
                        w.append(&LogRecord::Begin { txn }).unwrap();
                        let (_, target) = w.append_commit(txn).unwrap();
                        w.sync_to(target).unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        drop(w);
        let commits = read_log(&path)
            .unwrap()
            .records
            .iter()
            .filter(|(_, r)| matches!(r, LogRecord::Commit { .. }))
            .count();
        assert_eq!(commits, 200);
    }

    #[test]
    fn sync_to_past_lsn_returns_without_new_sync() {
        let dir = TempDir::new().unwrap();
        let path = dir.path().join("wal.log");
        let w = writer(&path);
        w.append(&LogRecord::Begin { txn: TxnId(1) }).unwrap();
        let (_, target) = w.append_commit(TxnId(1)).unwrap();
        w.sync_to(target).unwrap();
        // Already durable: must not block or error.
        w.sync_to(target).unwrap();
        w.sync_to(0).unwrap();
    }
}
