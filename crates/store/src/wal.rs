//! Write-ahead log with logical redo records.
//!
//! Demaq's append-only queues allow purely *logical* logging: every state
//! change is one of a handful of idempotent-by-replay operations, and
//! in-place updates never happen (paper Sec. 4.1: "our append-only approach
//! for message queues simplifies logging and recovery because there are
//! fewer in-place updates"). Deletions by the retention GC need *no*
//! logging at all — after a crash, the decision to delete is re-derivable
//! from slice membership ("frees the system from the need to fully log
//! message deletions").
//!
//! Record framing: `[len u32][crc32 u32][payload]`; a torn tail is detected
//! by length/CRC mismatch and truncated (standard WAL practice).

use crate::error::{Result, StoreError};
use crate::types::{Lsn, MsgId, PropValue, TxnId};
use parking_lot::Mutex;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};

/// One logical WAL record.
#[derive(Debug, Clone, PartialEq)]
pub enum LogRecord {
    Begin {
        txn: TxnId,
    },
    Commit {
        txn: TxnId,
    },
    Abort {
        txn: TxnId,
    },
    /// A message entered a queue.
    Enqueue {
        txn: TxnId,
        queue: String,
        msg: MsgId,
        payload: String,
        props: Vec<(String, PropValue)>,
        enqueued_at: i64,
    },
    /// The rule engine finished processing a message.
    MarkProcessed {
        txn: TxnId,
        msg: MsgId,
    },
    /// A message joined a slice (slicing name + key).
    SliceAdd {
        txn: TxnId,
        slicing: String,
        key: PropValue,
        msg: MsgId,
    },
    /// A slice began a new lifetime.
    SliceReset {
        txn: TxnId,
        slicing: String,
        key: PropValue,
    },
    /// Fuzzy checkpoint marker: state as of this LSN lives in the named
    /// snapshot file.
    Checkpoint {
        snapshot: String,
    },
}

const T_BEGIN: u8 = 1;
const T_COMMIT: u8 = 2;
const T_ABORT: u8 = 3;
const T_ENQUEUE: u8 = 4;
const T_PROCESSED: u8 = 5;
const T_SLICE_ADD: u8 = 6;
const T_SLICE_RESET: u8 = 7;
const T_CHECKPOINT: u8 = 8;

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn get_str(buf: &[u8], at: &mut usize) -> Option<String> {
    let len = u32::from_le_bytes(buf.get(*at..*at + 4)?.try_into().ok()?) as usize;
    *at += 4;
    let s = std::str::from_utf8(buf.get(*at..*at + len)?)
        .ok()?
        .to_string();
    *at += len;
    Some(s)
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn get_u64(buf: &[u8], at: &mut usize) -> Option<u64> {
    let v = u64::from_le_bytes(buf.get(*at..*at + 8)?.try_into().ok()?);
    *at += 8;
    Some(v)
}

fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn get_i64(buf: &[u8], at: &mut usize) -> Option<i64> {
    let v = i64::from_le_bytes(buf.get(*at..*at + 8)?.try_into().ok()?);
    *at += 8;
    Some(v)
}

impl LogRecord {
    /// Serialize the record payload (without framing).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            LogRecord::Begin { txn } => {
                out.push(T_BEGIN);
                put_u64(&mut out, txn.0);
            }
            LogRecord::Commit { txn } => {
                out.push(T_COMMIT);
                put_u64(&mut out, txn.0);
            }
            LogRecord::Abort { txn } => {
                out.push(T_ABORT);
                put_u64(&mut out, txn.0);
            }
            LogRecord::Enqueue {
                txn,
                queue,
                msg,
                payload,
                props,
                enqueued_at,
            } => {
                out.push(T_ENQUEUE);
                put_u64(&mut out, txn.0);
                put_str(&mut out, queue);
                put_u64(&mut out, msg.0);
                put_i64(&mut out, *enqueued_at);
                put_str(&mut out, payload);
                out.extend_from_slice(&(props.len() as u32).to_le_bytes());
                for (name, value) in props {
                    put_str(&mut out, name);
                    value.encode(&mut out);
                }
            }
            LogRecord::MarkProcessed { txn, msg } => {
                out.push(T_PROCESSED);
                put_u64(&mut out, txn.0);
                put_u64(&mut out, msg.0);
            }
            LogRecord::SliceAdd {
                txn,
                slicing,
                key,
                msg,
            } => {
                out.push(T_SLICE_ADD);
                put_u64(&mut out, txn.0);
                put_str(&mut out, slicing);
                key.encode(&mut out);
                put_u64(&mut out, msg.0);
            }
            LogRecord::SliceReset { txn, slicing, key } => {
                out.push(T_SLICE_RESET);
                put_u64(&mut out, txn.0);
                put_str(&mut out, slicing);
                key.encode(&mut out);
            }
            LogRecord::Checkpoint { snapshot } => {
                out.push(T_CHECKPOINT);
                put_str(&mut out, snapshot);
            }
        }
        out
    }

    /// Deserialize a record payload.
    pub fn decode(buf: &[u8]) -> Option<LogRecord> {
        let mut at = 0usize;
        let tag = *buf.first()?;
        at += 1;
        let rec = match tag {
            T_BEGIN => LogRecord::Begin {
                txn: TxnId(get_u64(buf, &mut at)?),
            },
            T_COMMIT => LogRecord::Commit {
                txn: TxnId(get_u64(buf, &mut at)?),
            },
            T_ABORT => LogRecord::Abort {
                txn: TxnId(get_u64(buf, &mut at)?),
            },
            T_ENQUEUE => {
                let txn = TxnId(get_u64(buf, &mut at)?);
                let queue = get_str(buf, &mut at)?;
                let msg = MsgId(get_u64(buf, &mut at)?);
                let enqueued_at = get_i64(buf, &mut at)?;
                let payload = get_str(buf, &mut at)?;
                let n = u32::from_le_bytes(buf.get(at..at + 4)?.try_into().ok()?) as usize;
                at += 4;
                let mut props = Vec::with_capacity(n);
                for _ in 0..n {
                    let name = get_str(buf, &mut at)?;
                    let value = PropValue::decode(buf, &mut at)?;
                    props.push((name, value));
                }
                LogRecord::Enqueue {
                    txn,
                    queue,
                    msg,
                    payload,
                    props,
                    enqueued_at,
                }
            }
            T_PROCESSED => LogRecord::MarkProcessed {
                txn: TxnId(get_u64(buf, &mut at)?),
                msg: MsgId(get_u64(buf, &mut at)?),
            },
            T_SLICE_ADD => LogRecord::SliceAdd {
                txn: TxnId(get_u64(buf, &mut at)?),
                slicing: get_str(buf, &mut at)?,
                key: PropValue::decode(buf, &mut at)?,
                msg: MsgId(get_u64(buf, &mut at)?),
            },
            T_SLICE_RESET => LogRecord::SliceReset {
                txn: TxnId(get_u64(buf, &mut at)?),
                slicing: get_str(buf, &mut at)?,
                key: PropValue::decode(buf, &mut at)?,
            },
            T_CHECKPOINT => LogRecord::Checkpoint {
                snapshot: get_str(buf, &mut at)?,
            },
            _ => return None,
        };
        if at != buf.len() {
            return None;
        }
        Some(rec)
    }

    /// The transaction this record belongs to, if any.
    pub fn txn(&self) -> Option<TxnId> {
        match self {
            LogRecord::Begin { txn }
            | LogRecord::Commit { txn }
            | LogRecord::Abort { txn }
            | LogRecord::Enqueue { txn, .. }
            | LogRecord::MarkProcessed { txn, .. }
            | LogRecord::SliceAdd { txn, .. }
            | LogRecord::SliceReset { txn, .. } => Some(*txn),
            LogRecord::Checkpoint { .. } => None,
        }
    }
}

/// CRC32 (IEEE 802.3, reflected) — small standalone implementation to keep
/// the dependency set minimal.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Durability policy for commits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalSync {
    /// fsync on every commit.
    Always,
    /// fsync when asked explicitly / at checkpoints only (group commit is
    /// driven by the store, which batches several commits per sync).
    OnDemand,
}

/// The write side of the log.
pub struct LogWriter {
    inner: Mutex<WriterInner>,
    sync: WalSync,
}

struct WriterInner {
    file: BufWriter<File>,
    /// Next byte offset (== LSN of the next record).
    offset: u64,
    /// Bytes written since the last sync (stats for the recovery bench).
    bytes_logged: u64,
}

impl LogWriter {
    /// Open (append mode) or create the log at `path`.
    pub fn open(path: &Path, sync: WalSync) -> Result<LogWriter> {
        let file = OpenOptions::new()
            .read(true)
            .append(true)
            .create(true)
            .open(path)?;
        let offset = file.metadata()?.len();
        Ok(LogWriter {
            inner: Mutex::new(WriterInner {
                file: BufWriter::new(file),
                offset,
                bytes_logged: 0,
            }),
            sync,
        })
    }

    /// Append a record; returns its LSN. Does not sync.
    pub fn append(&self, rec: &LogRecord) -> Result<Lsn> {
        let payload = rec.encode();
        let mut framed = Vec::with_capacity(payload.len() + 8);
        framed.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        framed.extend_from_slice(&crc32(&payload).to_le_bytes());
        framed.extend_from_slice(&payload);
        let mut inner = self.inner.lock();
        let lsn = Lsn(inner.offset);
        inner.file.write_all(&framed)?;
        inner.offset += framed.len() as u64;
        inner.bytes_logged += framed.len() as u64;
        Ok(lsn)
    }

    /// Append a commit record and make it durable per the sync policy.
    pub fn commit(&self, txn: TxnId) -> Result<Lsn> {
        let lsn = self.append(&LogRecord::Commit { txn })?;
        match self.sync {
            WalSync::Always => self.sync_now()?,
            WalSync::OnDemand => {
                self.inner.lock().file.flush()?;
            }
        }
        Ok(lsn)
    }

    /// Flush buffers and fsync.
    pub fn sync_now(&self) -> Result<()> {
        let mut inner = self.inner.lock();
        inner.file.flush()?;
        inner.file.get_ref().sync_data()?;
        Ok(())
    }

    /// Total bytes appended since open (benchmark metric E4).
    pub fn bytes_logged(&self) -> u64 {
        self.inner.lock().bytes_logged
    }

    /// Current end-of-log LSN.
    pub fn end_lsn(&self) -> Lsn {
        Lsn(self.inner.lock().offset)
    }
}

/// Read every valid record from a log file; stops cleanly at a torn tail.
pub fn read_log(path: &Path) -> Result<Vec<(Lsn, LogRecord)>> {
    let mut file = match File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e.into()),
    };
    let mut buf = Vec::new();
    file.read_to_end(&mut buf)?;
    let mut out = Vec::new();
    let mut at = 0usize;
    while at + 8 <= buf.len() {
        let len = u32::from_le_bytes(buf[at..at + 4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(buf[at + 4..at + 8].try_into().unwrap());
        if at + 8 + len > buf.len() {
            break; // torn tail
        }
        let payload = &buf[at + 8..at + 8 + len];
        if crc32(payload) != crc {
            break; // torn/corrupt tail
        }
        match LogRecord::decode(payload) {
            Some(rec) => out.push((Lsn(at as u64), rec)),
            None => {
                return Err(StoreError::Corrupt(format!(
                    "undecodable log record at offset {at}"
                )))
            }
        }
        at += 8 + len;
    }
    Ok(out)
}

/// Truncate the log file (after a checkpoint has captured its effects).
pub fn truncate_log(path: &Path) -> Result<()> {
    let file = OpenOptions::new()
        .write(true)
        .create(true)
        .truncate(true)
        .open(path)?;
    file.sync_data()?;
    Ok(())
}

/// Convenience for the recovery bench: current size of the log file.
pub fn log_size(path: &PathBuf) -> u64 {
    std::fs::metadata(path).map(|m| m.len()).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempfile::TempDir;

    fn sample_records() -> Vec<LogRecord> {
        vec![
            LogRecord::Begin { txn: TxnId(1) },
            LogRecord::Enqueue {
                txn: TxnId(1),
                queue: "finance".into(),
                msg: MsgId(10),
                payload: "<order><id>7</id></order>".into(),
                props: vec![
                    ("orderID".into(), PropValue::Str("7".into())),
                    ("isVIP".into(), PropValue::Bool(false)),
                ],
                enqueued_at: 123_456,
            },
            LogRecord::SliceAdd {
                txn: TxnId(1),
                slicing: "orders".into(),
                key: PropValue::Str("7".into()),
                msg: MsgId(10),
            },
            LogRecord::MarkProcessed {
                txn: TxnId(1),
                msg: MsgId(9),
            },
            LogRecord::SliceReset {
                txn: TxnId(1),
                slicing: "orders".into(),
                key: PropValue::Str("6".into()),
            },
            LogRecord::Commit { txn: TxnId(1) },
            LogRecord::Abort { txn: TxnId(2) },
            LogRecord::Checkpoint {
                snapshot: "ckpt-000001".into(),
            },
        ]
    }

    #[test]
    fn record_encode_decode_roundtrip() {
        for rec in sample_records() {
            let buf = rec.encode();
            let back = LogRecord::decode(&buf).unwrap();
            assert_eq!(back, rec);
        }
    }

    #[test]
    fn write_then_read_log() {
        let dir = TempDir::new().unwrap();
        let path = dir.path().join("wal.log");
        let w = LogWriter::open(&path, WalSync::Always).unwrap();
        for rec in sample_records() {
            w.append(&rec).unwrap();
        }
        w.sync_now().unwrap();
        let read: Vec<LogRecord> = read_log(&path)
            .unwrap()
            .into_iter()
            .map(|(_, r)| r)
            .collect();
        assert_eq!(read, sample_records());
    }

    #[test]
    fn torn_tail_is_ignored() {
        let dir = TempDir::new().unwrap();
        let path = dir.path().join("wal.log");
        let w = LogWriter::open(&path, WalSync::Always).unwrap();
        for rec in sample_records() {
            w.append(&rec).unwrap();
        }
        w.sync_now().unwrap();
        drop(w);
        // Append garbage simulating a torn write.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&[200, 1, 0, 0, 77, 77]).unwrap();
        let read = read_log(&path).unwrap();
        assert_eq!(read.len(), sample_records().len());
    }

    #[test]
    fn corrupted_crc_stops_scan() {
        let dir = TempDir::new().unwrap();
        let path = dir.path().join("wal.log");
        let w = LogWriter::open(&path, WalSync::Always).unwrap();
        for rec in sample_records() {
            w.append(&rec).unwrap();
        }
        w.sync_now().unwrap();
        drop(w);
        // Flip a byte in the middle: scan stops at the damaged record.
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let read = read_log(&path).unwrap();
        assert!(read.len() < sample_records().len());
    }

    #[test]
    fn lsn_monotonic_and_reopen_appends() {
        let dir = TempDir::new().unwrap();
        let path = dir.path().join("wal.log");
        let l1;
        {
            let w = LogWriter::open(&path, WalSync::Always).unwrap();
            l1 = w.append(&LogRecord::Begin { txn: TxnId(1) }).unwrap();
            w.sync_now().unwrap();
        }
        let w = LogWriter::open(&path, WalSync::Always).unwrap();
        let l2 = w.append(&LogRecord::Commit { txn: TxnId(1) }).unwrap();
        assert!(l2 > l1);
        w.sync_now().unwrap();
        assert_eq!(read_log(&path).unwrap().len(), 2);
    }

    #[test]
    fn crc32_known_vector() {
        // Standard test vector: CRC-32 of "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn truncate_resets_log() {
        let dir = TempDir::new().unwrap();
        let path = dir.path().join("wal.log");
        let w = LogWriter::open(&path, WalSync::Always).unwrap();
        w.append(&LogRecord::Begin { txn: TxnId(1) }).unwrap();
        w.sync_now().unwrap();
        drop(w);
        truncate_log(&path).unwrap();
        assert!(read_log(&path).unwrap().is_empty());
    }
}
