//! Crash-injection harness: a child process drives a concurrent commit
//! workload against a real store and is killed at randomized points —
//! including mid-WAL-write via the `DEMAQ_WAL_CRASH_AFTER_BYTES`
//! byte-budget failpoint, which tears a record in half and aborts. The
//! parent then recovers the directory and asserts the durability
//! invariants:
//!
//! * **acked ⇒ durable** — every commit the child acknowledged (by writing
//!   the message id to an ack file *after* `commit()` returned) is present
//!   with its exact payload and slice membership;
//! * **no uncommitted effects** — recovery only replays transactions with
//!   a commit record; queue order stays strictly ascending by id;
//! * **replay order = runtime order** — slice membership order after
//!   recovery equals the order of `SliceAdd` records of committed
//!   transactions in the WAL;
//! * **causal chain survives** — each workload transaction enqueues a
//!   parent and a derived message linked by `record_lineage`; after
//!   recovery the lineage rebuilt from the WAL must equal the pre-crash
//!   chain for every acked derived message, and the store's lineage set
//!   must be exactly the committed `Lineage` records of the WAL.
//!
//! The child is this same test binary re-invoked (`current_exe()`) with
//! the `#[ignore]`d `crash_child_body` test selected; without
//! `DEMAQ_CRASH_CHILD_DIR` set, that test is a no-op, so a plain
//! `cargo test -- --ignored` run stays harmless.
//!
//! Iteration count: `DEMAQ_CRASH_ITERS` (default 12; CI runs 100).
//!
//! Apply-mode coverage: rounds alternate between batched logical apply
//! (the default commit path: followers hand their post-WAL apply work to a
//! leader that applies the whole batch under one state-lock acquisition)
//! and the unbatched baseline (`DEMAQ_CRASH_BATCHED=0` in the child).
//! Every round additionally recovers a byte-for-byte copy of the crashed
//! directory under the *opposite* apply mode and asserts the two stores
//! agree exactly — messages, payloads, slice membership, lineage — since
//! recovery replays the same WAL either way. A mid-batch SIGKILL must not
//! make the batched configuration recover differently from the unbatched
//! one.

use demaq_store::wal::{read_log, LogRecord};
use demaq_store::{MessageStore, MsgId, PropValue, QueueMode, StoreOptions, SyncPolicy, TxnId};
use std::collections::{HashMap, HashSet};
use std::io::Write;
use std::path::Path;
use std::process::{Command, Stdio};
use std::sync::Mutex;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

const QUEUE: &str = "q";
const SLICING: &str = "s";
const ACK_FILE: &str = "acks.txt";
const CHILD_THREADS: u64 = 3;

fn slice_key() -> PropValue {
    PropValue::Str("k".into())
}

fn open_store_mode(dir: &Path, batched_apply: bool) -> MessageStore {
    let mut opts = StoreOptions::new(dir);
    opts.sync = SyncPolicy::Always;
    opts.batched_apply = batched_apply;
    let store = MessageStore::open(opts).unwrap();
    store
        .create_queue(QUEUE, QueueMode::Persistent, 0)
        .unwrap();
    store
}

/// Child-side store: apply mode comes from the environment so the parent
/// can run the same workload binary in either configuration.
fn open_store(dir: &Path) -> MessageStore {
    let batched = std::env::var("DEMAQ_CRASH_BATCHED").as_deref() != Ok("0");
    open_store_mode(dir, batched)
}

/// The workload process. Selected by the parent via
/// `crash_child_body --exact --ignored`; a no-op unless
/// `DEMAQ_CRASH_CHILD_DIR` points at the working directory.
#[test]
#[ignore = "crash-harness child body; only meaningful when re-invoked by the parent test"]
fn crash_child_body() {
    let Ok(dir) = std::env::var("DEMAQ_CRASH_CHILD_DIR") else {
        return;
    };
    let dir = std::path::PathBuf::from(dir);
    let store = open_store(&dir);
    let acks = Mutex::new(
        std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(dir.join(ACK_FILE))
            .unwrap(),
    );
    // Commit forever (until killed or the WAL failpoint aborts us):
    // enqueue + slice-add per transaction, ack only after commit returns.
    std::thread::scope(|s| {
        for t in 0..CHILD_THREADS {
            let store = &store;
            let acks = &acks;
            s.spawn(move || {
                for i in 0.. {
                    let txn = store.begin();
                    let payload = format!("payload-{t}-{i}");
                    let msg = store
                        .enqueue(txn, QUEUE, payload.clone().into(), Vec::new(), 0)
                        .unwrap();
                    store.slice_add(txn, SLICING, slice_key(), msg).unwrap();
                    // A derived message causally linked to `msg`, so the
                    // parent can check the rebuilt lineage chain.
                    let derived_payload = format!("derived-{t}-{i}:{}", msg.0);
                    let derived = store
                        .enqueue(txn, QUEUE, derived_payload.clone().into(), Vec::new(), 0)
                        .unwrap();
                    store.slice_add(txn, SLICING, slice_key(), derived).unwrap();
                    store
                        .record_lineage(txn, derived, msg, msg, "spawn", QUEUE)
                        .unwrap();
                    store.commit(txn).unwrap();
                    // One write syscall per line: `writeln!` issues one
                    // write per format fragment, and a SIGKILL between
                    // them leaves a torn line the parent would misread
                    // as a corrupted ack.
                    let line = format!("{} {payload}\n{} {derived_payload}\n", msg.0, derived.0);
                    let mut f = acks.lock().unwrap();
                    f.write_all(line.as_bytes()).unwrap();
                    f.flush().unwrap();
                }
            });
        }
    });
}

/// Tiny xorshift PRNG so the harness needs no rand crate.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

struct Outcome {
    acked: usize,
    recovered: usize,
    torn: bool,
}

/// Recoverable-state fingerprint used to compare two recovered stores.
type StateDigest = (
    Vec<(u64, String, bool)>, // queue: (id, payload, processed) in order
    Vec<MsgId>,               // slice membership in presentation order
    Vec<(MsgId, MsgId, MsgId, String)>, // lineage: (msg, parent, root, rule)
);

fn state_digest(store: &MessageStore) -> StateDigest {
    let queue: Vec<(u64, String, bool)> = store
        .queue_messages(QUEUE)
        .unwrap()
        .iter()
        .map(|m| (m.id.0, m.payload.to_string(), m.processed))
        .collect();
    let members = store.slice_members(SLICING, &slice_key());
    let mut lineage: Vec<(MsgId, MsgId, MsgId, String)> = store
        .lineage_edges()
        .iter()
        .map(|e| (e.msg, e.parent, e.root, e.rule.clone()))
        .collect();
    lineage.sort();
    (queue, members, lineage)
}

/// Run one kill-recover round. `crash_after_bytes` arms the mid-WAL-write
/// failpoint in the child; otherwise the child is SIGKILLed after
/// `kill_after`. `batched` selects the child's (and the recovering
/// parent's) logical-apply mode.
fn run_round(
    dir: &Path,
    kill_after: Duration,
    crash_after_bytes: Option<u64>,
    batched: bool,
) -> Outcome {
    let exe = std::env::current_exe().unwrap();
    let mut cmd = Command::new(&exe);
    cmd.args(["crash_child_body", "--exact", "--ignored", "--nocapture"])
        .env("DEMAQ_CRASH_CHILD_DIR", dir)
        .env("DEMAQ_CRASH_BATCHED", if batched { "1" } else { "0" })
        .stdout(Stdio::null())
        .stderr(Stdio::null());
    if let Some(bytes) = crash_after_bytes {
        cmd.env("DEMAQ_WAL_CRASH_AFTER_BYTES", bytes.to_string());
    }
    let mut child = cmd.spawn().unwrap();
    if crash_after_bytes.is_some() {
        // The failpoint aborts the child on its own; just don't hang if
        // something goes wrong.
        let deadline = Instant::now() + Duration::from_secs(10);
        while child.try_wait().unwrap().is_none() {
            if Instant::now() > deadline {
                child.kill().unwrap();
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    } else {
        std::thread::sleep(kill_after);
        child.kill().unwrap();
    }
    let _ = child.wait();

    // What did the child acknowledge before dying? A kill can still in
    // principle tear the final line mid-write; an unterminated tail is
    // an un-acked commit, not a corrupted one, so drop it.
    let ack_text = std::fs::read_to_string(dir.join(ACK_FILE)).unwrap_or_default();
    let complete = match ack_text.rfind('\n') {
        Some(end) => &ack_text[..end],
        None => "",
    };
    let acked: Vec<(MsgId, String)> = complete
        .lines()
        .filter_map(|l| {
            let (id, payload) = l.split_once(' ')?;
            Some((MsgId(id.parse().ok()?), payload.to_string()))
        })
        .collect();

    // Scan the raw WAL *before* recovery truncates the torn tail: collect
    // the committed-transaction SliceAdd order and whether a tear exists.
    let mut wal_files: Vec<_> = std::fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| {
            let p = e.unwrap().path();
            let name = p.file_name()?.to_str()?.to_string();
            (name.starts_with("wal-") && name.ends_with(".log")).then_some(p)
        })
        .collect();
    wal_files.sort();
    let mut committed: HashSet<TxnId> = HashSet::new();
    let mut adds: Vec<(TxnId, MsgId)> = Vec::new();
    let mut wal_lineage: Vec<(TxnId, MsgId, MsgId)> = Vec::new();
    let mut torn = false;
    for f in &wal_files {
        let scan = read_log(f).unwrap();
        torn |= scan.discarded > 0;
        for (_, rec) in scan.records {
            match rec {
                LogRecord::Commit { txn } => {
                    committed.insert(txn);
                }
                LogRecord::SliceAdd { txn, msg, .. } => adds.push((txn, msg)),
                LogRecord::Lineage {
                    txn, msg, parent, ..
                } => wal_lineage.push((txn, msg, parent)),
                _ => {}
            }
        }
    }
    let mut wal_members: Vec<MsgId> = adds
        .iter()
        .filter(|(txn, _)| committed.contains(txn))
        .map(|(_, msg)| *msg)
        .collect();
    // `slice_members` presents arrival (id) order — recovery's internal
    // insertion order is log order, covered by the in-crate
    // `runtime_slice_order_matches_wal_order` test. Compare id-sorted.
    wal_members.sort();

    // Snapshot the crashed directory byte-for-byte before recovery touches
    // it, so the same post-crash state can be recovered under the opposite
    // apply mode and compared below.
    let alt = tempfile::TempDir::new().unwrap();
    for entry in std::fs::read_dir(dir).unwrap() {
        let p = entry.unwrap().path();
        if p.is_file() {
            std::fs::copy(&p, alt.path().join(p.file_name().unwrap())).unwrap();
        }
    }

    // Recover. (This truncates the torn tail and replays the valid prefix
    // scanned above.)
    let store = open_store_mode(dir, batched);

    // Invariant: acked ⇒ durable, payload intact, slice membership intact.
    let members: Vec<MsgId> = store.slice_members(SLICING, &slice_key());
    let member_set: HashSet<MsgId> = members.iter().copied().collect();
    for (id, payload) in &acked {
        let msg = store.message(*id).unwrap_or_else(|e| {
            panic!("acked message {id:?} lost after recovery: {e:?}");
        });
        assert_eq!(&msg.payload, payload, "payload of acked {id:?} corrupted");
        assert!(
            member_set.contains(id),
            "acked {id:?} missing from slice after recovery"
        );
    }

    // Invariant: queue order is strictly ascending by id (arrival order).
    let queue_ids: Vec<u64> = store
        .queue_messages(QUEUE)
        .unwrap()
        .iter()
        .map(|m| m.id.0)
        .collect();
    assert!(
        queue_ids.windows(2).all(|w| w[0] < w[1]),
        "queue order not ascending: {queue_ids:?}"
    );

    // Invariant: slice membership after recovery is exactly the committed
    // `SliceAdd` set from the WAL — nothing lost, nothing uncommitted.
    assert_eq!(
        members, wal_members,
        "slice membership after recovery diverges from the WAL's committed adds"
    );

    // Invariant: the causal chain rebuilt from the WAL equals the
    // pre-crash chain. (a) The store's lineage set is exactly the
    // committed `Lineage` records; (b) every acked derived message (its
    // payload names its parent) resolves to that parent.
    let mut committed_edges: Vec<(MsgId, MsgId)> = wal_lineage
        .iter()
        .filter(|(txn, _, _)| committed.contains(txn))
        .map(|(_, msg, parent)| (*msg, *parent))
        .collect();
    committed_edges.sort();
    let mut recovered_edges: Vec<(MsgId, MsgId)> = store
        .lineage_edges()
        .iter()
        .map(|e| (e.msg, e.parent))
        .collect();
    recovered_edges.sort();
    assert_eq!(
        recovered_edges, committed_edges,
        "recovered lineage diverges from the WAL's committed Lineage records"
    );
    for (id, payload) in &acked {
        let Some((_, parent)) = payload.split_once(':') else {
            continue; // not a derived message
        };
        let parent = MsgId(parent.parse().unwrap());
        let edge = store.lineage_of(*id).unwrap_or_else(|| {
            panic!("acked derived message {id:?} lost its lineage after recovery")
        });
        assert_eq!(
            edge.parent, parent,
            "acked derived message {id:?} rebuilt with the wrong parent"
        );
        assert_eq!(edge.root, parent);
        assert_eq!(edge.rule, "spawn");
        assert!(
            edge.lsn.is_some(),
            "recovered lineage of {id:?} lost its WAL LSN"
        );
    }

    // Invariant: no uncommitted effects — every surviving message's
    // payload is one the workload actually wrote (shape check), and the
    // store holds exactly the committed enqueues.
    let committed_msgs = wal_members.len();
    assert_eq!(
        store.message_count(),
        committed_msgs,
        "store holds effects of uncommitted transactions"
    );

    // Invariant: apply mode is invisible to recovery. The copy of the
    // crashed directory, recovered under the opposite mode, must agree
    // exactly — messages, payloads, slice membership, lineage.
    let alt_store = open_store_mode(alt.path(), !batched);
    assert_eq!(
        state_digest(&store),
        state_digest(&alt_store),
        "recovery under batched={} diverges from batched={} on the same crashed directory",
        batched,
        !batched
    );
    drop(alt_store);

    // The store must stay writable after recovery (regression for the
    // torn-tail append bug): one more commit, then reopen and find it.
    let txn = store.begin();
    let probe = store
        .enqueue(txn, QUEUE, "probe".into(), Vec::new(), 0)
        .unwrap();
    store.slice_add(txn, SLICING, slice_key(), probe).unwrap();
    store.commit(txn).unwrap();
    drop(store);
    let store = open_store_mode(dir, batched);
    assert_eq!(
        store.message(probe).unwrap().payload,
        "probe",
        "post-recovery commit lost on second recovery"
    );

    Outcome {
        acked: acked.len(),
        recovered: committed_msgs,
        torn,
    }
}

#[test]
fn crash_injection_randomized_kill_points() {
    let iters: u64 = std::env::var("DEMAQ_CRASH_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(12);
    let seed = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .unwrap()
        .as_nanos() as u64
        | 1;
    let mut rng = Rng(seed);
    let mut stats: HashMap<&str, u64> = HashMap::new();
    let mut total_acked = 0usize;
    let mut torn_rounds = 0u64;
    for i in 0..iters {
        let tmp = tempfile::TempDir::new().unwrap();
        // Alternate apply modes so mid-batch kills of the batched leader
        // and the unbatched baseline both see every kill mechanism.
        let batched = i % 2 == 0;
        *stats
            .entry(if batched { "batched" } else { "unbatched" })
            .or_default() += 1;
        // Alternate kill mechanisms; both tear at unpredictable points.
        let outcome = if i % 3 == 2 {
            // Byte-budget failpoint: the WAL writer dies mid-record after
            // a random number of log bytes — a deterministic torn tail.
            *stats.entry("failpoint").or_default() += 1;
            run_round(
                tmp.path(),
                Duration::ZERO,
                Some(64 + rng.below(4096)),
                batched,
            )
        } else {
            // SIGKILL after a random delay (0–25 ms) — whatever the
            // workload was mid-way through, including mid-write.
            *stats.entry("sigkill").or_default() += 1;
            run_round(
                tmp.path(),
                Duration::from_micros(rng.below(25_000)),
                None,
                batched,
            )
        };
        assert!(
            outcome.recovered >= outcome.acked,
            "recovered fewer commits than were acked"
        );
        total_acked += outcome.acked;
        torn_rounds += outcome.torn as u64;
    }
    // Sanity: the workload must actually have committed work to protect in
    // at least some rounds, or the harness is testing nothing.
    assert!(
        iters < 10 || total_acked > 0,
        "no round acked any commit — harness is not exercising the commit path (seed {seed})"
    );
    eprintln!(
        "crash harness: {iters} rounds {stats:?}, {total_acked} acked commits verified, \
         {torn_rounds} rounds recovered over a torn WAL tail (seed {seed})"
    );
}
