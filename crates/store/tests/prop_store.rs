//! Property-based tests on storage invariants: codec roundtrips, heap
//! integrity under arbitrary interleavings, slice retention algebra, and
//! recovery equivalence for arbitrary committed histories.

use demaq_store::checkpoint::Snapshot;
use demaq_store::heap::HeapFile;
use demaq_store::pager::{BufferPool, DiskManager};
use demaq_store::slice::SliceIndex;
use demaq_store::store::SyncPolicy;
use demaq_store::wal::{crc32, LogRecord};
use demaq_store::{MessageStore, MsgId, PropValue, QueueMode, StoreOptions, TxnId};
use proptest::prelude::*;
use std::sync::Arc;
use tempfile::TempDir;

fn prop_value_strategy() -> impl Strategy<Value = PropValue> {
    prop_oneof![
        "[ -~]{0,16}".prop_map(PropValue::Str),
        any::<i64>().prop_map(PropValue::Int),
        any::<bool>().prop_map(PropValue::Bool),
        (-1.0e12f64..1.0e12).prop_map(PropValue::Double),
        any::<i64>().prop_map(PropValue::DateTime),
        any::<i64>().prop_map(PropValue::Duration),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn prop_value_codec_roundtrip(values in proptest::collection::vec(prop_value_strategy(), 0..8)) {
        let mut buf = Vec::new();
        for v in &values {
            v.encode(&mut buf);
        }
        let mut at = 0usize;
        for v in &values {
            let got = PropValue::decode(&buf, &mut at).expect("decode");
            prop_assert_eq!(&got, v);
        }
        prop_assert_eq!(at, buf.len());
    }

    #[test]
    fn log_record_codec_roundtrip(
        queue in "[a-z]{1,8}",
        payload in "[ -~]{0,64}",
        props in proptest::collection::vec(("[a-z]{1,6}".prop_map(|s| s), prop_value_strategy()), 0..4),
        msg in any::<u64>(),
        txn in any::<u64>(),
        at in any::<i64>(),
    ) {
        let rec = LogRecord::Enqueue {
            txn: TxnId(txn),
            queue,
            msg: MsgId(msg),
            payload: payload.into(),
            props,
            enqueued_at: at,
        };
        let bytes = rec.encode();
        prop_assert_eq!(LogRecord::decode(&bytes), Some(rec));
    }

    #[test]
    fn crc_detects_single_bit_flips(payload in proptest::collection::vec(any::<u8>(), 1..64), flip in any::<usize>()) {
        let c = crc32(&payload);
        let mut mutated = payload.clone();
        let idx = flip % mutated.len();
        mutated[idx] ^= 1 << (flip % 8);
        prop_assert_ne!(crc32(&mutated), c);
    }

    #[test]
    fn heap_roundtrip_arbitrary_sizes(sizes in proptest::collection::vec(0usize..40_000, 1..12)) {
        let dir = TempDir::new().unwrap();
        let disk = Arc::new(DiskManager::open(&dir.path().join("h.db")).unwrap());
        let pool = Arc::new(BufferPool::new(disk, 32));
        let heap = HeapFile::new(pool);
        let mut stored = Vec::new();
        for (i, n) in sizes.iter().enumerate() {
            let payload: Vec<u8> = (0..*n).map(|j| ((i * 31 + j * 7) % 251) as u8).collect();
            let rid = heap.append(&payload).unwrap();
            stored.push((rid, payload));
        }
        for (rid, payload) in &stored {
            prop_assert_eq!(&heap.read(*rid).unwrap(), payload);
        }
    }

    #[test]
    fn heap_deletion_interleaving(ops in proptest::collection::vec((0usize..500, any::<bool>()), 1..40)) {
        let dir = TempDir::new().unwrap();
        let disk = Arc::new(DiskManager::open(&dir.path().join("h.db")).unwrap());
        let pool = Arc::new(BufferPool::new(disk, 16));
        let heap = HeapFile::new(pool);
        let mut live: Vec<(demaq_store::heap::RecordId, Vec<u8>)> = Vec::new();
        for (size, delete) in ops {
            if delete && !live.is_empty() {
                let (rid, _) = live.remove(size % live.len());
                heap.delete(rid).unwrap();
            } else {
                let payload: Vec<u8> = (0..size).map(|j| (j % 253) as u8).collect();
                let rid = heap.append(&payload).unwrap();
                live.push((rid, payload));
            }
        }
        prop_assert_eq!(heap.live_records(), live.len() as u64);
        for (rid, payload) in &live {
            prop_assert_eq!(&heap.read(*rid).unwrap(), payload);
        }
    }

    #[test]
    fn slice_retention_invariant(
        ops in proptest::collection::vec((0u64..20, 0u8..4, any::<bool>()), 1..60)
    ) {
        // Model: a message is retained iff some slicing's current epoch
        // contains it. Execute random add/reset sequences and compare the
        // index against a naive model.
        let mut idx = SliceIndex::new();
        let mut model: std::collections::HashMap<(u8, u64), (u64, Vec<(u64, u64)>)> =
            std::collections::HashMap::new();
        for (msg, slicing, is_reset) in ops {
            let s_name = format!("s{slicing}");
            let key = PropValue::Int((msg % 4) as i64);
            let model_key = (slicing, msg % 4);
            let entry = model.entry(model_key).or_insert((0, Vec::new()));
            if is_reset {
                idx.reset(&s_name, &key);
                entry.0 += 1;
            } else {
                idx.add(&s_name, &key, MsgId(msg));
                let epoch = entry.0;
                if !entry.1.contains(&(msg, epoch)) {
                    entry.1.push((msg, epoch));
                }
            }
        }
        for m in 0..20u64 {
            let model_retained = model.iter().any(|(_, (epoch, members))| {
                members.iter().any(|(mm, e)| *mm == m && e == epoch)
            });
            prop_assert_eq!(idx.is_retained(MsgId(m)), model_retained, "message {}", m);
        }
    }

    #[test]
    fn snapshot_codec_roundtrip(
        wal_index in any::<u64>(),
        msgs in proptest::collection::vec(("[a-z]{1,6}".prop_map(|s| s), any::<u64>(), any::<bool>()), 0..10),
    ) {
        let mut snap = Snapshot { wal_index, next_msg: 1, next_txn: 1, ..Default::default() };
        for (q, id, processed) in &msgs {
            snap.messages.push(demaq_store::checkpoint::SnapMessage {
                id: MsgId(*id),
                queue: q.clone(),
                rid_page: (*id % 1000) as u32,
                rid_slot: (*id % 100) as u16,
                processed: *processed,
                enqueued_at: *id as i64,
                props: vec![("p".into(), PropValue::Int(*id as i64))],
            });
        }
        let decoded = Snapshot::decode(&snap.encode()).expect("decode");
        prop_assert_eq!(decoded, snap);
    }
}

proptest! {
    // Store recovery runs real I/O: keep the case count small.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn recovery_preserves_committed_history(
        batches in proptest::collection::vec(
            proptest::collection::vec(("[a-b]".prop_map(|s| s), "[ -~]{0,24}"), 1..4),
            1..6,
        ),
        crash_uncommitted in any::<bool>(),
    ) {
        let dir = TempDir::new().unwrap();
        let mut expected: Vec<(String, String)> = Vec::new();
        {
            let mut opts = StoreOptions::new(dir.path());
            opts.sync = SyncPolicy::Batch;
            let store = MessageStore::open(opts).unwrap();
            store.create_queue("a", QueueMode::Persistent, 0).unwrap();
            store.create_queue("b", QueueMode::Persistent, 0).unwrap();
            for batch in &batches {
                let txn = store.begin();
                for (q, payload) in batch {
                    store.enqueue(txn, q, payload.clone().into(), vec![], 0).unwrap();
                    expected.push((q.clone(), payload.clone()));
                }
                store.commit(txn).unwrap();
            }
            if crash_uncommitted {
                let txn = store.begin();
                store.enqueue(txn, "a", "<lost/>".into(), vec![], 0).unwrap();
                // dropped without commit
            }
            store.sync().unwrap();
        }
        let store = MessageStore::open(StoreOptions::new(dir.path())).unwrap();
        // Queue definitions come from the application program, not the log;
        // the engine re-declares them at startup (idempotent).
        store.create_queue("a", QueueMode::Persistent, 0).unwrap();
        store.create_queue("b", QueueMode::Persistent, 0).unwrap();
        let mut recovered: Vec<(String, String)> = Vec::new();
        for q in ["a", "b"] {
            for m in store.queue_messages(q).unwrap() {
                recovered.push((m.queue, m.payload.to_string()));
            }
        }
        let sort = |mut v: Vec<(String, String)>| {
            v.sort();
            v
        };
        prop_assert_eq!(sort(recovered), sort(expected));
    }
}
