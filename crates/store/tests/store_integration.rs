//! Integration tests: transactions, durability, crash recovery, retention.

use demaq_store::store::SyncPolicy;
use demaq_store::{
    LockGranularity, LockKey, LockMode, MessageStore, MsgId, PropValue, QueueMode, StoreOptions,
};
use std::sync::Arc;
use std::time::Duration;
use tempfile::TempDir;

fn open(dir: &TempDir) -> MessageStore {
    MessageStore::open(StoreOptions::new(dir.path())).unwrap()
}

fn enqueue_one(store: &MessageStore, queue: &str, payload: &str) -> MsgId {
    let txn = store.begin();
    let id = store
        .enqueue(txn, queue, payload.into(), vec![], 0)
        .unwrap();
    store.commit(txn).unwrap();
    id
}

#[test]
fn enqueue_and_read_back() {
    let dir = TempDir::new().unwrap();
    let store = open(&dir);
    store.create_queue("crm", QueueMode::Persistent, 0).unwrap();
    let id = enqueue_one(
        &store,
        "crm",
        "<offerRequest><requestID>1</requestID></offerRequest>",
    );
    let msgs = store.queue_messages("crm").unwrap();
    assert_eq!(msgs.len(), 1);
    assert_eq!(msgs[0].id, id);
    assert_eq!(
        msgs[0].payload,
        "<offerRequest><requestID>1</requestID></offerRequest>"
    );
    assert!(!msgs[0].processed);
}

#[test]
fn arrival_order_is_preserved() {
    let dir = TempDir::new().unwrap();
    let store = open(&dir);
    store.create_queue("q", QueueMode::Persistent, 0).unwrap();
    for i in 0..20 {
        enqueue_one(&store, "q", &format!("<m>{i}</m>"));
    }
    let msgs = store.queue_messages("q").unwrap();
    let bodies: Vec<String> = msgs.iter().map(|m| m.payload.to_string()).collect();
    let expected: Vec<String> = (0..20).map(|i| format!("<m>{i}</m>")).collect();
    assert_eq!(bodies, expected);
}

#[test]
fn unknown_queue_rejected() {
    let dir = TempDir::new().unwrap();
    let store = open(&dir);
    let txn = store.begin();
    assert!(store
        .enqueue(txn, "nope", "<m/>".into(), vec![], 0)
        .is_err());
    store.abort(txn);
}

#[test]
fn abort_discards_effects() {
    let dir = TempDir::new().unwrap();
    let store = open(&dir);
    store.create_queue("q", QueueMode::Persistent, 0).unwrap();
    let txn = store.begin();
    store
        .enqueue(txn, "q", "<never/>".into(), vec![], 0)
        .unwrap();
    store.abort(txn);
    assert!(store.queue_messages("q").unwrap().is_empty());
}

#[test]
fn transaction_is_atomic_across_queues() {
    let dir = TempDir::new().unwrap();
    let store = open(&dir);
    store.create_queue("a", QueueMode::Persistent, 0).unwrap();
    store.create_queue("b", QueueMode::Persistent, 0).unwrap();
    let txn = store.begin();
    store.enqueue(txn, "a", "<m/>".into(), vec![], 0).unwrap();
    store.enqueue(txn, "b", "<m/>".into(), vec![], 0).unwrap();
    // Nothing visible before commit.
    assert!(store.queue_messages("a").unwrap().is_empty());
    store.commit(txn).unwrap();
    assert_eq!(store.queue_messages("a").unwrap().len(), 1);
    assert_eq!(store.queue_messages("b").unwrap().len(), 1);
}

#[test]
fn properties_roundtrip() {
    let dir = TempDir::new().unwrap();
    let store = open(&dir);
    store.create_queue("q", QueueMode::Persistent, 0).unwrap();
    let txn = store.begin();
    let props = vec![
        ("orderID".to_string(), PropValue::Str("o-77".into())),
        ("isVIPorder".to_string(), PropValue::Bool(true)),
        ("amount".to_string(), PropValue::Int(950)),
    ];
    store
        .enqueue(txn, "q", "<order/>".into(), props.clone(), 42)
        .unwrap();
    store.commit(txn).unwrap();
    let msg = &store.queue_messages("q").unwrap()[0];
    assert_eq!(msg.props, props);
    assert_eq!(msg.prop("orderID"), Some(&PropValue::Str("o-77".into())));
    assert_eq!(msg.enqueued_at, 42);
}

#[test]
fn crash_recovery_replays_committed_transactions() {
    let dir = TempDir::new().unwrap();
    let id;
    {
        let store = open(&dir);
        store.create_queue("crm", QueueMode::Persistent, 0).unwrap();
        id = enqueue_one(&store, "crm", "<survives/>");
        // Uncommitted transaction: must vanish.
        let txn = store.begin();
        store
            .enqueue(txn, "crm", "<lost/>".into(), vec![], 0)
            .unwrap();
        // Simulated crash: store dropped without commit/checkpoint.
    }
    let store = open(&dir);
    let msgs = store.queue_messages("crm").unwrap();
    assert_eq!(msgs.len(), 1);
    assert_eq!(msgs[0].id, id);
    assert_eq!(msgs[0].payload, "<survives/>");
}

#[test]
fn recovery_restores_slices_and_processed_flags() {
    let dir = TempDir::new().unwrap();
    let key = PropValue::Str("23".into());
    let (m1, m2);
    {
        let store = open(&dir);
        store
            .create_queue("orders", QueueMode::Persistent, 0)
            .unwrap();
        let txn = store.begin();
        m1 = store
            .enqueue(txn, "orders", "<o>1</o>".into(), vec![], 0)
            .unwrap();
        m2 = store
            .enqueue(txn, "orders", "<o>2</o>".into(), vec![], 0)
            .unwrap();
        store.slice_add(txn, "customer", key.clone(), m1).unwrap();
        store.slice_add(txn, "customer", key.clone(), m2).unwrap();
        store.commit(txn).unwrap();
        let txn = store.begin();
        store.mark_processed(txn, m1).unwrap();
        store.commit(txn).unwrap();
    }
    let store = open(&dir);
    assert_eq!(store.slice_members("customer", &key), vec![m1, m2]);
    let msgs = store.queue_messages("orders").unwrap();
    assert!(msgs.iter().find(|m| m.id == m1).unwrap().processed);
    assert!(!msgs.iter().find(|m| m.id == m2).unwrap().processed);
}

#[test]
fn recovery_after_checkpoint_and_more_commits() {
    let dir = TempDir::new().unwrap();
    {
        let store = open(&dir);
        store.create_queue("q", QueueMode::Persistent, 0).unwrap();
        for i in 0..10 {
            enqueue_one(&store, "q", &format!("<pre>{i}</pre>"));
        }
        store.checkpoint().unwrap();
        for i in 0..5 {
            enqueue_one(&store, "q", &format!("<post>{i}</post>"));
        }
    }
    let store = open(&dir);
    let msgs = store.queue_messages("q").unwrap();
    assert_eq!(msgs.len(), 15);
    assert!(msgs[0].payload.starts_with("<pre>"));
    assert!(msgs[14].payload.starts_with("<post>"));
}

#[test]
fn repeated_checkpoint_recover_cycles() {
    let dir = TempDir::new().unwrap();
    for round in 0..4 {
        let store = open(&dir);
        store.create_queue("q", QueueMode::Persistent, 0).unwrap();
        enqueue_one(&store, "q", &format!("<r>{round}</r>"));
        if round % 2 == 0 {
            store.checkpoint().unwrap();
        }
    }
    let store = open(&dir);
    assert_eq!(store.queue_messages("q").unwrap().len(), 4);
}

#[test]
fn transient_queue_content_is_lost_on_restart() {
    let dir = TempDir::new().unwrap();
    {
        let store = open(&dir);
        store
            .create_queue("scratch", QueueMode::Transient, 0)
            .unwrap();
        store
            .create_queue("durable", QueueMode::Persistent, 0)
            .unwrap();
        enqueue_one(&store, "scratch", "<gone/>");
        enqueue_one(&store, "durable", "<kept/>");
        assert_eq!(store.queue_messages("scratch").unwrap().len(), 1);
        store.checkpoint().unwrap();
    }
    let store = open(&dir);
    store
        .create_queue("scratch", QueueMode::Transient, 0)
        .unwrap();
    assert!(store.queue_messages("scratch").unwrap().is_empty());
    assert_eq!(store.queue_messages("durable").unwrap().len(), 1);
}

#[test]
fn transient_commits_write_no_log() {
    let dir = TempDir::new().unwrap();
    let store = open(&dir);
    store
        .create_queue("scratch", QueueMode::Transient, 0)
        .unwrap();
    let before = store.wal_bytes_logged();
    for _ in 0..10 {
        enqueue_one(&store, "scratch", "<m/>");
    }
    assert_eq!(
        store.wal_bytes_logged(),
        before,
        "transient ops must not be logged"
    );
}

#[test]
fn retention_gc_respects_slices() {
    let dir = TempDir::new().unwrap();
    let store = open(&dir);
    store.create_queue("q", QueueMode::Persistent, 0).unwrap();
    let key = PropValue::Str("grp".into());
    let txn = store.begin();
    let m = store.enqueue(txn, "q", "<m/>".into(), vec![], 0).unwrap();
    store.slice_add(txn, "s", key.clone(), m).unwrap();
    store.commit(txn).unwrap();

    // Unprocessed: never purged.
    assert_eq!(store.gc().unwrap(), 0);

    let txn = store.begin();
    store.mark_processed(txn, m).unwrap();
    store.commit(txn).unwrap();
    // Processed but still in a slice: retained.
    assert_eq!(store.gc().unwrap(), 0);
    assert_eq!(store.message_count(), 1);

    let txn = store.begin();
    store.slice_reset(txn, "s", key.clone()).unwrap();
    store.commit(txn).unwrap();
    // Processed and released: purged.
    assert_eq!(store.gc().unwrap(), 1);
    assert_eq!(store.message_count(), 0);
    assert!(store.queue_messages("q").unwrap().is_empty());
}

#[test]
fn unsliced_processed_message_purged_immediately() {
    let dir = TempDir::new().unwrap();
    let store = open(&dir);
    store.create_queue("q", QueueMode::Persistent, 0).unwrap();
    let m = enqueue_one(&store, "q", "<m/>");
    let txn = store.begin();
    store.mark_processed(txn, m).unwrap();
    store.commit(txn).unwrap();
    assert_eq!(store.gc().unwrap(), 1);
}

#[test]
fn gc_decision_is_rederived_after_crash() {
    // Paper Sec. 4.1: deletions are not logged; after a crash the store
    // re-derives them. Purge, crash, reopen: the message must stay purged.
    let dir = TempDir::new().unwrap();
    {
        let store = open(&dir);
        store.create_queue("q", QueueMode::Persistent, 0).unwrap();
        let m = enqueue_one(&store, "q", "<m/>");
        let txn = store.begin();
        store.mark_processed(txn, m).unwrap();
        store.commit(txn).unwrap();
        assert_eq!(store.gc().unwrap(), 1);
        // crash without checkpoint
    }
    let store = open(&dir);
    // Replay resurrects the purged message (its enqueue is still logged);
    // the next GC re-derives the deletion without any log analysis.
    store.gc().unwrap();
    assert_eq!(store.message_count(), 0, "GC re-purges after recovery");
}

#[test]
fn slice_reset_epoch_survives_recovery() {
    let dir = TempDir::new().unwrap();
    let key = PropValue::Str("d1".into());
    {
        let store = open(&dir);
        store.create_queue("q", QueueMode::Persistent, 0).unwrap();
        let txn = store.begin();
        let m1 = store.enqueue(txn, "q", "<old/>".into(), vec![], 0).unwrap();
        store.slice_add(txn, "domains", key.clone(), m1).unwrap();
        store.commit(txn).unwrap();
        let txn = store.begin();
        store.slice_reset(txn, "domains", key.clone()).unwrap();
        store.commit(txn).unwrap();
        let txn = store.begin();
        let m2 = store.enqueue(txn, "q", "<new/>".into(), vec![], 0).unwrap();
        store.slice_add(txn, "domains", key.clone(), m2).unwrap();
        store.commit(txn).unwrap();
    }
    let store = open(&dir);
    let members = store.slice_members("domains", &key);
    assert_eq!(
        members.len(),
        1,
        "only the new lifetime is visible: {members:?}"
    );
    let m = store.message(members[0]).unwrap();
    assert_eq!(m.payload, "<new/>");
}

#[test]
fn unprocessed_worklist_for_scheduler() {
    let dir = TempDir::new().unwrap();
    let store = open(&dir);
    store.create_queue("hi", QueueMode::Persistent, 10).unwrap();
    store.create_queue("lo", QueueMode::Persistent, 1).unwrap();
    enqueue_one(&store, "lo", "<a/>");
    enqueue_one(&store, "hi", "<b/>");
    let work = store.unprocessed();
    assert_eq!(work.len(), 2);
    let hi = work.iter().find(|(_, q, _)| q == "hi").unwrap();
    assert_eq!(hi.2, 10);
}

#[test]
fn large_messages_roundtrip_through_heap() {
    let dir = TempDir::new().unwrap();
    let store = open(&dir);
    store.create_queue("q", QueueMode::Persistent, 0).unwrap();
    let big = format!("<blob>{}</blob>", "x".repeat(50_000));
    enqueue_one(&store, "q", &big);
    assert_eq!(store.queue_messages("q").unwrap()[0].payload, big);
    // And across a restart.
    drop(store);
    let store = open(&dir);
    assert_eq!(store.queue_messages("q").unwrap()[0].payload, big);
}

#[test]
fn batch_sync_policy_still_recovers_after_clean_sync() {
    let dir = TempDir::new().unwrap();
    {
        let mut opts = StoreOptions::new(dir.path());
        opts.sync = SyncPolicy::Batch;
        let store = MessageStore::open(opts).unwrap();
        store.create_queue("q", QueueMode::Persistent, 0).unwrap();
        for _ in 0..50 {
            enqueue_one(&store, "q", "<m/>");
        }
        store.sync().unwrap(); // group-commit boundary
    }
    let store = open(&dir);
    assert_eq!(store.queue_messages("q").unwrap().len(), 50);
}

#[test]
fn concurrent_enqueues_from_many_threads() {
    let dir = TempDir::new().unwrap();
    let mut opts = StoreOptions::new(dir.path());
    opts.sync = SyncPolicy::Batch;
    opts.lock_granularity = LockGranularity::Slice;
    let store = Arc::new(MessageStore::open(opts).unwrap());
    store.create_queue("q", QueueMode::Persistent, 0).unwrap();
    let threads: Vec<_> = (0..8)
        .map(|t| {
            let store = Arc::clone(&store);
            std::thread::spawn(move || {
                for i in 0..50 {
                    let txn = store.begin();
                    store
                        .locks
                        .acquire(txn, LockKey::Queue("q".into()), LockMode::Shared)
                        .unwrap();
                    store
                        .enqueue(txn, "q", format!("<m t='{t}' i='{i}'/>").into(), vec![], 0)
                        .unwrap();
                    store.commit(txn).unwrap();
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    assert_eq!(store.queue_messages("q").unwrap().len(), 400);
    // Ids are unique and ordered.
    let msgs = store.queue_messages("q").unwrap();
    let mut ids: Vec<_> = msgs.iter().map(|m| m.id).collect();
    let before = ids.clone();
    ids.sort();
    ids.dedup();
    assert_eq!(ids.len(), 400);
    assert_eq!(before, ids, "queue order matches arrival (id) order");
}

#[test]
fn lock_timeout_configuration() {
    let dir = TempDir::new().unwrap();
    let mut opts = StoreOptions::new(dir.path());
    opts.lock_timeout = Duration::from_millis(30);
    let store = MessageStore::open(opts).unwrap();
    let t1 = store.begin();
    let t2 = store.begin();
    store
        .locks
        .acquire(t1, LockKey::Queue("q".into()), LockMode::Exclusive)
        .unwrap();
    assert!(store
        .locks
        .acquire(t2, LockKey::Queue("q".into()), LockMode::Exclusive)
        .is_err());
    store.abort(t1);
    store.abort(t2);
}

#[test]
fn checkpoint_truncates_wal() {
    let dir = TempDir::new().unwrap();
    let store = open(&dir);
    store.create_queue("q", QueueMode::Persistent, 0).unwrap();
    for _ in 0..20 {
        enqueue_one(&store, "q", "<m/>");
    }
    store.checkpoint().unwrap();
    // The new segment starts (nearly) empty.
    assert!(store.wal_bytes_logged() < 100);
    // Old segments removed.
    let wal_files: Vec<_> = std::fs::read_dir(dir.path())
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().starts_with("wal-"))
        .collect();
    assert_eq!(wal_files.len(), 1);
}

#[test]
fn commits_progress_while_checkpoint_writes() {
    use std::sync::atomic::{AtomicBool, Ordering};
    // Regression: `checkpoint()` used to hold the commit-order and state
    // locks across the snapshot *write*; a large (here: artificially slow)
    // checkpoint stalled every committer for its full duration. The cut
    // still happens under the locks, the write must not.
    let dir = TempDir::new().unwrap();
    let store = Arc::new(open(&dir));
    store.create_queue("q", QueueMode::Persistent, 0).unwrap();
    for i in 0..200 {
        enqueue_one(&store, "q", &format!("<m>{i}</m>"));
    }
    std::env::set_var("DEMAQ_CKPT_SLOW_WRITE_MS", "2000");
    let ckpt_done = Arc::new(AtomicBool::new(false));
    let ckpt = {
        let store = Arc::clone(&store);
        let done = Arc::clone(&ckpt_done);
        std::thread::spawn(move || {
            store.checkpoint().unwrap();
            done.store(true, Ordering::SeqCst);
        })
    };
    // Let the checkpoint take its cut and enter the slow write window.
    std::thread::sleep(Duration::from_millis(200));
    let committed = enqueue_one(&store, "q", "<during-checkpoint/>");
    let still_writing = !ckpt_done.load(Ordering::SeqCst);
    ckpt.join().unwrap();
    std::env::remove_var("DEMAQ_CKPT_SLOW_WRITE_MS");
    assert!(
        still_writing,
        "checkpoint finished before the concurrent commit — the slow-write \
         failpoint did not arm and the test exercised nothing"
    );
    assert_eq!(store.message(committed).unwrap().payload, "<during-checkpoint/>");
}

#[test]
fn gc_of_many_messages_does_not_stall_committers() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::time::Instant;
    // Regression: `gc_collect()` used to release heap records while holding
    // the state write lock; purging a large backlog blocked committers for
    // the whole sweep. Heap release now happens outside the lock, so a
    // concurrent commit sees only the (linear, in-memory) logical removal.
    let dir = TempDir::new().unwrap();
    let store = Arc::new(open(&dir));
    store.create_queue("q", QueueMode::Persistent, 0).unwrap();
    for b in 0..20 {
        let txn = store.begin();
        let ids: Vec<MsgId> = (0..500)
            .map(|i| {
                store
                    .enqueue(txn, "q", format!("<m>{b}-{i}</m>").into(), vec![], 0)
                    .unwrap()
            })
            .collect();
        store.commit(txn).unwrap();
        let txn = store.begin();
        for id in ids {
            store.mark_processed(txn, id).unwrap();
        }
        store.commit(txn).unwrap();
    }
    let gc_done = Arc::new(AtomicBool::new(false));
    let gc = {
        let store = Arc::clone(&store);
        let done = Arc::clone(&gc_done);
        std::thread::spawn(move || {
            let purged = store.gc_collect().unwrap().len();
            done.store(true, Ordering::SeqCst);
            purged
        })
    };
    // While the GC sweeps 10k messages, commits must keep completing
    // within a bounded wait.
    let mut max_latency = Duration::ZERO;
    loop {
        let t0 = Instant::now();
        enqueue_one(&store, "q", "<during-gc/>");
        max_latency = max_latency.max(t0.elapsed());
        if gc_done.load(Ordering::SeqCst) {
            break;
        }
    }
    let purged = gc.join().unwrap();
    assert_eq!(purged, 10_000, "GC missed processed messages");
    assert!(
        max_latency < Duration::from_secs(2),
        "a commit stalled {max_latency:?} behind the concurrent GC"
    );
}
