//! Programmatic construction of frozen [`Document`]s.
//!
//! Both the parser and the XQuery node constructors funnel through
//! [`DocBuilder`], which assigns arena ids in document order
//! (element → its attributes → its children) so that id comparison *is*
//! document order.

use crate::qname::QName;
use crate::tree::{Document, NodeData, NodeId, NodeKind, NodeRef};
use std::sync::Arc;

/// Incremental builder for a single document.
pub struct DocBuilder {
    nodes: Vec<NodeData>,
    /// Stack of open element ids (document node at the bottom).
    stack: Vec<NodeId>,
}

impl Default for DocBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl DocBuilder {
    /// Start a new document.
    pub fn new() -> Self {
        let doc = NodeData {
            parent: None,
            kind: NodeKind::Document,
            children: Vec::new(),
            attrs: Vec::new(),
        };
        DocBuilder {
            nodes: vec![doc],
            stack: vec![NodeId::DOC],
        }
    }

    fn cur(&self) -> NodeId {
        *self.stack.last().expect("builder stack never empty")
    }

    fn push_node(&mut self, kind: NodeKind) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        let parent = self.cur();
        self.nodes.push(NodeData {
            parent: Some(parent),
            kind,
            children: Vec::new(),
            attrs: Vec::new(),
        });
        self.nodes[parent.0 as usize].children.push(id);
        id
    }

    /// Open an element; subsequent content goes inside until [`Self::end`].
    pub fn start(&mut self, name: impl Into<QName>) -> &mut Self {
        let id = self.push_node(NodeKind::Element(name.into()));
        self.stack.push(id);
        self
    }

    /// Add an attribute to the currently open element. Must be called before
    /// any child content is added (document-order ids).
    pub fn attr(&mut self, name: impl Into<QName>, value: impl Into<String>) -> &mut Self {
        let parent = self.cur();
        assert!(
            matches!(self.nodes[parent.0 as usize].kind, NodeKind::Element(_)),
            "attributes only allowed on elements"
        );
        debug_assert!(
            self.nodes[parent.0 as usize].children.is_empty(),
            "attributes must precede children for document order"
        );
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(NodeData {
            parent: Some(parent),
            kind: NodeKind::Attribute(name.into(), value.into()),
            children: Vec::new(),
            attrs: Vec::new(),
        });
        self.nodes[parent.0 as usize].attrs.push(id);
        self
    }

    /// Append a text node. Consecutive text nodes are merged (XDM requires
    /// no adjacent text siblings).
    pub fn text(&mut self, value: impl AsRef<str>) -> &mut Self {
        let value = value.as_ref();
        if value.is_empty() {
            return self;
        }
        let parent = self.cur();
        if let Some(&last) = self.nodes[parent.0 as usize].children.last() {
            if let NodeKind::Text(t) = &mut self.nodes[last.0 as usize].kind {
                t.push_str(value);
                return self;
            }
        }
        self.push_node(NodeKind::Text(value.to_string()));
        self
    }

    /// Append a comment node.
    pub fn comment(&mut self, value: impl Into<String>) -> &mut Self {
        self.push_node(NodeKind::Comment(value.into()));
        self
    }

    /// Append a processing instruction.
    pub fn pi(&mut self, target: impl Into<String>, data: impl Into<String>) -> &mut Self {
        self.push_node(NodeKind::Pi {
            target: target.into(),
            data: data.into(),
        });
        self
    }

    /// Close the current element.
    pub fn end(&mut self) -> &mut Self {
        assert!(self.stack.len() > 1, "end() without matching start()");
        self.stack.pop();
        self
    }

    /// Deep-copy `node` (and its subtree) as a child of the current element.
    /// This is how XQuery constructors copy existing nodes into new trees.
    pub fn copy_node(&mut self, node: &NodeRef) -> &mut Self {
        match node.kind() {
            NodeKind::Document => {
                for c in node.children() {
                    self.copy_node(&c);
                }
            }
            NodeKind::Element(q) => {
                self.start(q.clone());
                for a in node.attributes() {
                    if let NodeKind::Attribute(an, av) = a.kind() {
                        self.attr(an.clone(), av.clone());
                    }
                }
                for c in node.children() {
                    self.copy_node(&c);
                }
                self.end();
            }
            NodeKind::Attribute(q, v) => {
                self.attr(q.clone(), v.clone());
            }
            NodeKind::Text(t) => {
                self.text(t);
            }
            NodeKind::Comment(c) => {
                self.comment(c.clone());
            }
            NodeKind::Pi { target, data } => {
                self.pi(target.clone(), data.clone());
            }
        }
        self
    }

    /// Finish construction. Panics if elements are left open.
    pub fn finish(self) -> Arc<Document> {
        assert_eq!(self.stack.len(), 1, "unclosed elements at finish()");
        Document::from_arena(self.nodes)
    }

    /// Convenience: a document with a single element containing text.
    pub fn simple(name: &str, text: &str) -> Arc<Document> {
        let mut b = DocBuilder::new();
        b.start(name).text(text).end();
        b.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_serialize() {
        let mut b = DocBuilder::new();
        b.start("order")
            .attr("id", "42")
            .start("item")
            .text("chemicals")
            .end()
            .end();
        let doc = b.finish();
        assert_eq!(
            doc.root().to_xml(),
            r#"<order id="42"><item>chemicals</item></order>"#
        );
    }

    #[test]
    fn text_merging() {
        let mut b = DocBuilder::new();
        b.start("a").text("x").text("y").end();
        let doc = b.finish();
        let a = doc.document_element().unwrap();
        assert_eq!(a.children().len(), 1);
        assert_eq!(a.string_value(), "xy");
    }

    #[test]
    fn copy_node_preserves_structure() {
        let src = crate::parse("<a p='1'><b>t</b><!--c--></a>").unwrap();
        let mut b = DocBuilder::new();
        b.start("wrap")
            .copy_node(&src.document_element().unwrap())
            .end();
        let doc = b.finish();
        assert_eq!(
            doc.root().to_xml(),
            r#"<wrap><a p="1"><b>t</b><!--c--></a></wrap>"#
        );
        // copy is a distinct node
        assert!(!doc.document_element().unwrap().children()[0]
            .is_same_node(&src.document_element().unwrap()));
    }

    #[test]
    #[should_panic(expected = "unclosed")]
    fn unbalanced_builder_panics() {
        let mut b = DocBuilder::new();
        b.start("a");
        b.finish();
    }
}
