//! # demaq-xml
//!
//! XML infoset substrate for the Demaq reproduction.
//!
//! Messages in Demaq are XML documents. This crate provides:
//!
//! * an immutable, arena-based document tree ([`Document`], [`NodeRef`])
//!   with total document order and node identity — immutability matches
//!   Demaq's append-only message model and makes trees freely shareable
//!   across the engine's worker threads,
//! * a namespace-aware XML parser ([`parse`]) and serializer,
//! * a programmatic [`builder::DocBuilder`],
//! * a structural "schema-lite" validator ([`schema::Schema`]) used for the
//!   optional `schema` clause of `create queue`.

pub mod builder;
pub mod parser;
pub mod qname;
pub mod schema;
pub mod serializer;
pub mod sym;
pub mod tree;

pub use builder::DocBuilder;
pub use parser::{parse, parse_fragment, ParseError};
pub use qname::QName;
pub use serializer::{serialize, serialize_pretty};
pub use sym::Sym;
pub use tree::{Document, NodeId, NodeKind, NodeRef};

/// Result alias for XML parsing.
pub type Result<T> = std::result::Result<T, ParseError>;
