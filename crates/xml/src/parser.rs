//! A namespace-aware, well-formedness-checking XML parser.
//!
//! Supports the constructs Demaq messages need: elements, attributes,
//! character data, CDATA sections, comments, processing instructions, the
//! XML declaration, predefined and numeric character references, and
//! namespace declarations (`xmlns`, `xmlns:p`). DTDs are rejected (messages
//! from untrusted peers must not trigger entity expansion).

use crate::builder::DocBuilder;
use crate::qname::QName;
use crate::tree::Document;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Error produced while parsing XML, with 1-based line/column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub line: u32,
    pub col: u32,
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "XML parse error at {}:{}: {}",
            self.line, self.col, self.msg
        )
    }
}
impl std::error::Error for ParseError {}

/// Parse a complete XML document (exactly one root element).
pub fn parse(input: &str) -> Result<Arc<Document>, ParseError> {
    Parser::new(input).parse_document(false)
}

/// Parse an XML fragment: zero or more top-level elements/text nodes.
/// Used for message payload snippets in tests and the QML constructors.
pub fn parse_fragment(input: &str) -> Result<Arc<Document>, ParseError> {
    Parser::new(input).parse_document(true)
}

struct NsScope {
    /// prefix -> uri; "" is the default namespace.
    bindings: HashMap<String, String>,
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
    ns_stack: Vec<NsScope>,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        let mut base = HashMap::new();
        base.insert(
            "xml".to_string(),
            "http://www.w3.org/XML/1998/namespace".to_string(),
        );
        Parser {
            bytes: input.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
            ns_stack: vec![NsScope { bindings: base }],
        }
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            line: self.line,
            col: self.col,
            msg: msg.into(),
        })
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    #[allow(dead_code)]
    fn peek_at(&self, off: usize) -> Option<u8> {
        self.bytes.get(self.pos + off).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn starts_with(&self, s: &str) -> bool {
        self.bytes[self.pos..].starts_with(s.as_bytes())
    }

    fn eat(&mut self, s: &str) -> bool {
        if self.starts_with(s) {
            for _ in 0..s.len() {
                self.bump();
            }
            true
        } else {
            false
        }
    }

    fn expect(&mut self, s: &str) -> Result<(), ParseError> {
        if self.eat(s) {
            Ok(())
        } else {
            self.err(format!("expected `{s}`"))
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.bump();
        }
    }

    fn parse_document(mut self, fragment: bool) -> Result<Arc<Document>, ParseError> {
        let mut b = DocBuilder::new();
        // Optional XML declaration.
        if self.starts_with("<?xml") {
            self.read_until("?>")?;
        }
        let mut saw_root = false;
        loop {
            self.skip_misc_into(&mut b, fragment)?;
            match self.peek() {
                None => break,
                Some(b'<') => {
                    if !fragment && saw_root {
                        return self.err("content after document element");
                    }
                    self.parse_element(&mut b)?;
                    saw_root = true;
                }
                Some(_) if fragment => {
                    let text = self.parse_char_data()?;
                    b.text(&text);
                }
                Some(c) => return self.err(format!("unexpected character `{}`", c as char)),
            }
        }
        if !fragment && !saw_root {
            return self.err("no document element");
        }
        Ok(b.finish())
    }

    /// Skip whitespace/comments/PIs at top level (keeping comments/PIs).
    fn skip_misc_into(&mut self, b: &mut DocBuilder, fragment: bool) -> Result<(), ParseError> {
        loop {
            if !fragment {
                self.skip_ws();
            }
            if self.starts_with("<!--") {
                let c = self.parse_comment()?;
                b.comment(c);
            } else if self.starts_with("<!DOCTYPE") {
                return self.err("DOCTYPE declarations are not accepted");
            } else if self.starts_with("<?") && !self.starts_with("<?xml") {
                let (t, d) = self.parse_pi()?;
                b.pi(t, d);
            } else {
                return Ok(());
            }
        }
    }

    fn parse_element(&mut self, b: &mut DocBuilder) -> Result<(), ParseError> {
        self.expect("<")?;
        let name = self.parse_name()?;
        // Collect raw attributes first; namespace decls affect resolution.
        let mut raw_attrs: Vec<(String, String)> = Vec::new();
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'>') | Some(b'/') => break,
                None => return self.err("unexpected end of input in tag"),
                _ => {
                    let an = self.parse_name()?;
                    self.skip_ws();
                    self.expect("=")?;
                    self.skip_ws();
                    let av = self.parse_attr_value()?;
                    if raw_attrs.iter().any(|(n, _)| *n == an) {
                        return self.err(format!("duplicate attribute `{an}`"));
                    }
                    raw_attrs.push((an, av));
                }
            }
        }
        // Push a namespace scope with any declarations on this element.
        let mut scope = NsScope {
            bindings: HashMap::new(),
        };
        for (n, v) in &raw_attrs {
            if n == "xmlns" {
                scope.bindings.insert(String::new(), v.clone());
            } else if let Some(p) = n.strip_prefix("xmlns:") {
                if p.is_empty() {
                    return self.err("empty namespace prefix declaration");
                }
                scope.bindings.insert(p.to_string(), v.clone());
            }
        }
        self.ns_stack.push(scope);

        let qname = self.resolve(&name, true)?;
        b.start(qname.clone());
        for (n, v) in &raw_attrs {
            if n == "xmlns" || n.starts_with("xmlns:") {
                // Namespace declarations are not attribute nodes in XDM,
                // but keep them for serialization fidelity.
                b.attr(QName::local(n.clone()), v.clone());
                continue;
            }
            let aq = self.resolve(n, false)?;
            b.attr(aq, v.clone());
        }

        let self_closing = self.eat("/");
        self.expect(">")?;
        if self_closing {
            b.end();
            self.ns_stack.pop();
            return Ok(());
        }

        // Content until matching end tag.
        loop {
            if self.starts_with("</") {
                self.expect("</")?;
                let end_name = self.parse_name()?;
                self.skip_ws();
                self.expect(">")?;
                if end_name != name {
                    return self.err(format!(
                        "mismatched end tag `</{end_name}>`, expected `</{name}>`"
                    ));
                }
                b.end();
                self.ns_stack.pop();
                return Ok(());
            } else if self.starts_with("<!--") {
                let c = self.parse_comment()?;
                b.comment(c);
            } else if self.starts_with("<![CDATA[") {
                let t = self.parse_cdata()?;
                b.text(&t);
            } else if self.starts_with("<?") {
                let (t, d) = self.parse_pi()?;
                b.pi(t, d);
            } else if self.starts_with("<") {
                self.parse_element(b)?;
            } else if self.peek().is_none() {
                return self.err(format!("unexpected end of input inside `<{name}>`"));
            } else {
                let text = self.parse_char_data()?;
                b.text(&text);
            }
        }
    }

    fn resolve(&self, lexical: &str, use_default: bool) -> Result<QName, ParseError> {
        let q = match QName::parse_lexical(lexical) {
            Some(q) => q,
            None => return self.err(format!("invalid QName `{lexical}`")),
        };
        let ns = match &q.prefix {
            Some(p) => match self.lookup_ns(p) {
                Some(uri) => Some(uri),
                None => return self.err(format!("undeclared namespace prefix `{p}`")),
            },
            None if use_default => self.lookup_ns(""),
            None => None,
        };
        Ok(QName {
            ns: ns.filter(|u| !u.is_empty()),
            prefix: q.prefix,
            local: q.local,
        })
    }

    fn lookup_ns(&self, prefix: &str) -> Option<String> {
        for scope in self.ns_stack.iter().rev() {
            if let Some(uri) = scope.bindings.get(prefix) {
                return Some(uri.clone());
            }
        }
        None
    }

    fn parse_name(&mut self) -> Result<String, ParseError> {
        // Decode characters properly: names may contain non-ASCII letters,
        // and byte-wise scanning would split multi-byte sequences.
        let rest = std::str::from_utf8(&self.bytes[self.pos..]).map_err(|_| ParseError {
            line: self.line,
            col: self.col,
            msg: "invalid UTF-8".into(),
        })?;
        let mut len = 0usize;
        for (i, ch) in rest.char_indices() {
            let ok = if i == 0 {
                ch.is_alphabetic() || ch == '_' || ch == ':'
            } else {
                ch.is_alphanumeric() || matches!(ch, '_' | '-' | '.' | ':')
            };
            if !ok {
                break;
            }
            len = i + ch.len_utf8();
        }
        if len == 0 {
            return self.err("expected a name");
        }
        let name = rest[..len].to_string();
        for _ in 0..len {
            self.bump();
        }
        Ok(name)
    }

    fn parse_attr_value(&mut self) -> Result<String, ParseError> {
        let quote = match self.peek() {
            Some(q @ (b'"' | b'\'')) => q,
            _ => return self.err("expected quoted attribute value"),
        };
        self.bump();
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated attribute value"),
                Some(q) if q == quote => {
                    self.bump();
                    return Ok(out);
                }
                Some(b'<') => return self.err("`<` not allowed in attribute value"),
                Some(b'&') => {
                    let c = self.parse_reference()?;
                    out.push_str(&c);
                }
                Some(_) => {
                    out.push(self.bump_char()?);
                }
            }
        }
    }

    fn bump_char(&mut self) -> Result<char, ParseError> {
        let rest = std::str::from_utf8(&self.bytes[self.pos..]).map_err(|_| ParseError {
            line: self.line,
            col: self.col,
            msg: "invalid UTF-8".into(),
        })?;
        let ch = rest.chars().next().ok_or(ParseError {
            line: self.line,
            col: self.col,
            msg: "unexpected end of input".into(),
        })?;
        for _ in 0..ch.len_utf8() {
            self.bump();
        }
        Ok(ch)
    }

    fn parse_char_data(&mut self) -> Result<String, ParseError> {
        let mut out = String::new();
        loop {
            match self.peek() {
                None | Some(b'<') => return Ok(out),
                Some(b'&') => {
                    let c = self.parse_reference()?;
                    out.push_str(&c);
                }
                Some(b']') if self.starts_with("]]>") => {
                    return self.err("`]]>` not allowed in character data");
                }
                Some(_) => out.push(self.bump_char()?),
            }
        }
    }

    fn parse_reference(&mut self) -> Result<String, ParseError> {
        self.expect("&")?;
        if self.eat("#") {
            let hex = self.eat("x");
            let start = self.pos;
            while matches!(self.peek(), Some(c) if (c as char).is_ascii_hexdigit()) {
                self.bump();
            }
            let digits =
                std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| ParseError {
                    line: self.line,
                    col: self.col,
                    msg: "invalid UTF-8".into(),
                })?;
            self.expect(";")?;
            let code = u32::from_str_radix(digits, if hex { 16 } else { 10 })
                .ok()
                .and_then(char::from_u32);
            match code {
                Some(c) => Ok(c.to_string()),
                None => self.err("invalid character reference"),
            }
        } else {
            let name = self.parse_name()?;
            self.expect(";")?;
            match name.as_str() {
                "amp" => Ok("&".into()),
                "lt" => Ok("<".into()),
                "gt" => Ok(">".into()),
                "apos" => Ok("'".into()),
                "quot" => Ok("\"".into()),
                other => self.err(format!("unknown entity `&{other};`")),
            }
        }
    }

    fn parse_comment(&mut self) -> Result<String, ParseError> {
        self.expect("<!--")?;
        let start = self.pos;
        loop {
            if self.starts_with("-->") {
                let text = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| ParseError {
                        line: self.line,
                        col: self.col,
                        msg: "invalid UTF-8".into(),
                    })?
                    .to_string();
                if text.contains("--") {
                    return self.err("`--` not allowed inside comments");
                }
                self.expect("-->")?;
                return Ok(text);
            }
            if self.bump().is_none() {
                return self.err("unterminated comment");
            }
        }
    }

    fn parse_cdata(&mut self) -> Result<String, ParseError> {
        self.expect("<![CDATA[")?;
        let start = self.pos;
        loop {
            if self.starts_with("]]>") {
                let text = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| ParseError {
                        line: self.line,
                        col: self.col,
                        msg: "invalid UTF-8".into(),
                    })?
                    .to_string();
                self.expect("]]>")?;
                return Ok(text);
            }
            if self.bump().is_none() {
                return self.err("unterminated CDATA section");
            }
        }
    }

    fn parse_pi(&mut self) -> Result<(String, String), ParseError> {
        self.expect("<?")?;
        let target = self.parse_name()?;
        if target.eq_ignore_ascii_case("xml") {
            return self.err("reserved PI target `xml`");
        }
        self.skip_ws();
        let data = self.read_until("?>")?;
        Ok((target, data))
    }

    fn read_until(&mut self, delim: &str) -> Result<String, ParseError> {
        let start = self.pos;
        loop {
            if self.starts_with(delim) {
                let text = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| ParseError {
                        line: self.line,
                        col: self.col,
                        msg: "invalid UTF-8".into(),
                    })?
                    .to_string();
                self.expect(delim)?;
                return Ok(text);
            }
            if self.bump().is_none() {
                return self.err(format!("expected `{delim}` before end of input"));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serializer::serialize;

    fn roundtrip(s: &str) -> String {
        serialize(&parse(s).unwrap())
    }

    #[test]
    fn simple_roundtrip() {
        assert_eq!(
            roundtrip("<a><b x=\"1\">hi</b></a>"),
            "<a><b x=\"1\">hi</b></a>"
        );
    }

    #[test]
    fn self_closing_and_whitespace() {
        assert_eq!(roundtrip("<a>\n  <b/>\n</a>"), "<a>\n  <b/>\n</a>");
    }

    #[test]
    fn entities_decoded() {
        let doc = parse("<a>&lt;&amp;&gt;&#65;&#x42;</a>").unwrap();
        assert_eq!(doc.root().string_value(), "<&>AB");
    }

    #[test]
    fn entities_reencoded_on_serialize() {
        assert_eq!(roundtrip("<a>&lt;&amp;</a>"), "<a>&lt;&amp;</a>");
    }

    #[test]
    fn cdata_becomes_text() {
        let doc = parse("<a><![CDATA[<raw>&]]></a>").unwrap();
        assert_eq!(doc.root().string_value(), "<raw>&");
    }

    #[test]
    fn comments_and_pis_preserved() {
        assert_eq!(
            roundtrip("<a><!--note--><?t d?></a>"),
            "<a><!--note--><?t d?></a>"
        );
    }

    #[test]
    fn xml_decl_skipped() {
        let doc = parse("<?xml version=\"1.0\" encoding=\"UTF-8\"?><a/>").unwrap();
        assert_eq!(serialize(&doc), "<a/>");
    }

    #[test]
    fn namespace_resolution() {
        let doc = parse(r#"<w:a xmlns:w="urn:w"><w:b/><c xmlns="urn:d"/></w:a>"#).unwrap();
        let a = doc.document_element().unwrap();
        assert_eq!(a.name().unwrap().ns.as_deref(), Some("urn:w"));
        let kids = a.children();
        assert_eq!(kids[0].name().unwrap().ns.as_deref(), Some("urn:w"));
        assert_eq!(kids[1].name().unwrap().ns.as_deref(), Some("urn:d"));
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse("<a><b></a>").is_err()); // mismatched tags
        assert!(parse("<a x='1' x='2'/>").is_err()); // duplicate attr
        assert!(parse("<a>&bogus;</a>").is_err()); // unknown entity
        assert!(parse("<a>").is_err()); // unterminated
        assert!(parse("text only").is_err()); // no root element
        assert!(parse("<a/><b/>").is_err()); // two roots
        assert!(parse("<!DOCTYPE a><a/>").is_err()); // DTD rejected
        assert!(parse(r#"<p:a xmlns:q="u"/>"#).is_err()); // undeclared prefix
    }

    #[test]
    fn error_location() {
        let err = parse("<a>\n<b></c></a>").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn fragment_allows_multiple_roots_and_text() {
        let doc = parse_fragment("alpha<a/>beta<b/>").unwrap();
        assert_eq!(doc.root().children().len(), 4);
    }

    #[test]
    fn unicode_content() {
        let doc = parse("<a>grüße 漢字</a>").unwrap();
        assert_eq!(doc.root().string_value(), "grüße 漢字");
    }
}
