//! Qualified XML names.
//!
//! Demaq's QDL requires "the names of structures are always qualified XML
//! names"; the paper then assumes a default namespace and omits prefixes.
//! We model a [`QName`] as an optional namespace URI plus a local part; the
//! original lexical prefix is retained for serialization fidelity.

use std::fmt;

/// A qualified XML name: `(namespace-uri?, local-name)` with an optional
/// remembered prefix.
///
/// Equality and hashing consider only the namespace URI and local part, as
/// required by the XML Namespaces recommendation — the prefix is merely a
/// lexical artifact.
#[derive(Debug, Clone, Default)]
pub struct QName {
    /// Namespace URI this name is bound to, if any.
    pub ns: Option<String>,
    /// Prefix under which the name was written, if any (serialization only).
    pub prefix: Option<String>,
    /// Local part of the name.
    pub local: String,
}

impl QName {
    /// A name in no namespace.
    pub fn local(local: impl Into<String>) -> Self {
        QName {
            ns: None,
            prefix: None,
            local: local.into(),
        }
    }

    /// A name in a namespace, without a remembered prefix.
    pub fn ns(ns: impl Into<String>, local: impl Into<String>) -> Self {
        QName {
            ns: Some(ns.into()),
            prefix: None,
            local: local.into(),
        }
    }

    /// A fully spelled-out name.
    pub fn full(
        ns: impl Into<String>,
        prefix: impl Into<String>,
        local: impl Into<String>,
    ) -> Self {
        QName {
            ns: Some(ns.into()),
            prefix: Some(prefix.into()),
            local: local.into(),
        }
    }

    /// The lexical form `prefix:local`, or just `local` when unprefixed.
    pub fn lexical(&self) -> String {
        match &self.prefix {
            Some(p) if !p.is_empty() => format!("{}:{}", p, self.local),
            _ => self.local.clone(),
        }
    }

    /// True if local part (and namespace, when `other` has one) match.
    /// Used for name tests where the query side is namespace-agnostic.
    pub fn matches(&self, other: &QName) -> bool {
        if self.local != other.local {
            return false;
        }
        match (&self.ns, &other.ns) {
            (Some(a), Some(b)) => a == b,
            // A namespace-less name test matches regardless of the node's
            // namespace: the paper's programs are written prefix-free under
            // an assumed default namespace.
            (None, _) | (_, None) => true,
        }
    }

    /// Parse a lexical QName (`p:local` or `local`). No namespace resolution
    /// is performed; the prefix is retained.
    pub fn parse_lexical(s: &str) -> Option<QName> {
        if s.is_empty() {
            return None;
        }
        match s.split_once(':') {
            Some((p, l)) => {
                if p.is_empty() || l.is_empty() || l.contains(':') {
                    None
                } else {
                    Some(QName {
                        ns: None,
                        prefix: Some(p.to_string()),
                        local: l.to_string(),
                    })
                }
            }
            None => Some(QName::local(s)),
        }
    }
}

impl PartialEq for QName {
    fn eq(&self, other: &Self) -> bool {
        self.local == other.local && self.ns == other.ns
    }
}
impl Eq for QName {}

impl std::hash::Hash for QName {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.ns.hash(state);
        self.local.hash(state);
    }
}

impl PartialOrd for QName {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QName {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (&self.ns, &self.local).cmp(&(&other.ns, &other.local))
    }
}

impl fmt::Display for QName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.lexical())
    }
}

impl From<&str> for QName {
    fn from(s: &str) -> Self {
        QName::parse_lexical(s).unwrap_or_else(|| QName::local(s))
    }
}

/// Check that a string is a valid XML NCName (no colon).
pub fn is_ncname(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_alphanumeric() || c == '_' || c == '-' || c == '.')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexical_roundtrip() {
        let q = QName::parse_lexical("ws:order").unwrap();
        assert_eq!(q.prefix.as_deref(), Some("ws"));
        assert_eq!(q.local, "order");
        assert_eq!(q.lexical(), "ws:order");
    }

    #[test]
    fn unprefixed() {
        let q = QName::parse_lexical("order").unwrap();
        assert_eq!(q.prefix, None);
        assert_eq!(q.lexical(), "order");
    }

    #[test]
    fn invalid_lexical_forms() {
        assert!(QName::parse_lexical("").is_none());
        assert!(QName::parse_lexical(":x").is_none());
        assert!(QName::parse_lexical("x:").is_none());
        assert!(QName::parse_lexical("a:b:c").is_none());
    }

    #[test]
    fn equality_ignores_prefix() {
        let a = QName::full("urn:x", "p", "n");
        let b = QName::full("urn:x", "q", "n");
        assert_eq!(a, b);
        let c = QName::ns("urn:y", "n");
        assert_ne!(a, c);
    }

    #[test]
    fn ns_agnostic_matching() {
        let node = QName::ns("urn:x", "order");
        let test = QName::local("order");
        assert!(test.matches(&node));
        assert!(node.matches(&test));
        assert!(!QName::local("other").matches(&node));
    }

    #[test]
    fn ncname_check() {
        assert!(is_ncname("foo"));
        assert!(is_ncname("_a-b.c1"));
        assert!(!is_ncname("1abc"));
        assert!(!is_ncname(""));
        assert!(!is_ncname("a b"));
    }
}
