//! Structural "schema-lite" validation.
//!
//! QDL's `create queue ... schema <name>` clause lets an application demand
//! that every queued message conform to a schema; Demaq raises a
//! message-related error otherwise (paper Sec. 3.6: "rules create messages
//! whose schema is incompatible with the target queue's schema").
//!
//! The paper references full XML Schema; we substitute a compact structural
//! language that covers what the paper's scenarios rely on — element
//! vocabularies, content models with occurrence indicators, required
//! attributes, and a typed-text check:
//!
//! ```text
//! schema order-schema
//! root order
//! element order { orderID, customer, items+ } attrs { date }
//! element orderID text integer
//! element customer { name, address? }
//! element items { item* }
//! element item text
//! element name text
//! element address text
//! ```
//!
//! Occurrence indicators: none = exactly one, `?` = optional, `*` = any,
//! `+` = at least one. Children may appear in any order (interleave
//! semantics, closer to RELAX NG than DTD sequences, and forgiving enough
//! for message payloads). Elements not declared are rejected; an element
//! declared as `element x any` admits arbitrary content.

use crate::tree::{NodeKind, NodeRef};
use std::collections::HashMap;
use std::fmt;

/// Occurrence constraint for a child element.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Occurs {
    One,
    Optional,
    Many,
    OneOrMore,
}

impl Occurs {
    fn admits(&self, n: usize) -> bool {
        match self {
            Occurs::One => n == 1,
            Occurs::Optional => n <= 1,
            Occurs::Many => true,
            Occurs::OneOrMore => n >= 1,
        }
    }
}

/// Text content constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TextType {
    #[default]
    None,
    /// Any character data.
    Any,
    /// Must parse as an integer.
    Integer,
    /// Must parse as a decimal number.
    Decimal,
    /// Must be `true`/`false`/`1`/`0`.
    Boolean,
}

/// Declaration of one element.
#[derive(Debug, Clone, Default)]
pub struct ElementDecl {
    /// Allowed children with occurrence constraints.
    pub children: Vec<(String, Occurs)>,
    /// Required attribute names.
    pub attrs: Vec<String>,
    /// Text content constraint.
    pub text: TextType,
    /// If true, arbitrary content is accepted below this element.
    pub any: bool,
}

/// A parsed schema: named element declarations plus a root element name.
#[derive(Debug, Clone)]
pub struct Schema {
    pub name: String,
    pub root: Option<String>,
    pub elements: HashMap<String, ElementDecl>,
}

/// A validation failure with a path to the offending node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemaError {
    pub path: String,
    pub msg: String,
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "schema violation at {}: {}", self.path, self.msg)
    }
}
impl std::error::Error for SchemaError {}

impl Schema {
    /// Parse the schema-lite text format. Lines: `schema NAME`,
    /// `root NAME`, `element NAME [any] [{ child[?*+], ... }]
    /// [attrs { a, b }] [text [integer|decimal|boolean]]`.
    /// `#` starts a comment.
    pub fn parse(input: &str) -> Result<Schema, String> {
        let mut schema = Schema {
            name: String::new(),
            root: None,
            elements: HashMap::new(),
        };
        for (lineno, raw) in input.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let err = |m: String| format!("schema line {}: {}", lineno + 1, m);
            let (kw, rest) = line.split_once(char::is_whitespace).unwrap_or((line, ""));
            let rest = rest.trim();
            match kw {
                "schema" => schema.name = rest.to_string(),
                "root" => schema.root = Some(rest.to_string()),
                "element" => {
                    let (name, decl) = parse_element_line(rest).map_err(err)?;
                    if schema.elements.insert(name.clone(), decl).is_some() {
                        return Err(err(format!("duplicate element declaration `{name}`")));
                    }
                }
                other => return Err(err(format!("unknown keyword `{other}`"))),
            }
        }
        // Referential integrity: every referenced child must be declared.
        for (name, decl) in &schema.elements {
            for (child, _) in &decl.children {
                if !schema.elements.contains_key(child) {
                    return Err(format!(
                        "element `{name}` references undeclared child `{child}`"
                    ));
                }
            }
        }
        if let Some(root) = &schema.root {
            if !schema.elements.contains_key(root) {
                return Err(format!("root element `{root}` is not declared"));
            }
        }
        Ok(schema)
    }

    /// Validate a document node (or element). Returns all violations.
    pub fn validate(&self, node: &NodeRef) -> Vec<SchemaError> {
        let mut errors = Vec::new();
        let element = if node.is_document() {
            match node.children().into_iter().find(|c| c.is_element()) {
                Some(e) => e,
                None => {
                    errors.push(SchemaError {
                        path: "/".into(),
                        msg: "document has no element".into(),
                    });
                    return errors;
                }
            }
        } else {
            node.clone()
        };
        if let Some(root) = &self.root {
            let actual = element.name().map(|q| q.local.clone()).unwrap_or_default();
            if &actual != root {
                errors.push(SchemaError {
                    path: format!("/{actual}"),
                    msg: format!("root element must be `{root}`"),
                });
                return errors;
            }
        }
        self.validate_element(&element, &mut String::new(), &mut errors);
        errors
    }

    /// Convenience: true when the node has no violations.
    pub fn is_valid(&self, node: &NodeRef) -> bool {
        self.validate(node).is_empty()
    }

    fn validate_element(&self, el: &NodeRef, path: &mut String, errors: &mut Vec<SchemaError>) {
        let name = el.name().map(|q| q.local.clone()).unwrap_or_default();
        let prev_len = path.len();
        path.push('/');
        path.push_str(&name);

        let Some(decl) = self.elements.get(&name) else {
            errors.push(SchemaError {
                path: path.clone(),
                msg: format!("undeclared element `{name}`"),
            });
            path.truncate(prev_len);
            return;
        };
        if !decl.any {
            // Attribute presence.
            for required in &decl.attrs {
                if el.attribute(required).is_none() {
                    errors.push(SchemaError {
                        path: path.clone(),
                        msg: format!("missing required attribute `{required}`"),
                    });
                }
            }
            // Child vocabulary + occurrence.
            let mut counts: HashMap<&str, usize> = HashMap::new();
            for c in el.children() {
                match c.kind() {
                    NodeKind::Element(q) => {
                        let allowed = decl.children.iter().any(|(n, _)| *n == q.local);
                        if !allowed {
                            errors.push(SchemaError {
                                path: path.clone(),
                                msg: format!("child `{}` not allowed in `{name}`", q.local),
                            });
                        } else {
                            *counts
                                .entry(
                                    decl.children
                                        .iter()
                                        .find(|(n, _)| *n == q.local)
                                        .map(|(n, _)| n.as_str())
                                        .unwrap(),
                                )
                                .or_insert(0) += 1;
                            self.validate_element(&c, path, errors);
                        }
                    }
                    NodeKind::Text(t) if decl.text == TextType::None && !t.trim().is_empty() => {
                        errors.push(SchemaError {
                            path: path.clone(),
                            msg: format!("text content not allowed in `{name}`"),
                        });
                    }
                    _ => {}
                }
            }
            for (child, occurs) in &decl.children {
                let n = counts.get(child.as_str()).copied().unwrap_or(0);
                if !occurs.admits(n) {
                    errors.push(SchemaError {
                        path: path.clone(),
                        msg: format!("child `{child}` occurs {n} times, violating {occurs:?}"),
                    });
                }
            }
            // Typed text check.
            let text = el.string_value();
            let text = text.trim();
            let ok = match decl.text {
                TextType::None | TextType::Any => true,
                TextType::Integer => text.parse::<i64>().is_ok(),
                TextType::Decimal => text.parse::<f64>().is_ok(),
                TextType::Boolean => matches!(text, "true" | "false" | "1" | "0"),
            };
            if !ok {
                errors.push(SchemaError {
                    path: path.clone(),
                    msg: format!("text `{text}` does not match {:?}", decl.text),
                });
            }
        }
        path.truncate(prev_len);
    }
}

fn parse_element_line(rest: &str) -> Result<(String, ElementDecl), String> {
    let mut decl = ElementDecl::default();
    let mut s = rest.trim();
    let name_end = s.find(|c: char| c.is_whitespace()).unwrap_or(s.len());
    let name = s[..name_end].to_string();
    if name.is_empty() {
        return Err("element declaration needs a name".into());
    }
    s = s[name_end..].trim();
    loop {
        if s.is_empty() {
            break;
        } else if let Some(r) = s.strip_prefix("any") {
            decl.any = true;
            s = r.trim();
        } else if s.starts_with('{') {
            let close = s.find('}').ok_or("unclosed `{`")?;
            for part in s[1..close].split(',') {
                let part = part.trim();
                if part.is_empty() {
                    continue;
                }
                let (child, occurs) = match part.chars().last() {
                    Some('?') => (&part[..part.len() - 1], Occurs::Optional),
                    Some('*') => (&part[..part.len() - 1], Occurs::Many),
                    Some('+') => (&part[..part.len() - 1], Occurs::OneOrMore),
                    _ => (part, Occurs::One),
                };
                decl.children.push((child.trim().to_string(), occurs));
            }
            s = s[close + 1..].trim();
        } else if let Some(r) = s.strip_prefix("attrs") {
            let r = r.trim();
            let r = r.strip_prefix('{').ok_or("attrs needs `{`")?;
            let close = r.find('}').ok_or("unclosed attrs `{`")?;
            for part in r[..close].split(',') {
                let part = part.trim();
                if !part.is_empty() {
                    decl.attrs.push(part.to_string());
                }
            }
            s = r[close + 1..].trim();
        } else if let Some(r) = s.strip_prefix("text") {
            let r = r.trim();
            let (ty, rem) = if let Some(x) = r.strip_prefix("integer") {
                (TextType::Integer, x)
            } else if let Some(x) = r.strip_prefix("decimal") {
                (TextType::Decimal, x)
            } else if let Some(x) = r.strip_prefix("boolean") {
                (TextType::Boolean, x)
            } else {
                (TextType::Any, r)
            };
            decl.text = ty;
            s = rem.trim();
        } else {
            return Err(format!("unexpected tokens `{s}`"));
        }
    }
    Ok((name, decl))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    const ORDER_SCHEMA: &str = "
        schema order
        root order
        element order { orderID, item+ } attrs { date }
        element orderID text integer
        element item text
    ";

    fn schema() -> Schema {
        Schema::parse(ORDER_SCHEMA).unwrap()
    }

    #[test]
    fn valid_document_passes() {
        let doc = parse("<order date='2026-07-05'><orderID>7</orderID><item>acid</item></order>")
            .unwrap();
        assert!(
            schema().is_valid(&doc.root()),
            "{:?}",
            schema().validate(&doc.root())
        );
    }

    #[test]
    fn wrong_root_rejected() {
        let doc = parse("<invoice/>").unwrap();
        let errs = schema().validate(&doc.root());
        assert!(errs[0].msg.contains("root element"));
    }

    #[test]
    fn missing_required_attr() {
        let doc = parse("<order><orderID>7</orderID><item>x</item></order>").unwrap();
        let errs = schema().validate(&doc.root());
        assert!(errs.iter().any(|e| e.msg.contains("date")));
    }

    #[test]
    fn occurrence_violations() {
        let doc =
            parse("<order date='d'><orderID>1</orderID><orderID>2</orderID></order>").unwrap();
        let errs = schema().validate(&doc.root());
        assert!(errs.iter().any(|e| e.msg.contains("orderID")));
        assert!(errs.iter().any(|e| e.msg.contains("item")));
    }

    #[test]
    fn typed_text() {
        let doc = parse("<order date='d'><orderID>seven</orderID><item>x</item></order>").unwrap();
        let errs = schema().validate(&doc.root());
        assert!(errs.iter().any(|e| e.msg.contains("Integer")));
    }

    #[test]
    fn undeclared_child_rejected() {
        let doc =
            parse("<order date='d'><orderID>1</orderID><item>x</item><extra/></order>").unwrap();
        let errs = schema().validate(&doc.root());
        assert!(errs.iter().any(|e| e.msg.contains("extra")));
    }

    #[test]
    fn any_element_admits_everything() {
        let s = Schema::parse("root e\nelement e any").unwrap();
        let doc = parse("<e><x><y z='1'>t</y></x></e>").unwrap();
        assert!(s.is_valid(&doc.root()));
    }

    #[test]
    fn schema_parse_errors() {
        assert!(Schema::parse("element a { b }").is_err()); // b undeclared
        assert!(Schema::parse("root r").is_err()); // r undeclared
        assert!(Schema::parse("bogus x").is_err());
        assert!(Schema::parse("element a { b").is_err()); // unclosed brace
    }
}
