//! XML serialization: compact (canonical-ish) and pretty-printed forms.

use crate::tree::{Document, NodeKind, NodeRef};
use std::fmt::Write;
use std::sync::Arc;

/// Serialize a whole document compactly (no added whitespace).
pub fn serialize(doc: &Arc<Document>) -> String {
    serialize_node(&doc.root())
}

/// Serialize a node and its subtree compactly.
pub fn serialize_node(node: &NodeRef) -> String {
    let mut out = String::new();
    write_node(&mut out, node, None, 0);
    out
}

/// Serialize a document with 2-space indentation. Text-only elements stay
/// on one line; mixed content is emitted verbatim to avoid changing the
/// string value.
pub fn serialize_pretty(doc: &Arc<Document>) -> String {
    let mut out = String::new();
    write_node(&mut out, &doc.root(), Some(2), 0);
    if !out.ends_with('\n') {
        out.push('\n');
    }
    out
}

fn write_node(out: &mut String, node: &NodeRef, indent: Option<usize>, depth: usize) {
    match node.kind() {
        NodeKind::Document => {
            for c in node.children() {
                write_node(out, &c, indent, depth);
                if indent.is_some() && !out.ends_with('\n') {
                    out.push('\n');
                }
            }
        }
        NodeKind::Element(name) => {
            if let Some(step) = indent {
                pad(out, step * depth);
            }
            out.push('<');
            out.push_str(&name.lexical());
            for a in node.attributes() {
                if let NodeKind::Attribute(an, av) = a.kind() {
                    let _ = write!(out, " {}=\"{}\"", an.lexical(), escape_attr(av));
                }
            }
            let children = node.children();
            if children.is_empty() {
                out.push_str("/>");
                if indent.is_some() {
                    out.push('\n');
                }
                return;
            }
            out.push('>');
            let text_only = children.iter().all(|c| c.is_text());
            let has_text = children.iter().any(|c| c.is_text());
            match indent {
                Some(step) if !has_text => {
                    out.push('\n');
                    for c in &children {
                        write_node(out, c, indent, depth + 1);
                    }
                    pad(out, step * depth);
                }
                Some(_) if text_only => {
                    for c in &children {
                        write_node(out, c, None, 0);
                    }
                }
                _ => {
                    // Mixed content: no reformatting (preserves string value).
                    for c in &children {
                        write_node(out, c, None, 0);
                    }
                }
            }
            out.push_str("</");
            out.push_str(&name.lexical());
            out.push('>');
            if indent.is_some() {
                out.push('\n');
            }
        }
        NodeKind::Attribute(an, av) => {
            let _ = write!(out, "{}=\"{}\"", an.lexical(), escape_attr(av));
        }
        NodeKind::Text(t) => out.push_str(&escape_text(t)),
        NodeKind::Comment(c) => {
            if let Some(step) = indent {
                pad(out, step * depth);
            }
            let _ = write!(out, "<!--{c}-->");
            if indent.is_some() {
                out.push('\n');
            }
        }
        NodeKind::Pi { target, data } => {
            if let Some(step) = indent {
                pad(out, step * depth);
            }
            if data.is_empty() {
                let _ = write!(out, "<?{target}?>");
            } else {
                let _ = write!(out, "<?{target} {data}?>");
            }
            if indent.is_some() {
                out.push('\n');
            }
        }
    }
}

fn pad(out: &mut String, n: usize) {
    for _ in 0..n {
        out.push(' ');
    }
}

/// Escape character data.
pub fn escape_text(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            _ => out.push(c),
        }
    }
    out
}

/// Escape an attribute value for double-quoted emission.
pub fn escape_attr(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '"' => out.push_str("&quot;"),
            '\n' => out.push_str("&#10;"),
            '\t' => out.push_str("&#9;"),
            _ => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn escapes_special_chars() {
        let mut b = crate::DocBuilder::new();
        b.start("a").attr("x", "a\"b<c").text("1 < 2 & 3 > 2").end();
        let doc = b.finish();
        assert_eq!(
            serialize(&doc),
            "<a x=\"a&quot;b&lt;c\">1 &lt; 2 &amp; 3 &gt; 2</a>"
        );
        // Roundtrip: parse what we emitted and compare string values.
        let doc2 = parse(&serialize(&doc)).unwrap();
        assert!(doc.root().deep_equal(&doc2.root()));
    }

    #[test]
    fn pretty_print_structure() {
        let doc = parse("<a><b><c>x</c></b><d/></a>").unwrap();
        let pretty = serialize_pretty(&doc);
        assert_eq!(pretty, "<a>\n  <b>\n    <c>x</c>\n  </b>\n  <d/>\n</a>\n");
        // Pretty output re-parses to a doc with identical element structure.
        let doc2 = parse(&pretty).unwrap();
        let names = |d: &std::sync::Arc<crate::Document>| {
            d.root()
                .descendants()
                .iter()
                .filter_map(|n| n.name().map(|q| q.local.clone()))
                .collect::<Vec<_>>()
        };
        assert_eq!(names(&doc), names(&doc2));
    }

    #[test]
    fn mixed_content_not_reformatted() {
        let doc = parse("<p>hello <b>world</b>!</p>").unwrap();
        let pretty = serialize_pretty(&doc);
        assert_eq!(pretty, "<p>hello <b>world</b>!</p>\n");
    }
}
