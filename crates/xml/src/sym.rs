//! Global name interning.
//!
//! Element, attribute, and variable names repeat endlessly across messages
//! and queries, yet the evaluator used to compare them as strings on every
//! name test. The interner maps each distinct name to a dense [`Sym`] id
//! once, so the hot path compares two `u32`s instead (the classic trick of
//! mature XQuery processors — BaseX and Saxon both intern QNames into a
//! global name pool).
//!
//! The table is process-global and append-only: symbols are never freed.
//! That is safe because the name universe of a deployed Demaq application
//! is finite (schema element names, rule-body name tests, variable names);
//! message *content* is never interned, only names. Reads take a shared
//! lock and one hash probe; the write path runs once per distinct name for
//! the process lifetime.

use std::collections::HashMap;
use std::sync::{OnceLock, RwLock};

/// An interned name: integer equality ⇔ string equality of the name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Sym(pub u32);

struct Interner {
    map: HashMap<Box<str>, u32>,
    names: Vec<Box<str>>,
}

static TABLE: OnceLock<RwLock<Interner>> = OnceLock::new();

fn table() -> &'static RwLock<Interner> {
    TABLE.get_or_init(|| {
        RwLock::new(Interner {
            map: HashMap::new(),
            names: Vec::new(),
        })
    })
}

/// Intern a name, returning its stable symbol.
pub fn intern(name: &str) -> Sym {
    if let Some(&id) = table().read().expect("interner lock").map.get(name) {
        return Sym(id);
    }
    let mut t = table().write().expect("interner lock");
    if let Some(&id) = t.map.get(name) {
        return Sym(id); // raced with another writer
    }
    let id = u32::try_from(t.names.len()).expect("interner capacity");
    let boxed: Box<str> = name.into();
    t.names.push(boxed.clone());
    t.map.insert(boxed, id);
    Sym(id)
}

/// The string a symbol was interned from.
pub fn resolve(sym: Sym) -> String {
    table().read().expect("interner lock").names[sym.0 as usize].to_string()
}

/// Number of distinct names interned so far (exposed as the
/// `demaq_xquery_interned_symbols` gauge).
pub fn interned_count() -> u64 {
    table().read().expect("interner lock").names.len() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent_and_resolvable() {
        let a = intern("offerRequest");
        let b = intern("offerRequest");
        assert_eq!(a, b);
        assert_eq!(resolve(a), "offerRequest");
        let c = intern("customerID");
        assert_ne!(a, c);
    }

    #[test]
    fn count_is_monotone() {
        let before = interned_count();
        intern("sym-count-test-unique-name");
        assert!(interned_count() > before);
        let again = interned_count();
        intern("sym-count-test-unique-name");
        assert_eq!(interned_count(), again);
    }
}
