//! Immutable, arena-based XML document tree.
//!
//! Every [`Document`] owns a flat arena of nodes. Node ids are assigned in
//! document order during construction (element, then its attributes, then
//! its children), so comparing `(doc_seq, NodeId)` pairs yields the total
//! document order that XQuery path semantics require.
//!
//! Documents are frozen after construction. This mirrors Demaq's
//! append-only message store — "messages are never modified after they have
//! been created" — and lets the engine share trees across threads without
//! synchronization.

use crate::qname::QName;
use crate::sym::{self, Sym};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Index of a node within its document's arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The document node itself is always node 0.
    pub const DOC: NodeId = NodeId(0);
}

/// The kind (and kind-specific payload) of a node.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeKind {
    /// The document root; children are the top-level nodes.
    Document,
    /// An element with a qualified name.
    Element(QName),
    /// An attribute with a name and string value.
    Attribute(QName, String),
    /// A text node.
    Text(String),
    /// A comment.
    Comment(String),
    /// A processing instruction `<?target data?>`.
    Pi { target: String, data: String },
}

/// Arena slot for a single node.
#[derive(Debug, Clone)]
pub struct NodeData {
    /// Parent node; `None` only for the document node.
    pub parent: Option<NodeId>,
    /// Kind and payload.
    pub kind: NodeKind,
    /// Child nodes in document order (elements/text/comments/PIs).
    pub children: Vec<NodeId>,
    /// Attribute nodes (elements only).
    pub attrs: Vec<NodeId>,
}

static DOC_SEQ: AtomicU64 = AtomicU64::new(1);

/// Sentinel in [`Document::name_syms`] for unnamed nodes (text, comments,
/// PIs, the document node).
const NO_SYM: Sym = Sym(u32::MAX);

/// A frozen XML document.
pub struct Document {
    /// Globally unique, monotonically increasing id; gives a stable total
    /// order across documents (XQuery's "implementation-defined" inter-
    /// document order).
    pub doc_seq: u64,
    pub(crate) nodes: Vec<NodeData>,
    /// Interned local name per arena slot ([`NO_SYM`] for unnamed nodes).
    /// Computed once at freeze time so name tests over this document are
    /// integer comparisons.
    name_syms: Vec<Sym>,
}

impl fmt::Debug for Document {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Document(seq={}, nodes={})",
            self.doc_seq,
            self.nodes.len()
        )
    }
}

impl Document {
    pub(crate) fn from_arena(nodes: Vec<NodeData>) -> Arc<Document> {
        let name_syms = nodes
            .iter()
            .map(|n| match &n.kind {
                NodeKind::Element(q) | NodeKind::Attribute(q, _) => sym::intern(&q.local),
                _ => NO_SYM,
            })
            .collect();
        Arc::new(Document {
            doc_seq: DOC_SEQ.fetch_add(1, Ordering::Relaxed),
            nodes,
            name_syms,
        })
    }

    /// Number of nodes including the document node.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the document contains only the document node.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    /// Access raw node data.
    pub fn node(&self, id: NodeId) -> &NodeData {
        &self.nodes[id.0 as usize]
    }

    /// The root node reference of this document.
    pub fn root(self: &Arc<Self>) -> NodeRef {
        NodeRef {
            doc: Arc::clone(self),
            id: NodeId::DOC,
        }
    }

    /// The single top-level element, if there is exactly one.
    pub fn document_element(self: &Arc<Self>) -> Option<NodeRef> {
        let mut found = None;
        for &c in &self.nodes[0].children {
            if matches!(self.node(c).kind, NodeKind::Element(_)) {
                if found.is_some() {
                    return None;
                }
                found = Some(NodeRef {
                    doc: Arc::clone(self),
                    id: c,
                });
            }
        }
        found
    }
}

/// A reference to a node: a document handle plus a node id.
///
/// Cheap to clone (one `Arc` bump). Identity (`is_same_node`) and document
/// order are total across all documents.
#[derive(Clone)]
pub struct NodeRef {
    pub doc: Arc<Document>,
    pub id: NodeId,
}

impl fmt::Debug for NodeRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "NodeRef(doc={}, id={}, kind={:?})",
            self.doc.doc_seq,
            self.id.0,
            self.kind()
        )
    }
}

impl PartialEq for NodeRef {
    fn eq(&self, other: &Self) -> bool {
        self.is_same_node(other)
    }
}
impl Eq for NodeRef {}

impl PartialOrd for NodeRef {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for NodeRef {
    /// Document order: within one document by arena id (pre-order), across
    /// documents by document sequence number.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.doc.doc_seq, self.id).cmp(&(other.doc.doc_seq, other.id))
    }
}

impl std::hash::Hash for NodeRef {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.doc.doc_seq.hash(state);
        self.id.hash(state);
    }
}

impl NodeRef {
    fn data(&self) -> &NodeData {
        self.doc.node(self.id)
    }

    fn wrap(&self, id: NodeId) -> NodeRef {
        NodeRef {
            doc: Arc::clone(&self.doc),
            id,
        }
    }

    /// Node identity: same document, same arena slot.
    pub fn is_same_node(&self, other: &NodeRef) -> bool {
        self.doc.doc_seq == other.doc.doc_seq && self.id == other.id
    }

    /// The node kind.
    pub fn kind(&self) -> &NodeKind {
        &self.data().kind
    }

    /// Element or attribute name, if applicable.
    pub fn name(&self) -> Option<&QName> {
        match &self.data().kind {
            NodeKind::Element(q) | NodeKind::Attribute(q, _) => Some(q),
            _ => None,
        }
    }

    /// Interned local name of an element/attribute node (see [`crate::sym`]).
    /// `None` for unnamed node kinds. One array read — the evaluator's name
    /// tests compare this against a pre-interned test symbol.
    pub fn name_sym(&self) -> Option<Sym> {
        let s = self.doc.name_syms[self.id.0 as usize];
        (s != NO_SYM).then_some(s)
    }

    /// True for element nodes.
    pub fn is_element(&self) -> bool {
        matches!(self.data().kind, NodeKind::Element(_))
    }

    /// True for text nodes.
    pub fn is_text(&self) -> bool {
        matches!(self.data().kind, NodeKind::Text(_))
    }

    /// True for attribute nodes.
    pub fn is_attribute(&self) -> bool {
        matches!(self.data().kind, NodeKind::Attribute(..))
    }

    /// True for the document node.
    pub fn is_document(&self) -> bool {
        matches!(self.data().kind, NodeKind::Document)
    }

    /// Parent node, if any. Attributes' parent is their element.
    pub fn parent(&self) -> Option<NodeRef> {
        self.data().parent.map(|p| self.wrap(p))
    }

    /// Children in document order (no attributes).
    pub fn children(&self) -> Vec<NodeRef> {
        self.data().children.iter().map(|&c| self.wrap(c)).collect()
    }

    /// Attribute nodes of an element.
    pub fn attributes(&self) -> Vec<NodeRef> {
        self.data().attrs.iter().map(|&a| self.wrap(a)).collect()
    }

    /// Look up an attribute value by name.
    pub fn attribute(&self, name: &str) -> Option<String> {
        for &a in &self.data().attrs {
            if let NodeKind::Attribute(q, v) = &self.doc.node(a).kind {
                if q.local == name {
                    return Some(v.clone());
                }
            }
        }
        None
    }

    /// All descendant nodes (excluding self, excluding attributes), in
    /// document order.
    pub fn descendants(&self) -> Vec<NodeRef> {
        let mut out = Vec::new();
        self.collect_descendants(&mut out);
        out
    }

    fn collect_descendants(&self, out: &mut Vec<NodeRef>) {
        for c in self.children() {
            out.push(c.clone());
            c.collect_descendants(out);
        }
    }

    /// Ancestors from parent to the document node.
    pub fn ancestors(&self) -> Vec<NodeRef> {
        let mut out = Vec::new();
        let mut cur = self.parent();
        while let Some(n) = cur {
            cur = n.parent();
            out.push(n);
        }
        out
    }

    /// Following siblings in document order.
    pub fn following_siblings(&self) -> Vec<NodeRef> {
        self.sibling_split(false)
    }

    /// Preceding siblings in reverse document order.
    pub fn preceding_siblings(&self) -> Vec<NodeRef> {
        let mut v = self.sibling_split(true);
        v.reverse();
        v
    }

    fn sibling_split(&self, preceding: bool) -> Vec<NodeRef> {
        let Some(parent) = self.parent() else {
            return Vec::new();
        };
        let sibs = parent.children();
        let pos = sibs.iter().position(|s| s.id == self.id);
        match pos {
            Some(i) if preceding => sibs[..i].to_vec(),
            Some(i) => sibs[i + 1..].to_vec(),
            None => Vec::new(),
        }
    }

    /// The XPath string value: concatenation of all descendant text for
    /// elements/documents; the value itself for attributes/text/comments.
    pub fn string_value(&self) -> String {
        match &self.data().kind {
            NodeKind::Attribute(_, v) | NodeKind::Text(v) | NodeKind::Comment(v) => v.clone(),
            NodeKind::Pi { data, .. } => data.clone(),
            NodeKind::Document | NodeKind::Element(_) => {
                let mut s = String::new();
                self.collect_text(&mut s);
                s
            }
        }
    }

    fn collect_text(&self, out: &mut String) {
        for c in self.children() {
            match &c.data().kind {
                NodeKind::Text(t) => out.push_str(t),
                NodeKind::Element(_) => c.collect_text(out),
                _ => {}
            }
        }
    }

    /// Serialize this node (and subtree) to markup.
    pub fn to_xml(&self) -> String {
        crate::serializer::serialize_node(self)
    }

    /// Deep structural equality (ignores node identity): kinds, names,
    /// attribute sets, and child sequences must match. Used by `fn:deep-equal`
    /// and tests.
    pub fn deep_equal(&self, other: &NodeRef) -> bool {
        match (&self.data().kind, &other.data().kind) {
            (NodeKind::Text(a), NodeKind::Text(b)) => a == b,
            (NodeKind::Comment(a), NodeKind::Comment(b)) => a == b,
            (NodeKind::Attribute(an, av), NodeKind::Attribute(bn, bv)) => an == bn && av == bv,
            (
                NodeKind::Pi {
                    target: at,
                    data: ad,
                },
                NodeKind::Pi {
                    target: bt,
                    data: bd,
                },
            ) => at == bt && ad == bd,
            (NodeKind::Element(an), NodeKind::Element(bn)) => {
                if an != bn {
                    return false;
                }
                let (mut aa, mut ba) = (self.attributes(), other.attributes());
                if aa.len() != ba.len() {
                    return false;
                }
                let key = |n: &NodeRef| n.name().cloned().unwrap_or_default();
                aa.sort_by_key(&key);
                ba.sort_by_key(&key);
                if !aa.iter().zip(&ba).all(|(x, y)| x.deep_equal(y)) {
                    return false;
                }
                self.children_deep_equal(other)
            }
            (NodeKind::Document, NodeKind::Document) => self.children_deep_equal(other),
            _ => false,
        }
    }

    fn children_deep_equal(&self, other: &NodeRef) -> bool {
        let (ac, bc) = (self.children(), other.children());
        ac.len() == bc.len() && ac.iter().zip(&bc).all(|(x, y)| x.deep_equal(y))
    }
}

#[cfg(test)]
mod tests {
    use crate::parse;

    #[test]
    fn document_order_is_preorder() {
        let doc = parse("<a><b x='1'><c/></b><d/></a>").unwrap();
        let root = doc.document_element().unwrap();
        let desc = root.descendants();
        let names: Vec<_> = desc
            .iter()
            .filter_map(|n| n.name().map(|q| q.local.clone()))
            .collect();
        assert_eq!(names, ["b", "c", "d"]);
        // ids strictly increase in document order
        let mut sorted = desc.clone();
        sorted.sort();
        assert_eq!(
            desc.iter().map(|n| n.id).collect::<Vec<_>>(),
            sorted.iter().map(|n| n.id).collect::<Vec<_>>()
        );
    }

    #[test]
    fn attributes_sort_between_element_and_children() {
        let doc = parse("<a x='1'><b/></a>").unwrap();
        let a = doc.document_element().unwrap();
        let attr = &a.attributes()[0];
        let b = &a.children()[0];
        assert!(a < *attr);
        assert!(*attr < *b);
    }

    #[test]
    fn string_value_concatenates_descendant_text() {
        let doc = parse("<a>x<b>y</b>z</a>").unwrap();
        assert_eq!(doc.root().string_value(), "xyz");
    }

    #[test]
    fn ancestors_and_siblings() {
        let doc = parse("<a><b/><c/><d/></a>").unwrap();
        let kids = doc.document_element().unwrap().children();
        let c = &kids[1];
        assert_eq!(c.ancestors().len(), 2); // a, document
        assert_eq!(c.following_siblings().len(), 1);
        assert_eq!(c.preceding_siblings().len(), 1);
        assert_eq!(c.preceding_siblings()[0].name().unwrap().local, "b");
    }

    #[test]
    fn deep_equal_ignores_attr_order() {
        let d1 = parse("<a x='1' y='2'><b/>t</a>").unwrap();
        let d2 = parse("<a y='2' x='1'><b/>t</a>").unwrap();
        let d3 = parse("<a y='2' x='9'><b/>t</a>").unwrap();
        assert!(d1.root().deep_equal(&d2.root()));
        assert!(!d1.root().deep_equal(&d3.root()));
    }

    #[test]
    fn identity_differs_across_documents() {
        let d1 = parse("<a/>").unwrap();
        let d2 = parse("<a/>").unwrap();
        assert!(!d1.root().is_same_node(&d2.root()));
        assert!(d1.root().deep_equal(&d2.root()));
    }
}
