//! Property-based tests: serialize∘parse is the identity on document
//! trees, for arbitrary trees including hostile text content.

use demaq_xml::{parse, serialize, serialize_pretty, DocBuilder, Document};
use proptest::prelude::*;
use std::sync::Arc;

/// A generated XML node.
#[derive(Debug, Clone)]
enum GenNode {
    Element {
        name: String,
        attrs: Vec<(String, String)>,
        children: Vec<GenNode>,
    },
    Text(String),
    Comment(String),
}

fn name_strategy() -> impl Strategy<Value = String> {
    "[a-zA-Z][a-zA-Z0-9_.-]{0,8}".prop_map(|s| s)
}

/// Text containing the characters that need escaping.
fn text_strategy() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        prop_oneof![
            Just("&".to_string()),
            Just("<".to_string()),
            Just(">".to_string()),
            Just("\"".to_string()),
            Just("'".to_string()),
            Just("grüße 漢字".to_string()),
            "[ -~]{1,6}".prop_map(|s| s),
        ],
        1..4,
    )
    .prop_map(|v| v.join(""))
}

fn comment_strategy() -> impl Strategy<Value = String> {
    // Comments may not contain `--` or end with `-`.
    "[a-zA-Z0-9 ]{0,12}".prop_map(|s| s.trim_end_matches('-').to_string())
}

fn node_strategy() -> impl Strategy<Value = GenNode> {
    let leaf = prop_oneof![
        text_strategy().prop_map(GenNode::Text),
        comment_strategy().prop_map(GenNode::Comment),
        (
            name_strategy(),
            proptest::collection::vec((name_strategy(), text_strategy()), 0..3)
        )
            .prop_map(|(name, attrs)| GenNode::Element {
                name,
                attrs,
                children: vec![]
            }),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        (
            name_strategy(),
            proptest::collection::vec((name_strategy(), text_strategy()), 0..3),
            proptest::collection::vec(inner, 0..4),
        )
            .prop_map(|(name, attrs, children)| GenNode::Element {
                name,
                attrs,
                children,
            })
    })
}

fn build(node: &GenNode, b: &mut DocBuilder) {
    match node {
        GenNode::Element {
            name,
            attrs,
            children,
        } => {
            b.start(name.as_str());
            let mut seen = std::collections::HashSet::new();
            for (an, av) in attrs {
                if seen.insert(an.clone()) {
                    b.attr(an.as_str(), av.as_str());
                }
            }
            for c in children {
                build(c, b);
            }
            b.end();
        }
        GenNode::Text(t) => {
            b.text(t);
        }
        GenNode::Comment(c) => {
            b.comment(c.clone());
        }
    }
}

fn gen_doc(root_name: &str, children: &[GenNode]) -> Arc<Document> {
    let mut b = DocBuilder::new();
    b.start(root_name);
    for c in children {
        build(c, &mut b);
    }
    b.end();
    b.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn serialize_parse_roundtrip(
        root in name_strategy(),
        children in proptest::collection::vec(node_strategy(), 0..5),
    ) {
        let doc = gen_doc(&root, &children);
        let xml = serialize(&doc);
        let back = parse(&xml).expect("serialized output must re-parse");
        prop_assert!(doc.root().deep_equal(&back.root()), "roundtrip mismatch for {xml}");
    }

    #[test]
    fn pretty_print_preserves_element_structure(
        root in name_strategy(),
        children in proptest::collection::vec(node_strategy(), 0..5),
    ) {
        let doc = gen_doc(&root, &children);
        let pretty = serialize_pretty(&doc);
        let back = parse(&pretty).expect("pretty output must re-parse");
        // Pretty printing may change whitespace-only text but never the
        // element skeleton or attributes.
        let skel = |d: &Arc<Document>| {
            d.root()
                .descendants()
                .iter()
                .filter(|n| n.is_element())
                .map(|n| {
                    let mut attrs: Vec<String> = n
                        .attributes()
                        .iter()
                        .filter_map(|a| a.name().map(|q| {
                            format!("{}={}", q.local, a.string_value())
                        }))
                        .collect();
                    attrs.sort();
                    format!("{}[{}]", n.name().unwrap().local, attrs.join(","))
                })
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(skel(&doc), skel(&back));
    }

    #[test]
    fn string_value_survives_roundtrip_without_mixed_ws(
        root in name_strategy(),
        texts in proptest::collection::vec(text_strategy(), 1..4),
    ) {
        // Pure text content (no structure): the string value is preserved
        // exactly by serialize∘parse.
        let mut b = DocBuilder::new();
        b.start(root.as_str());
        for t in &texts {
            b.text(t);
        }
        b.end();
        let doc = b.finish();
        let back = parse(&serialize(&doc)).unwrap();
        prop_assert_eq!(doc.root().string_value(), back.root().string_value());
    }

    #[test]
    fn parser_never_panics_on_arbitrary_input(input in ".{0,120}") {
        let _ = parse(&input); // Result either way; must not panic.
    }

    #[test]
    fn parser_never_panics_on_tag_soup(
        parts in proptest::collection::vec(
            prop_oneof![
                Just("<a>".to_string()),
                Just("</a>".to_string()),
                Just("<a/>".to_string()),
                Just("<a b='c'>".to_string()),
                Just("&amp;".to_string()),
                Just("&#65;".to_string()),
                Just("<![CDATA[x]]>".to_string()),
                Just("<!--c-->".to_string()),
                Just("<?pi d?>".to_string()),
                "[a-z<>&;\"']{0,6}".prop_map(|s| s),
            ],
            0..12,
        )
    ) {
        let soup = parts.join("");
        let _ = parse(&soup);
        let _ = demaq_xml::parse_fragment(&soup);
    }
}
