//! Incrementalizable aggregate shapes (ISSUE 9).
//!
//! [`recognize_aggregate`] spots the rule-body subexpressions the engine
//! can maintain reactively instead of rescanning: `count` / `sum` /
//! `min` / `max` / `exists` applied to a `qs:queue("…")` or `qs:slice()`
//! source, optionally refined by a chain of *predicate-free* axis steps
//! (`count(qs:slice())`, `sum(qs:queue("orders")//total)`, …). Those
//! shapes are per-message-independent — their value is a pure function
//! of the queue/slice membership — so a running [`AggAcc`] folded over
//! member documents in arrival order computes exactly what the reference
//! evaluator computes by rescanning, and a new arrival is a **delta**
//! (absorb one more document) instead of an O(N) rescan.
//!
//! Predicated steps, `avg`, positional tricks, and every other argument
//! shape are left alone: the lowering keeps the original
//! `Plan::FunctionCall` as the fallback inside [`Plan::AggregateRead`],
//! so unsupported or cold reads take the reference path unchanged.
//!
//! Parity contract: [`AggAcc`] replicates the `fn:` builtin folds from
//! [`crate::functions`] *literally* — same comparison function, same
//! error strings — and any absorb/finish error makes the registry decline
//! the read so the fallback reproduces the identical error. Fold order is
//! member order rather than cross-document node order; every supported
//! aggregate is order-independent over the member multiset (`sum` over
//! floats is associative only up to rounding, which the differential
//! suite pins with integer-valued corpora).

use crate::ast::{Axis, Expr};
use crate::error::{Error, Result};
use crate::eval::axis_candidates;
use crate::plan::{lower_test, ptest_matches, PTest};
use crate::value::{Atomic, Sequence};
use demaq_xml::NodeRef;
use std::cmp::Ordering;

/// The aggregate functions the incremental pass maintains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggOp {
    Count,
    Sum,
    Min,
    Max,
    Exists,
}

impl AggOp {
    pub fn name(&self) -> &'static str {
        match self {
            AggOp::Count => "count",
            AggOp::Sum => "sum",
            AggOp::Min => "min",
            AggOp::Max => "max",
            AggOp::Exists => "exists",
        }
    }

    fn from_name(name: &str) -> Option<AggOp> {
        Some(match name {
            "count" => AggOp::Count,
            "sum" => AggOp::Sum,
            "min" => AggOp::Min,
            "max" => AggOp::Max,
            "exists" => AggOp::Exists,
            _ => None?,
        })
    }
}

/// What the aggregate reads: a named queue or the current slice.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AggSource {
    /// `qs:queue("name")` with a literal queue name.
    Queue(String),
    /// `qs:slice()` — resolved against the firing rule's slice context.
    Slice,
}

/// A recognized incrementalizable aggregate: `op(source/steps…)` where
/// every step is a predicate-free axis step.
#[derive(Debug, Clone, PartialEq)]
pub struct AggregateSpec {
    pub op: AggOp,
    pub source: AggSource,
    /// Axis steps applied to each member document root, in order. A
    /// `//`-descent is expanded to an explicit `descendant-or-self::
    /// node()` step, exactly as `Plan::RelativePath` evaluates it.
    pub steps: Vec<(Axis, PTest)>,
}

impl AggregateSpec {
    /// Canonical registry key for this aggregate shape. `PTest` carries
    /// interned `Sym`s, so the key is process-local — which is all the
    /// registry needs (cells are process-local and never persisted).
    pub fn cache_key(&self) -> String {
        let src = match &self.source {
            AggSource::Queue(q) => format!("queue:{q}"),
            AggSource::Slice => "slice".to_string(),
        };
        format!("{}|{}|{:?}", self.op.name(), src, self.steps)
    }

    /// Nodes selected by the step chain within one member document.
    pub fn member_nodes(&self, root: &NodeRef) -> Vec<NodeRef> {
        let mut current = vec![root.clone()];
        for (axis, test) in &self.steps {
            let mut next: Vec<NodeRef> = Vec::new();
            for node in &current {
                next.extend(
                    axis_candidates(*axis, node)
                        .into_iter()
                        .filter(|n| ptest_matches(*axis, n, test)),
                );
            }
            // Per-step document-order dedup, as `eval_steps` does. All
            // nodes share one document here, so the order is total.
            next.sort();
            next.dedup_by(|a, b| a.is_same_node(b));
            current = next;
        }
        current
    }
}

/// Recognize `count|sum|min|max|exists ( <source-path> )` where the
/// single argument is `qs:queue("lit")`, `qs:slice()`, or either refined
/// by predicate-free axis steps. Everything else returns `None`.
pub fn recognize_aggregate(expr: &Expr) -> Option<AggregateSpec> {
    let Expr::FunctionCall { name, args } = expr else {
        return None;
    };
    if name.prefix.is_some() || args.len() != 1 {
        return None;
    }
    let op = AggOp::from_name(&name.local)?;
    let (source, steps) = recognize_source(&args[0])?;
    Some(AggregateSpec { op, source, steps })
}

/// Peel a source path down to its `qs:` root, collecting steps outside-in.
fn recognize_source(expr: &Expr) -> Option<(AggSource, Vec<(Axis, PTest)>)> {
    match expr {
        Expr::FunctionCall { name, args } if name.prefix.as_deref() == Some("qs") => {
            match (name.local.as_str(), args.as_slice()) {
                ("queue", [Expr::StringLit(q)]) => Some((AggSource::Queue(q.clone()), Vec::new())),
                ("slice", []) => Some((AggSource::Slice, Vec::new())),
                _ => None,
            }
        }
        // A parenthesized source without predicates changes nothing.
        Expr::Filter { base, predicates } if predicates.is_empty() => recognize_source(base),
        // The parser's primary path form: `qs:slice()//n` parses to
        // `Path { root: false, steps: [<source>, Step…] }`, with `//`
        // already expanded to an explicit descendant-or-self step.
        Expr::Path { root: false, steps } => {
            let (first, rest) = steps.split_first()?;
            let (source, mut collected) = recognize_source(first)?;
            for s in rest {
                let Expr::Step {
                    axis,
                    test,
                    predicates,
                } = s
                else {
                    return None;
                };
                if !predicates.is_empty() {
                    return None;
                }
                collected.push((*axis, lower_test(test)));
            }
            Some((source, collected))
        }
        Expr::RelativePath {
            base,
            step,
            descend,
        } => {
            let Expr::Step {
                axis,
                test,
                predicates,
            } = step.as_ref()
            else {
                return None;
            };
            if !predicates.is_empty() {
                return None;
            }
            let (source, mut steps) = recognize_source(base)?;
            if *descend {
                steps.push((Axis::DescendantOrSelf, PTest::AnyKind));
            }
            steps.push((*axis, lower_test(test)));
            Some((source, steps))
        }
        _ => None,
    }
}

/// A running aggregate fold over member documents. Replicates the
/// corresponding `fn:` builtin exactly: same accumulator state, same
/// comparison, same error strings — so resuming the fold on new members
/// (the delta path) is indistinguishable from rescanning everything.
#[derive(Debug, Clone)]
pub enum AggAcc {
    Count(i64),
    Exists(bool),
    /// Running best (`fn:min`'s / `fn:max`'s loop variable).
    Min(Option<Atomic>),
    Max(Option<Atomic>),
    /// Node atomization yields `xs:untypedAtomic`, never `xs:integer`,
    /// so a non-empty `fn:sum` over path results always takes
    /// `numeric_fold`'s double branch; the empty multiset yields
    /// `xs:integer` 0 (the builtin's 1-arg zero).
    Sum { seen: bool, dsum: f64 },
}

impl AggAcc {
    pub fn new(op: AggOp) -> AggAcc {
        match op {
            AggOp::Count => AggAcc::Count(0),
            AggOp::Exists => AggAcc::Exists(false),
            AggOp::Min => AggAcc::Min(None),
            AggOp::Max => AggAcc::Max(None),
            AggOp::Sum => AggAcc::Sum {
                seen: false,
                dsum: 0.0,
            },
        }
    }

    /// Fold one member document into the accumulator. An `Err` means the
    /// reference evaluation errors on this multiset too (non-numeric
    /// sum, incomparable min/max) — the caller must discard the cell and
    /// fall back so the reference path raises the identical error.
    pub fn absorb_member(&mut self, spec: &AggregateSpec, root: &NodeRef) -> Result<()> {
        let nodes = spec.member_nodes(root);
        match self {
            AggAcc::Count(c) => *c += nodes.len() as i64,
            AggAcc::Exists(b) => *b = *b || !nodes.is_empty(),
            AggAcc::Min(_) | AggAcc::Max(_) => {
                let (name, want) = if matches!(self, AggAcc::Min(_)) {
                    ("min", Ordering::Less)
                } else {
                    ("max", Ordering::Greater)
                };
                let best = match self {
                    AggAcc::Min(b) | AggAcc::Max(b) => b,
                    _ => unreachable!(),
                };
                for n in &nodes {
                    let a = Atomic::Untyped(n.string_value());
                    match best {
                        None => *best = Some(a),
                        Some(b) => {
                            let ord = a.value_cmp(b).ok_or_else(|| {
                                Error::type_error(format!("fn:{name} over incomparable values"))
                            })?;
                            if ord == want {
                                *best = Some(a);
                            }
                        }
                    }
                }
            }
            AggAcc::Sum { seen, dsum } => {
                for n in &nodes {
                    let d = Atomic::Untyped(n.string_value()).to_double();
                    if d.is_nan() {
                        return Err(Error::type_error("fn:sum over non-numeric values"));
                    }
                    *seen = true;
                    *dsum += d;
                }
            }
        }
        Ok(())
    }

    /// The aggregate's value for the members absorbed so far.
    pub fn result(&self) -> Sequence {
        match self {
            AggAcc::Count(c) => Sequence::int(*c),
            AggAcc::Exists(b) => Sequence::bool(*b),
            AggAcc::Min(best) | AggAcc::Max(best) => match best {
                Some(a) => Sequence::one(a.clone()),
                None => Sequence::empty(),
            },
            AggAcc::Sum { seen, dsum } => {
                if *seen {
                    Sequence::one(Atomic::Double(*dsum))
                } else {
                    Sequence::int(0)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_expr;
    use crate::value::Item;

    fn recognize(q: &str) -> Option<AggregateSpec> {
        recognize_aggregate(&parse_expr(q).unwrap())
    }

    #[test]
    fn recognizes_supported_shapes() {
        let s = recognize("count(qs:slice())").unwrap();
        assert_eq!(s.op, AggOp::Count);
        assert_eq!(s.source, AggSource::Slice);
        assert!(s.steps.is_empty());

        let s = recognize("sum(qs:queue(\"orders\")//total)").unwrap();
        assert_eq!(s.op, AggOp::Sum);
        assert_eq!(s.source, AggSource::Queue("orders".into()));
        // `//total` expands to descendant-or-self::node()/child::total.
        assert_eq!(s.steps.len(), 2);
        assert_eq!(s.steps[0].0, Axis::DescendantOrSelf);

        for q in [
            "exists(qs:slice()/ack)",
            "min(qs:queue(\"q\")/m/price)",
            "max(qs:slice()//n)",
        ] {
            assert!(recognize(q).is_some(), "{q} should be incrementalizable");
        }
    }

    #[test]
    fn rejects_unsupported_shapes() {
        for q in [
            "avg(qs:slice())",                      // op not maintainable as a pure fold
            "count(qs:queue())",                    // implicit target queue, no literal
            "count(qs:queue($v))",                  // non-literal queue name
            "count(qs:slice()[. > 1])",             // predicate
            "count(qs:slice()/a[2])",               // positional predicate
            "sum(qs:slice()//n, 0)",                // 2-arg sum
            "count(//a)",                           // message-relative path
            "count(qs:slicekey())",                 // not a membership source
            "string(qs:slice())",                   // not an aggregate
        ] {
            assert!(recognize(q).is_none(), "{q} must not be recognized");
        }
    }

    #[test]
    fn cache_key_distinguishes_shapes() {
        let keys: Vec<String> = [
            "count(qs:slice())",
            "count(qs:queue(\"a\"))",
            "count(qs:queue(\"b\"))",
            "sum(qs:queue(\"a\"))",
            "count(qs:queue(\"a\")/x)",
        ]
        .iter()
        .map(|q| recognize(q).unwrap().cache_key())
        .collect();
        for i in 0..keys.len() {
            for j in i + 1..keys.len() {
                assert_ne!(keys[i], keys[j]);
            }
        }
    }

    fn doc(xml: &str) -> NodeRef {
        demaq_xml::parse(xml).unwrap().root()
    }

    /// The fold must agree with the builtin over the same member docs —
    /// including when resumed incrementally one member at a time.
    #[test]
    fn acc_matches_reference_builtins() {
        let members = [
            doc("<m><n>5</n></m>"),
            doc("<m><n>2</n><n>9</n></m>"),
            doc("<m/>"),
            doc("<m><n>7</n></m>"),
        ];
        for (q, op) in [
            ("count", AggOp::Count),
            ("sum", AggOp::Sum),
            ("min", AggOp::Min),
            ("max", AggOp::Max),
            ("exists", AggOp::Exists),
        ] {
            let spec = recognize(&format!("{q}(qs:slice()//n)")).unwrap();
            assert_eq!(spec.op, op);
            let mut acc = AggAcc::new(op);
            for m in &members {
                acc.absorb_member(&spec, m).unwrap();
            }
            // Reference: the builtin applied to the atomized node multiset.
            let all: Sequence = members
                .iter()
                .flat_map(|m| spec.member_nodes(m))
                .map(Item::Node)
                .collect();
            let reference =
                crate::functions::call_builtin(&test_dctx(), q, vec![all], None).unwrap();
            assert_eq!(
                format!("{:?}", acc.result()),
                format!("{:?}", reference),
                "{q} diverged from fn:{q}"
            );
        }
    }

    #[test]
    fn acc_errors_match_reference_error_strings() {
        let bad = doc("<m><n>abc</n></m>");
        let good = doc("<m><n>1</n></m>");

        let spec = recognize("sum(qs:slice()//n)").unwrap();
        let mut acc = AggAcc::new(AggOp::Sum);
        acc.absorb_member(&spec, &good).unwrap();
        let err = acc.absorb_member(&spec, &bad).unwrap_err();
        assert!(err.to_string().contains("fn:sum over non-numeric values"));

        // min over string-ish untyped values is fine (string comparison)…
        let spec = recognize("min(qs:slice()//n)").unwrap();
        let mut acc = AggAcc::new(AggOp::Min);
        acc.absorb_member(&spec, &bad).unwrap();
        acc.absorb_member(&spec, &good).unwrap();
        assert_eq!(
            format!("{:?}", acc.result()),
            format!("{:?}", Sequence::one(Atomic::Untyped("1".into())))
        );
    }

    #[test]
    fn empty_multiset_results_match_builtins() {
        let dbg = |s: Sequence| format!("{s:?}");
        assert_eq!(dbg(AggAcc::new(AggOp::Count).result()), dbg(Sequence::int(0)));
        assert_eq!(dbg(AggAcc::new(AggOp::Sum).result()), dbg(Sequence::int(0)));
        assert_eq!(dbg(AggAcc::new(AggOp::Exists).result()), dbg(Sequence::bool(false)));
        assert!(AggAcc::new(AggOp::Min).result().is_empty());
        assert!(AggAcc::new(AggOp::Max).result().is_empty());
    }

    fn test_dctx() -> crate::context::DynamicContext {
        crate::context::DynamicContext::new(std::sync::Arc::new(crate::context::NoHost))
    }
}
