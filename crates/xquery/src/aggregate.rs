//! Incrementalizable aggregate shapes (ISSUE 9, extended by ISSUE 10).
//!
//! [`recognize_aggregate`] spots the rule-body subexpressions the engine
//! can maintain reactively instead of rescanning: `count` / `sum` /
//! `min` / `max` / `exists` / `avg` applied to a `qs:queue("…")` or
//! `qs:slice()` source, optionally refined by a chain of axis steps
//! (`count(qs:slice())`, `sum(qs:queue("orders")//total)`, …). Steps may
//! carry **guard predicates** — member-local boolean filters like
//! `[status = "open"]` — as long as each guard is deterministic,
//! position-free, and touches nothing outside the member document
//! ([`guard predicates`](is_guard_pred)). Those shapes are
//! per-message-independent — their value is a pure function of the
//! queue/slice membership — so a running [`AggAcc`] folded over member
//! documents in arrival order computes exactly what the reference
//! evaluator computes by rescanning, and a new arrival is a **delta**
//! (absorb one more document) instead of an O(N) rescan. `avg` decomposes
//! into a sum/count cell pair ([`AggAcc::Avg`]), so it folds just like
//! the others.
//!
//! Positional predicates, variables, `qs:` context reads, and every
//! other argument shape are left alone: the lowering keeps the original
//! `Plan::FunctionCall` as the fallback inside [`Plan::AggregateRead`],
//! so unsupported or cold reads take the reference path unchanged.
//!
//! Parity contract: [`AggAcc`] replicates the `fn:` builtin folds from
//! [`crate::functions`] *literally* — same comparison function, same
//! error strings — and any absorb/finish error makes the registry decline
//! the read so the fallback reproduces the identical error. Fold order is
//! member order rather than cross-document node order; every supported
//! aggregate is order-independent over the member multiset (`sum` over
//! floats is associative only up to rounding, which the differential
//! suite pins with integer-valued corpora).
//!
//! Accumulators can round-trip through an opaque byte encoding
//! ([`AggAcc::encode`]/[`AggAcc::decode`]) keyed by the shape's
//! [`AggregateSpec::stable_sig`]; the store persists those pairs as
//! retention *bases* when the liveness analysis proves a slice is read
//! only through these shapes (ISSUE 10), so purged members keep
//! contributing to every future read.

use crate::ast::{Axis, Expr};
use crate::context::{DynamicContext, NoHost, StaticContext};
use crate::error::{Error, Result};
use crate::eval::{axis_candidates, Evaluator, Focus};
use crate::plan::{lower_test, ptest_matches, PTest};
use crate::value::{Atomic, Item, Sequence};
use demaq_xml::sym;
use demaq_xml::NodeRef;
use std::cmp::Ordering;
use std::sync::Arc;

/// The aggregate functions the incremental pass maintains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggOp {
    Count,
    Sum,
    Min,
    Max,
    Exists,
    Avg,
}

impl AggOp {
    pub fn name(&self) -> &'static str {
        match self {
            AggOp::Count => "count",
            AggOp::Sum => "sum",
            AggOp::Min => "min",
            AggOp::Max => "max",
            AggOp::Exists => "exists",
            AggOp::Avg => "avg",
        }
    }

    fn from_name(name: &str) -> Option<AggOp> {
        Some(match name {
            "count" => AggOp::Count,
            "sum" => AggOp::Sum,
            "min" => AggOp::Min,
            "max" => AggOp::Max,
            "exists" => AggOp::Exists,
            "avg" => AggOp::Avg,
            _ => None?,
        })
    }
}

/// What the aggregate reads: a named queue or the current slice.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AggSource {
    /// `qs:queue("name")` with a literal queue name.
    Queue(String),
    /// `qs:slice()` — resolved against the firing rule's slice context.
    Slice,
}

/// One axis step of a recognized aggregate path, with its (possibly
/// empty) guard predicates. A source-level filter (`qs:slice()[g]`)
/// normalizes to a `self::node()[g]` step, which evaluates identically.
#[derive(Debug, Clone, PartialEq)]
pub struct AggStep {
    pub axis: Axis,
    pub test: PTest,
    /// Member-local boolean guards, each accepted by [`is_guard_pred`].
    pub preds: Vec<Expr>,
}

/// A recognized incrementalizable aggregate: `op(source/steps…)` where
/// every step is an axis step whose predicates (if any) are member-local
/// boolean guards.
#[derive(Debug, Clone, PartialEq)]
pub struct AggregateSpec {
    pub op: AggOp,
    pub source: AggSource,
    /// Axis steps applied to each member document root, in order. A
    /// `//`-descent is expanded to an explicit `descendant-or-self::
    /// node()` step, exactly as `Plan::RelativePath` evaluates it.
    pub steps: Vec<AggStep>,
}

impl AggregateSpec {
    /// Canonical registry key for this aggregate shape. `PTest` carries
    /// interned `Sym`s, so the key is process-local — fine for the
    /// in-memory cell registry, but **never** for persisted state; the
    /// store keys retention bases by [`Self::stable_sig`] instead.
    pub fn cache_key(&self) -> String {
        let src = match &self.source {
            AggSource::Queue(q) => format!("queue:{q}"),
            AggSource::Slice => "slice".to_string(),
        };
        format!("{}|{}|{:?}", self.op.name(), src, self.steps)
    }

    /// Process-independent signature: interned symbols are resolved back
    /// to their names, so the same source text produces the same string
    /// in every process. This is the key the store persists retention
    /// bases under (checkpoint survives restarts; `Sym` values do not).
    pub fn stable_sig(&self) -> String {
        let src = match &self.source {
            AggSource::Queue(q) => format!("queue:{q}"),
            AggSource::Slice => "slice".to_string(),
        };
        let mut out = format!("{}|{}", self.op.name(), src);
        for s in &self.steps {
            out.push_str(&format!("|{:?}/{}", s.axis, ptest_sig(&s.test)));
            for p in &s.preds {
                // The AST `Debug` form carries only names and literals
                // (no interned ids), so it is process-stable.
                out.push_str(&format!("[{p:?}]"));
            }
        }
        out
    }

    /// Whether any step carries guard predicates (such specs never take
    /// the membership-only fast path).
    pub fn has_guards(&self) -> bool {
        self.steps.iter().any(|s| !s.preds.is_empty())
    }

    /// Nodes selected by the step chain within one member document.
    /// Errors when a guard predicate errors — the reference rescan
    /// errors identically on this member.
    pub fn member_nodes(&self, root: &NodeRef) -> Result<Vec<NodeRef>> {
        let mut guard_eval = None;
        let mut current = vec![root.clone()];
        for step in &self.steps {
            let mut next: Vec<NodeRef> = Vec::new();
            for node in &current {
                // Per-context-node batch, exactly as `eval_steps` scopes
                // predicate positions.
                let mut batch: Vec<NodeRef> = axis_candidates(step.axis, node)
                    .into_iter()
                    .filter(|n| ptest_matches(step.axis, n, &step.test))
                    .collect();
                for pred in &step.preds {
                    let ev = guard_eval.get_or_insert_with(GuardEval::new);
                    let size = batch.len();
                    let mut kept = Vec::with_capacity(batch.len());
                    for (i, n) in batch.iter().enumerate() {
                        if ev.keep(pred, n, i + 1, size)? {
                            kept.push(n.clone());
                        }
                    }
                    batch = kept;
                }
                next.extend(batch);
            }
            // Per-step document-order dedup, as `eval_steps` does. All
            // nodes share one document here, so the order is total.
            next.sort();
            next.dedup_by(|a, b| a.is_same_node(b));
            current = next;
        }
        Ok(current)
    }
}

/// Process-stable rendering of a `PTest` (interned syms resolved).
fn ptest_sig(t: &PTest) -> String {
    let named = |n: &Option<(sym::Sym, Option<String>)>| match n {
        Some((s, ns)) => format!("{}:{ns:?}", sym::resolve(*s)),
        None => "*".to_string(),
    };
    match t {
        PTest::Name { sym: s, ns } => format!("{}:{ns:?}", sym::resolve(*s)),
        PTest::AnyName => "*".to_string(),
        PTest::AnyKind => "node()".to_string(),
        PTest::Text => "text()".to_string(),
        PTest::Comment => "comment()".to_string(),
        PTest::Element(n) => format!("element({})", named(n)),
        PTest::Attribute(n) => format!("attribute({})", named(n)),
        PTest::Pi(n) => format!("pi({n:?})"),
        PTest::Document => "document()".to_string(),
    }
}

/// Guard-predicate evaluator: a host-free dynamic context (guards are
/// statically proven to never touch the host) shared across one fold.
struct GuardEval {
    sctx: StaticContext,
    dctx: DynamicContext,
}

impl GuardEval {
    fn new() -> GuardEval {
        GuardEval {
            sctx: StaticContext::default(),
            dctx: DynamicContext::new(Arc::new(NoHost)),
        }
    }

    /// The reference `apply_predicates` keep-test for one node: numeric
    /// value = positional test (statically excluded for guards, kept for
    /// defense in depth), anything else by effective boolean value.
    fn keep(&self, pred: &Expr, node: &NodeRef, pos: usize, size: usize) -> Result<bool> {
        let mut ev = Evaluator::new(&self.sctx, &self.dctx);
        let f = Focus {
            item: Item::Node(node.clone()),
            pos,
            size,
        };
        let v = ev.eval(pred, Some(&f))?;
        match v.0.as_slice() {
            [Item::Atomic(a)] if a.is_numeric() => Ok(a.to_double() == pos as f64),
            _ => v.effective_boolean(),
        }
    }
}

/// Builtins a guard predicate may call: deterministic, context-free
/// beyond their arguments.
const GUARD_FNS: &[&str] = &[
    "not", "exists", "empty", "boolean", "true", "false", "count", "sum", "min", "max", "avg",
    "number", "string", "string-length", "contains", "starts-with", "ends-with", "concat",
    "normalize-space", "abs", "floor", "ceiling", "round", "upper-case", "lower-case",
    "substring", "string-join",
];

/// Builtins whose value is never a single number — safe as a predicate's
/// *top-level* expression (a numeric predicate is a positional test).
const BOOLISH_FNS: &[&str] = &[
    "not", "exists", "empty", "boolean", "true", "false", "contains", "starts-with", "ends-with",
];

/// Is `e` evaluable against one member document alone: no variables, no
/// `qs:` context reads, no `fn:position`/`fn:last`, no clock, no
/// constructors or updates — and every nested predicate is itself a
/// guard (so nested positional tricks are caught too)?
fn is_member_local(e: &Expr) -> bool {
    match e {
        Expr::StringLit(_) | Expr::IntLit(_) | Expr::DoubleLit(_) | Expr::ContextItem => true,
        Expr::Sequence(es) => es.iter().all(is_member_local),
        Expr::FunctionCall { name, args } => match name.prefix.as_deref() {
            None => GUARD_FNS.contains(&name.local.as_str()) && args.iter().all(is_member_local),
            Some("xs") => args.iter().all(is_member_local),
            _ => false,
        },
        Expr::Path { root: _, steps } => steps.iter().all(is_member_local),
        Expr::Step {
            axis: _,
            test: _,
            predicates,
        } => predicates.iter().all(is_guard_pred),
        Expr::Filter { base, predicates } => {
            is_member_local(base) && predicates.iter().all(is_guard_pred)
        }
        Expr::RelativePath {
            base,
            step,
            descend: _,
        } => is_member_local(base) && is_member_local(step),
        Expr::Or(l, r) | Expr::And(l, r) | Expr::Range(l, r) => {
            is_member_local(l) && is_member_local(r)
        }
        Expr::Comparison { left, right, .. }
        | Expr::Arith { left, right, .. }
        | Expr::Set { left, right, .. } => is_member_local(left) && is_member_local(right),
        Expr::Neg(x) => is_member_local(x),
        Expr::If { cond, then, els } => {
            is_member_local(cond)
                && is_member_local(then)
                && els.as_deref().is_none_or(is_member_local)
        }
        Expr::Cast { expr, .. } | Expr::InstanceOf { expr, .. } => is_member_local(expr),
        // Variables, FLWOR/quantifiers (bindings), constructors, updates,
        // and anything else: not provably member-local.
        _ => false,
    }
}

/// A *guard* predicate: member-local (see [`is_member_local`]) and of a
/// top-level form that can never evaluate to a single number — numeric
/// predicates are positional tests, whose value depends on membership
/// order and therefore cannot be folded member-at-a-time.
fn is_guard_pred(e: &Expr) -> bool {
    let boolish = match e {
        Expr::Comparison { .. } | Expr::Or(..) | Expr::And(..) | Expr::StringLit(_) => true,
        Expr::Path { .. } | Expr::RelativePath { .. } | Expr::Step { .. } | Expr::Filter { .. } => {
            true
        }
        Expr::FunctionCall { name, .. } => {
            name.prefix.is_none() && BOOLISH_FNS.contains(&name.local.as_str())
        }
        _ => false,
    };
    boolish && is_member_local(e)
}

/// Recognize `count|sum|min|max|exists|avg ( <source-path> )` where the
/// single argument is `qs:queue("lit")`, `qs:slice()`, or either refined
/// by axis steps with member-local guard predicates. Everything else
/// returns `None`.
pub fn recognize_aggregate(expr: &Expr) -> Option<AggregateSpec> {
    let Expr::FunctionCall { name, args } = expr else {
        return None;
    };
    if name.prefix.is_some() || args.len() != 1 {
        return None;
    }
    let op = AggOp::from_name(&name.local)?;
    let (source, steps) = recognize_source(&args[0])?;
    Some(AggregateSpec { op, source, steps })
}

/// Accept a step's predicates when every one is a guard.
fn guard_preds(predicates: &[Expr]) -> Option<Vec<Expr>> {
    predicates
        .iter()
        .all(is_guard_pred)
        .then(|| predicates.to_vec())
}

/// Peel a source path down to its `qs:` root, collecting steps outside-in.
fn recognize_source(expr: &Expr) -> Option<(AggSource, Vec<AggStep>)> {
    match expr {
        Expr::FunctionCall { name, args } if name.prefix.as_deref() == Some("qs") => {
            match (name.local.as_str(), args.as_slice()) {
                ("queue", [Expr::StringLit(q)]) => Some((AggSource::Queue(q.clone()), Vec::new())),
                ("slice", []) => Some((AggSource::Slice, Vec::new())),
                _ => None,
            }
        }
        // A filtered source: guards normalize to a self::node() step
        // (identical semantics for position-free predicates); an
        // unguarded parenthesized source changes nothing.
        Expr::Filter { base, predicates } => {
            let (source, mut collected) = recognize_source(base)?;
            if !predicates.is_empty() {
                let preds = guard_preds(predicates)?;
                collected.push(AggStep {
                    axis: Axis::SelfAxis,
                    test: PTest::AnyKind,
                    preds,
                });
            }
            Some((source, collected))
        }
        // The parser's primary path form: `qs:slice()//n` parses to
        // `Path { root: false, steps: [<source>, Step…] }`, with `//`
        // already expanded to an explicit descendant-or-self step.
        Expr::Path { root: false, steps } => {
            let (first, rest) = steps.split_first()?;
            let (source, mut collected) = recognize_source(first)?;
            for s in rest {
                let Expr::Step {
                    axis,
                    test,
                    predicates,
                } = s
                else {
                    return None;
                };
                collected.push(AggStep {
                    axis: *axis,
                    test: lower_test(test),
                    preds: guard_preds(predicates)?,
                });
            }
            Some((source, collected))
        }
        Expr::RelativePath {
            base,
            step,
            descend,
        } => {
            let Expr::Step {
                axis,
                test,
                predicates,
            } = step.as_ref()
            else {
                return None;
            };
            let preds = guard_preds(predicates)?;
            let (source, mut steps) = recognize_source(base)?;
            if *descend {
                steps.push(AggStep {
                    axis: Axis::DescendantOrSelf,
                    test: PTest::AnyKind,
                    preds: Vec::new(),
                });
            }
            steps.push(AggStep {
                axis: *axis,
                test: lower_test(test),
                preds,
            });
            Some((source, steps))
        }
        _ => None,
    }
}

/// A running aggregate fold over member documents. Replicates the
/// corresponding `fn:` builtin exactly: same accumulator state, same
/// comparison, same error strings — so resuming the fold on new members
/// (the delta path) is indistinguishable from rescanning everything.
#[derive(Debug, Clone)]
pub enum AggAcc {
    Count(i64),
    Exists(bool),
    /// Running best (`fn:min`'s / `fn:max`'s loop variable).
    Min(Option<Atomic>),
    Max(Option<Atomic>),
    /// Node atomization yields `xs:untypedAtomic`, never `xs:integer`,
    /// so a non-empty `fn:sum` over path results always takes
    /// `numeric_fold`'s double branch; the empty multiset yields
    /// `xs:integer` 0 (the builtin's 1-arg zero).
    Sum { seen: bool, dsum: f64 },
    /// `fn:avg` decomposed into its sum/count pair (ROADMAP 5a): the
    /// builtin computes `numeric_fold(seq, "sum") / count(seq)`, both of
    /// which fold member-at-a-time.
    Avg { count: i64, dsum: f64 },
}

impl AggAcc {
    pub fn new(op: AggOp) -> AggAcc {
        match op {
            AggOp::Count => AggAcc::Count(0),
            AggOp::Exists => AggAcc::Exists(false),
            AggOp::Min => AggAcc::Min(None),
            AggOp::Max => AggAcc::Max(None),
            AggOp::Sum => AggAcc::Sum {
                seen: false,
                dsum: 0.0,
            },
            AggOp::Avg => AggAcc::Avg {
                count: 0,
                dsum: 0.0,
            },
        }
    }

    /// Fold one member document into the accumulator. An `Err` means the
    /// reference evaluation errors on this multiset too (non-numeric
    /// sum/avg, incomparable min/max, erroring guard) — the caller must
    /// discard the cell and fall back so the reference path raises the
    /// identical error.
    pub fn absorb_member(&mut self, spec: &AggregateSpec, root: &NodeRef) -> Result<()> {
        let nodes = spec.member_nodes(root)?;
        match self {
            AggAcc::Count(c) => *c += nodes.len() as i64,
            AggAcc::Exists(b) => *b = *b || !nodes.is_empty(),
            AggAcc::Min(_) | AggAcc::Max(_) => {
                let (name, want) = if matches!(self, AggAcc::Min(_)) {
                    ("min", Ordering::Less)
                } else {
                    ("max", Ordering::Greater)
                };
                let best = match self {
                    AggAcc::Min(b) | AggAcc::Max(b) => b,
                    _ => unreachable!(),
                };
                for n in &nodes {
                    let a = Atomic::Untyped(n.string_value());
                    match best {
                        None => *best = Some(a),
                        Some(b) => {
                            let ord = a.value_cmp(b).ok_or_else(|| {
                                Error::type_error(format!("fn:{name} over incomparable values"))
                            })?;
                            if ord == want {
                                *best = Some(a);
                            }
                        }
                    }
                }
            }
            AggAcc::Sum { seen, dsum } => {
                for n in &nodes {
                    let d = Atomic::Untyped(n.string_value()).to_double();
                    if d.is_nan() {
                        return Err(Error::type_error("fn:sum over non-numeric values"));
                    }
                    *seen = true;
                    *dsum += d;
                }
            }
            AggAcc::Avg { count, dsum } => {
                for n in &nodes {
                    let d = Atomic::Untyped(n.string_value()).to_double();
                    if d.is_nan() {
                        // `fn:avg` sums through `numeric_fold(_, "sum")`,
                        // so its error string names fn:sum.
                        return Err(Error::type_error("fn:sum over non-numeric values"));
                    }
                    *count += 1;
                    *dsum += d;
                }
            }
        }
        Ok(())
    }

    /// The aggregate's value for the members absorbed so far.
    pub fn result(&self) -> Sequence {
        match self {
            AggAcc::Count(c) => Sequence::int(*c),
            AggAcc::Exists(b) => Sequence::bool(*b),
            AggAcc::Min(best) | AggAcc::Max(best) => match best {
                Some(a) => Sequence::one(a.clone()),
                None => Sequence::empty(),
            },
            AggAcc::Sum { seen, dsum } => {
                if *seen {
                    Sequence::one(Atomic::Double(*dsum))
                } else {
                    Sequence::int(0)
                }
            }
            AggAcc::Avg { count, dsum } => {
                if *count == 0 {
                    Sequence::empty()
                } else {
                    Sequence::one(Atomic::Double(*dsum / *count as f64))
                }
            }
        }
    }

    /// Serialize for persistence (retention bases in the checkpoint).
    /// `None` when the state is not encodable (a `QName` best — which
    /// member atomization never produces — stays process-local).
    pub fn encode(&self) -> Option<Vec<u8>> {
        let mut out = Vec::with_capacity(16);
        match self {
            AggAcc::Count(c) => {
                out.push(0);
                out.extend_from_slice(&c.to_le_bytes());
            }
            AggAcc::Exists(b) => {
                out.push(1);
                out.push(*b as u8);
            }
            AggAcc::Min(best) => {
                out.push(2);
                encode_opt_atomic(&mut out, best)?;
            }
            AggAcc::Max(best) => {
                out.push(3);
                encode_opt_atomic(&mut out, best)?;
            }
            AggAcc::Sum { seen, dsum } => {
                out.push(4);
                out.push(*seen as u8);
                out.extend_from_slice(&dsum.to_bits().to_le_bytes());
            }
            AggAcc::Avg { count, dsum } => {
                out.push(5);
                out.extend_from_slice(&count.to_le_bytes());
                out.extend_from_slice(&dsum.to_bits().to_le_bytes());
            }
        }
        Some(out)
    }

    /// Inverse of [`Self::encode`]; `None` on any malformed input (a
    /// corrupt or future-format base simply fails to load, and the slice
    /// stays fully retained).
    pub fn decode(bytes: &[u8]) -> Option<AggAcc> {
        let mut r = Reader(bytes);
        let acc = match r.u8()? {
            0 => AggAcc::Count(r.i64()?),
            1 => AggAcc::Exists(r.u8()? != 0),
            2 => AggAcc::Min(r.opt_atomic()?),
            3 => AggAcc::Max(r.opt_atomic()?),
            4 => AggAcc::Sum {
                seen: r.u8()? != 0,
                dsum: f64::from_bits(r.u64()?),
            },
            5 => AggAcc::Avg {
                count: r.i64()?,
                dsum: f64::from_bits(r.u64()?),
            },
            _ => return None,
        };
        r.0.is_empty().then_some(acc)
    }
}

fn encode_opt_atomic(out: &mut Vec<u8>, a: &Option<Atomic>) -> Option<()> {
    match a {
        None => out.push(0),
        Some(a) => {
            out.push(1);
            let (tag, bytes): (u8, Vec<u8>) = match a {
                Atomic::Str(s) => (0, s.as_bytes().to_vec()),
                Atomic::Bool(b) => (1, vec![*b as u8]),
                Atomic::Int(i) => (2, i.to_le_bytes().to_vec()),
                Atomic::Decimal(d) => (3, d.to_bits().to_le_bytes().to_vec()),
                Atomic::Double(d) => (4, d.to_bits().to_le_bytes().to_vec()),
                Atomic::DateTime(t) => (5, t.to_le_bytes().to_vec()),
                Atomic::Duration(t) => (6, t.to_le_bytes().to_vec()),
                Atomic::Untyped(s) => (7, s.as_bytes().to_vec()),
                Atomic::QName(_) => return None,
            };
            out.push(tag);
            out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
            out.extend_from_slice(&bytes);
        }
    }
    Some(())
}

struct Reader<'a>(&'a [u8]);

impl Reader<'_> {
    fn take(&mut self, n: usize) -> Option<&[u8]> {
        (self.0.len() >= n).then(|| {
            let (head, rest) = self.0.split_at(n);
            self.0 = rest;
            head
        })
    }
    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }
    fn u64(&mut self) -> Option<u64> {
        self.take(8).map(|b| u64::from_le_bytes(b.try_into().unwrap()))
    }
    fn i64(&mut self) -> Option<i64> {
        self.take(8).map(|b| i64::from_le_bytes(b.try_into().unwrap()))
    }
    fn opt_atomic(&mut self) -> Option<Option<Atomic>> {
        match self.u8()? {
            0 => Some(None),
            1 => {
                let tag = self.u8()?;
                let len = self.take(4).map(|b| u32::from_le_bytes(b.try_into().unwrap()))? as usize;
                let bytes = self.take(len)?;
                let s = || String::from_utf8(bytes.to_vec()).ok();
                let f = |b: &[u8]| Some(f64::from_bits(u64::from_le_bytes(b.try_into().ok()?)));
                let i = |b: &[u8]| Some(i64::from_le_bytes(b.try_into().ok()?));
                let a = match tag {
                    0 => Atomic::Str(s()?),
                    1 => Atomic::Bool(*bytes.first()? != 0),
                    2 => Atomic::Int(i(bytes)?),
                    3 => Atomic::Decimal(f(bytes)?),
                    4 => Atomic::Double(f(bytes)?),
                    5 => Atomic::DateTime(i(bytes)?),
                    6 => Atomic::Duration(i(bytes)?),
                    7 => Atomic::Untyped(s()?),
                    _ => return None,
                };
                Some(Some(a))
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_expr;
    use crate::value::Item;

    fn recognize(q: &str) -> Option<AggregateSpec> {
        recognize_aggregate(&parse_expr(q).unwrap())
    }

    #[test]
    fn recognizes_supported_shapes() {
        let s = recognize("count(qs:slice())").unwrap();
        assert_eq!(s.op, AggOp::Count);
        assert_eq!(s.source, AggSource::Slice);
        assert!(s.steps.is_empty());

        let s = recognize("sum(qs:queue(\"orders\")//total)").unwrap();
        assert_eq!(s.op, AggOp::Sum);
        assert_eq!(s.source, AggSource::Queue("orders".into()));
        // `//total` expands to descendant-or-self::node()/child::total.
        assert_eq!(s.steps.len(), 2);
        assert_eq!(s.steps[0].axis, Axis::DescendantOrSelf);

        for q in [
            "exists(qs:slice()/ack)",
            "min(qs:queue(\"q\")/m/price)",
            "max(qs:slice()//n)",
            "avg(qs:slice()//n)", // sum/count pair (ROADMAP 5a)
            "avg(qs:queue(\"orders\")//total)",
        ] {
            assert!(recognize(q).is_some(), "{q} should be incrementalizable");
        }
    }

    #[test]
    fn recognizes_guarded_shapes() {
        // Member-local boolean guards fold member-at-a-time.
        for q in [
            "count(qs:slice()[. > 1])",
            "count(qs:slice()//n[. > 5])",
            "sum(qs:slice()//item[status = \"open\"]/v)",
            "count(qs:queue(\"q\")/m[exists(ack)])",
            "avg(qs:slice()//n[not(@skip)])",
        ] {
            let s = recognize(q).unwrap_or_else(|| panic!("{q} should be recognized"));
            assert!(s.has_guards(), "{q} must carry its guard");
        }
    }

    #[test]
    fn rejects_unsupported_shapes() {
        for q in [
            "count(qs:queue())",          // implicit target queue, no literal
            "count(qs:queue($v))",        // non-literal queue name
            "count(qs:slice()/a[2])",     // positional predicate
            "count(qs:slice()[1])",       // positional source filter
            "count(qs:slice()//n[position() < 2])", // explicit position
            "count(qs:slice()//n[last()])", // membership-order dependent
            "count(qs:slice()//n[$v])",   // free variable
            "count(qs:slice()[qs:property(\"p\") = 1])", // context read
            "sum(qs:slice()//n, 0)",      // 2-arg sum
            "count(//a)",                 // message-relative path
            "count(qs:slicekey())",       // not a membership source
            "string(qs:slice())",         // not an aggregate
        ] {
            assert!(recognize(q).is_none(), "{q} must not be recognized");
        }
    }

    #[test]
    fn cache_key_and_stable_sig_distinguish_shapes() {
        let shapes = [
            "count(qs:slice())",
            "count(qs:queue(\"a\"))",
            "count(qs:queue(\"b\"))",
            "sum(qs:queue(\"a\"))",
            "avg(qs:queue(\"a\"))",
            "count(qs:queue(\"a\")/x)",
            "count(qs:queue(\"a\")/x[. > 1])",
        ];
        for pick in [AggregateSpec::cache_key, AggregateSpec::stable_sig] {
            let keys: Vec<String> = shapes.iter().map(|q| pick(&recognize(q).unwrap())).collect();
            for i in 0..keys.len() {
                for j in i + 1..keys.len() {
                    assert_ne!(keys[i], keys[j]);
                }
            }
        }
    }

    #[test]
    fn stable_sig_has_no_interned_ids() {
        let sig = recognize("sum(qs:slice()//total)").unwrap().stable_sig();
        assert!(sig.contains("total"), "names resolved in {sig}");
        assert!(!sig.contains("Sym("), "no raw interned ids in {sig}");
    }

    fn doc(xml: &str) -> NodeRef {
        demaq_xml::parse(xml).unwrap().root()
    }

    /// The fold must agree with the builtin over the same member docs —
    /// including when resumed incrementally one member at a time.
    #[test]
    fn acc_matches_reference_builtins() {
        let members = [
            doc("<m><n>5</n></m>"),
            doc("<m><n>2</n><n>9</n></m>"),
            doc("<m/>"),
            doc("<m><n>7</n></m>"),
        ];
        for (q, op) in [
            ("count", AggOp::Count),
            ("sum", AggOp::Sum),
            ("min", AggOp::Min),
            ("max", AggOp::Max),
            ("exists", AggOp::Exists),
            ("avg", AggOp::Avg),
        ] {
            let spec = recognize(&format!("{q}(qs:slice()//n)")).unwrap();
            assert_eq!(spec.op, op);
            let mut acc = AggAcc::new(op);
            for m in &members {
                acc.absorb_member(&spec, m).unwrap();
            }
            // Reference: the builtin applied to the atomized node multiset.
            let all: Sequence = members
                .iter()
                .flat_map(|m| spec.member_nodes(m).unwrap())
                .map(Item::Node)
                .collect();
            let reference =
                crate::functions::call_builtin(&test_dctx(), q, vec![all], None).unwrap();
            assert_eq!(
                format!("{:?}", acc.result()),
                format!("{:?}", reference),
                "{q} diverged from fn:{q}"
            );
        }
    }

    /// Guarded folds must agree with the reference evaluator filtering
    /// the same members.
    #[test]
    fn guarded_acc_matches_reference() {
        let members = [
            doc("<m><n>5</n></m>"),
            doc("<m><n>2</n><n>9</n></m>"),
            doc("<m><n>abc</n></m>"),
            doc("<m><n>7</n></m>"),
        ];
        let spec = recognize("count(qs:slice()//n[. > 4])").unwrap();
        let mut acc = AggAcc::new(AggOp::Count);
        for m in &members {
            acc.absorb_member(&spec, m).unwrap();
        }
        // 5, 9, 7 pass; 2 fails; "abc" > 4 is false (untyped numeric cmp).
        assert_eq!(format!("{:?}", acc.result()), format!("{:?}", Sequence::int(3)));

        // Guards also shield sum from non-numeric members the reference
        // would filter out the same way.
        let spec = recognize("sum(qs:slice()//n[. > 4])").unwrap();
        let mut acc = AggAcc::new(AggOp::Sum);
        for m in &members {
            acc.absorb_member(&spec, m).unwrap();
        }
        assert_eq!(
            format!("{:?}", acc.result()),
            format!("{:?}", Sequence::one(Atomic::Double(21.0)))
        );
    }

    #[test]
    fn acc_errors_match_reference_error_strings() {
        let bad = doc("<m><n>abc</n></m>");
        let good = doc("<m><n>1</n></m>");

        let spec = recognize("sum(qs:slice()//n)").unwrap();
        let mut acc = AggAcc::new(AggOp::Sum);
        acc.absorb_member(&spec, &good).unwrap();
        let err = acc.absorb_member(&spec, &bad).unwrap_err();
        assert!(err.to_string().contains("fn:sum over non-numeric values"));

        // `fn:avg` folds through `numeric_fold(_, "sum")`, so its error
        // string names fn:sum as well.
        let spec = recognize("avg(qs:slice()//n)").unwrap();
        let mut acc = AggAcc::new(AggOp::Avg);
        let err = acc.absorb_member(&spec, &bad).unwrap_err();
        assert!(err.to_string().contains("fn:sum over non-numeric values"));

        // min over string-ish untyped values is fine (string comparison)…
        let spec = recognize("min(qs:slice()//n)").unwrap();
        let mut acc = AggAcc::new(AggOp::Min);
        acc.absorb_member(&spec, &bad).unwrap();
        acc.absorb_member(&spec, &good).unwrap();
        assert_eq!(
            format!("{:?}", acc.result()),
            format!("{:?}", Sequence::one(Atomic::Untyped("1".into())))
        );
    }

    #[test]
    fn empty_multiset_results_match_builtins() {
        let dbg = |s: Sequence| format!("{s:?}");
        assert_eq!(dbg(AggAcc::new(AggOp::Count).result()), dbg(Sequence::int(0)));
        assert_eq!(dbg(AggAcc::new(AggOp::Sum).result()), dbg(Sequence::int(0)));
        assert_eq!(dbg(AggAcc::new(AggOp::Exists).result()), dbg(Sequence::bool(false)));
        assert!(AggAcc::new(AggOp::Min).result().is_empty());
        assert!(AggAcc::new(AggOp::Max).result().is_empty());
        // fn:avg over the empty sequence is the empty sequence.
        assert!(AggAcc::new(AggOp::Avg).result().is_empty());
    }

    /// Persistence round-trip: every accumulator state survives
    /// encode/decode byte-identically (retention bases in checkpoints).
    #[test]
    fn acc_encode_decode_round_trip() {
        let states = [
            AggAcc::Count(42),
            AggAcc::Exists(true),
            AggAcc::Exists(false),
            AggAcc::Min(None),
            AggAcc::Min(Some(Atomic::Untyped("7".into()))),
            AggAcc::Max(Some(Atomic::Int(-3))),
            AggAcc::Max(Some(Atomic::Double(2.5))),
            AggAcc::Sum {
                seen: true,
                dsum: 19.25,
            },
            AggAcc::Sum {
                seen: false,
                dsum: 0.0,
            },
            AggAcc::Avg {
                count: 6,
                dsum: 33.0,
            },
        ];
        for acc in states {
            let bytes = acc.encode().expect("encodable");
            let back = AggAcc::decode(&bytes).expect("decodable");
            assert_eq!(format!("{acc:?}"), format!("{back:?}"));
        }
        // Malformed input never panics.
        assert!(AggAcc::decode(&[]).is_none());
        assert!(AggAcc::decode(&[9]).is_none());
        assert!(AggAcc::decode(&[0, 1]).is_none());
        let mut long = AggAcc::Count(1).encode().unwrap();
        long.push(0);
        assert!(AggAcc::decode(&long).is_none(), "trailing bytes rejected");
    }

    fn test_dctx() -> crate::context::DynamicContext {
        crate::context::DynamicContext::new(std::sync::Arc::new(crate::context::NoHost))
    }
}
