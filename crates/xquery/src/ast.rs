//! Abstract syntax for the XQuery/QML expression language.

use demaq_xml::QName;

/// Path step axes (the subset needed by the paper's listings plus the
//  usual reverse axes for completeness).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Axis {
    Child,
    Descendant,
    DescendantOrSelf,
    Attribute,
    SelfAxis,
    Parent,
    Ancestor,
    AncestorOrSelf,
    FollowingSibling,
    PrecedingSibling,
}

impl Axis {
    /// True for axes that deliver nodes in reverse document order.
    pub fn is_reverse(&self) -> bool {
        matches!(
            self,
            Axis::Parent | Axis::Ancestor | Axis::AncestorOrSelf | Axis::PrecedingSibling
        )
    }
}

/// Node test within a step.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeTest {
    /// Name test (`foo`, `p:foo`); `*` is represented by `AnyName`.
    Name(QName),
    AnyName,
    /// `node()`
    AnyKind,
    /// `text()`
    Text,
    /// `comment()`
    Comment,
    /// `element()` / `element(name)`
    Element(Option<QName>),
    /// `attribute()` / `attribute(name)`
    Attribute(Option<QName>),
    /// `processing-instruction()` / `processing-instruction(target)`
    Pi(Option<String>),
    /// `document-node()`
    Document,
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompOp {
    // General comparisons (existential over sequences)
    GenEq,
    GenNe,
    GenLt,
    GenLe,
    GenGt,
    GenGe,
    // Value comparisons (singleton)
    ValEq,
    ValNe,
    ValLt,
    ValLe,
    ValGt,
    ValGe,
    // Node comparisons
    Is,
    Precedes,
    Follows,
}

/// Arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    Add,
    Sub,
    Mul,
    Div,
    IDiv,
    Mod,
}

/// Set operators on node sequences.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetOp {
    Union,
    Intersect,
    Except,
}

/// A FLWOR binding clause.
#[derive(Debug, Clone, PartialEq)]
pub enum FlworClause {
    /// `for $v (at $pos)? in Expr`
    For {
        var: String,
        at: Option<String>,
        source: Expr,
    },
    /// `let $v := Expr`
    Let { var: String, value: Expr },
}

/// An `order by` key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderSpec {
    pub key: Expr,
    pub descending: bool,
    /// `empty least` (default) vs `empty greatest`.
    pub empty_greatest: bool,
}

/// Content of a direct element constructor.
#[derive(Debug, Clone, PartialEq)]
pub enum DirContent {
    /// Literal character data.
    Text(String),
    /// `{ expr }` enclosed expression.
    Enclosed(Expr),
    /// Nested constructor or other expression producing nodes.
    Expr(Expr),
}

/// Attribute value template piece.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValuePart {
    Text(String),
    Enclosed(Expr),
}

/// Target position for `do insert`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertPos {
    Into,
    IntoAsFirst,
    IntoAsLast,
    Before,
    After,
}

/// The expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    // -- primaries ---------------------------------------------------------
    StringLit(String),
    IntLit(i64),
    DoubleLit(f64),
    /// `$name`
    Var(String),
    /// `.`
    ContextItem,
    /// `()` or `(e1, e2, ...)` — sequence construction.
    Sequence(Vec<Expr>),
    /// Function call `name(args...)`.
    FunctionCall {
        name: QName,
        args: Vec<Expr>,
    },

    // -- paths --------------------------------------------------------------
    /// Leading `/` or `//` rooted path; steps applied left to right.
    /// `root` true means start from the document node of the context item.
    Path {
        root: bool,
        steps: Vec<Expr>,
    },
    /// One axis step with predicates.
    Step {
        axis: Axis,
        test: NodeTest,
        predicates: Vec<Expr>,
    },
    /// Filter expression: primary with predicates (`$x[...]`, `(e)[...]`).
    Filter {
        base: Box<Expr>,
        predicates: Vec<Expr>,
    },
    /// `e1 / e2` where e2 is an arbitrary expression (dynamic path step).
    RelativePath {
        base: Box<Expr>,
        step: Box<Expr>,
        descend: bool,
    },

    // -- operators ----------------------------------------------------------
    Or(Box<Expr>, Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Comparison {
        op: CompOp,
        left: Box<Expr>,
        right: Box<Expr>,
    },
    Arith {
        op: ArithOp,
        left: Box<Expr>,
        right: Box<Expr>,
    },
    Set {
        op: SetOp,
        left: Box<Expr>,
        right: Box<Expr>,
    },
    /// `a to b` integer range.
    Range(Box<Expr>, Box<Expr>),
    Neg(Box<Expr>),

    // -- control ------------------------------------------------------------
    /// `if (c) then t else e` — `else` optional in QML (defaults to `()`),
    /// per paper Sec. 3.3.
    If {
        cond: Box<Expr>,
        then: Box<Expr>,
        els: Option<Box<Expr>>,
    },
    Flwor {
        clauses: Vec<FlworClause>,
        where_: Option<Box<Expr>>,
        order: Vec<OrderSpec>,
        ret: Box<Expr>,
    },
    Quantified {
        every: bool,
        bindings: Vec<(String, Expr)>,
        satisfies: Box<Expr>,
    },

    // -- constructors ---------------------------------------------------------
    DirectElement {
        name: QName,
        attrs: Vec<(QName, Vec<AttrValuePart>)>,
        content: Vec<DirContent>,
    },
    ComputedElement {
        name: Box<Expr>,
        content: Box<Expr>,
    },
    ComputedAttribute {
        name: Box<Expr>,
        content: Box<Expr>,
    },
    ComputedText(Box<Expr>),
    ComputedComment(Box<Expr>),
    ComputedDocument(Box<Expr>),

    // -- updating expressions (QML extensions + XQUF subset) -----------------
    /// `do enqueue Expr into QName (with PName value Expr)*` (paper Sec 3.4).
    Enqueue {
        message: Box<Expr>,
        queue: QName,
        props: Vec<(String, Expr)>,
    },
    /// `do reset` / `do reset QName key Expr` (paper Sec 3.5.3).
    Reset {
        slicing: Option<QName>,
        key: Option<Box<Expr>>,
    },
    /// XQUF `do insert Source (into|before|after|...) Target`.
    Insert {
        source: Box<Expr>,
        pos: InsertPos,
        target: Box<Expr>,
    },
    /// XQUF `do delete Target`.
    Delete {
        target: Box<Expr>,
    },
    /// XQUF `do replace (value of)? Target with Source`.
    Replace {
        target: Box<Expr>,
        source: Box<Expr>,
        value_of: bool,
    },
    /// XQUF `do rename Target as NewName`.
    Rename {
        target: Box<Expr>,
        name: Box<Expr>,
    },

    // -- misc -----------------------------------------------------------------
    /// `expr cast as xs:type` (subset: the paper's atomic types).
    Cast {
        expr: Box<Expr>,
        ty: String,
    },
    /// `expr instance of` simplified: type name only.
    InstanceOf {
        expr: Box<Expr>,
        ty: String,
    },
}

impl Expr {
    /// True if this expression (conservatively) contains an updating
    /// expression. QML requires rule bodies to be updating expressions; the
    /// engine uses this to validate rules and to decide plan shapes.
    pub fn is_updating(&self) -> bool {
        match self {
            Expr::Enqueue { .. }
            | Expr::Reset { .. }
            | Expr::Insert { .. }
            | Expr::Delete { .. }
            | Expr::Replace { .. }
            | Expr::Rename { .. } => true,
            Expr::Sequence(es) => es.iter().any(Expr::is_updating),
            Expr::If { then, els, .. } => {
                then.is_updating() || els.as_ref().is_some_and(|e| e.is_updating())
            }
            Expr::Flwor { ret, .. } => ret.is_updating(),
            _ => false,
        }
    }

    /// Walk the expression tree, applying `f` to every node (pre-order).
    pub fn visit(&self, f: &mut impl FnMut(&Expr)) {
        f(self);
        let mut go = |e: &Expr| e.visit(f);
        match self {
            Expr::Sequence(es) => es.iter().for_each(&mut go),
            Expr::FunctionCall { args, .. } => args.iter().for_each(&mut go),
            Expr::Path { steps, .. } => steps.iter().for_each(&mut go),
            Expr::Step { predicates, .. } => predicates.iter().for_each(&mut go),
            Expr::Filter { base, predicates } => {
                go(base);
                predicates.iter().for_each(&mut go);
            }
            Expr::RelativePath { base, step, .. } => {
                go(base);
                go(step);
            }
            Expr::Or(a, b) | Expr::And(a, b) | Expr::Range(a, b) => {
                go(a);
                go(b);
            }
            Expr::Comparison { left, right, .. }
            | Expr::Arith { left, right, .. }
            | Expr::Set { left, right, .. } => {
                go(left);
                go(right);
            }
            Expr::Neg(e)
            | Expr::ComputedText(e)
            | Expr::ComputedComment(e)
            | Expr::ComputedDocument(e) => go(e),
            Expr::If { cond, then, els } => {
                go(cond);
                go(then);
                if let Some(e) = els {
                    go(e);
                }
            }
            Expr::Flwor {
                clauses,
                where_,
                order,
                ret,
            } => {
                for c in clauses {
                    match c {
                        FlworClause::For { source, .. } => go(source),
                        FlworClause::Let { value, .. } => go(value),
                    }
                }
                if let Some(w) = where_ {
                    go(w);
                }
                for o in order {
                    go(&o.key);
                }
                go(ret);
            }
            Expr::Quantified {
                bindings,
                satisfies,
                ..
            } => {
                for (_, e) in bindings {
                    go(e);
                }
                go(satisfies);
            }
            Expr::DirectElement { attrs, content, .. } => {
                for (_, parts) in attrs {
                    for p in parts {
                        if let AttrValuePart::Enclosed(e) = p {
                            go(e);
                        }
                    }
                }
                for c in content {
                    match c {
                        DirContent::Enclosed(e) | DirContent::Expr(e) => go(e),
                        DirContent::Text(_) => {}
                    }
                }
            }
            Expr::ComputedElement { name, content } | Expr::ComputedAttribute { name, content } => {
                go(name);
                go(content);
            }
            Expr::Enqueue { message, props, .. } => {
                go(message);
                for (_, e) in props {
                    go(e);
                }
            }
            Expr::Reset { key, .. } => {
                if let Some(k) = key {
                    go(k);
                }
            }
            Expr::Insert { source, target, .. } => {
                go(source);
                go(target);
            }
            Expr::Delete { target } => go(target),
            Expr::Replace { target, source, .. } => {
                go(target);
                go(source);
            }
            Expr::Rename { target, name } => {
                go(target);
                go(name);
            }
            Expr::Cast { expr, .. } | Expr::InstanceOf { expr, .. } => go(expr),
            Expr::StringLit(_)
            | Expr::IntLit(_)
            | Expr::DoubleLit(_)
            | Expr::Var(_)
            | Expr::ContextItem => {}
        }
    }

    /// Transform the expression tree bottom-up with `f`. Used by the Demaq
    /// rule compiler for view-merging rewrites (fixed-property inlining,
    /// `qs:queue()` default-argument injection).
    pub fn rewrite(self, f: &impl Fn(Expr) -> Expr) -> Expr {
        let go = |e: Expr| e.rewrite(f);
        let gob = |e: Box<Expr>| Box::new(go(*e));
        let rewritten = match self {
            Expr::Sequence(es) => Expr::Sequence(es.into_iter().map(go).collect()),
            Expr::FunctionCall { name, args } => Expr::FunctionCall {
                name,
                args: args.into_iter().map(go).collect(),
            },
            Expr::Path { root, steps } => Expr::Path {
                root,
                steps: steps.into_iter().map(go).collect(),
            },
            Expr::Step {
                axis,
                test,
                predicates,
            } => Expr::Step {
                axis,
                test,
                predicates: predicates.into_iter().map(go).collect(),
            },
            Expr::Filter { base, predicates } => Expr::Filter {
                base: gob(base),
                predicates: predicates.into_iter().map(go).collect(),
            },
            Expr::RelativePath {
                base,
                step,
                descend,
            } => Expr::RelativePath {
                base: gob(base),
                step: gob(step),
                descend,
            },
            Expr::Or(a, b) => Expr::Or(gob(a), gob(b)),
            Expr::And(a, b) => Expr::And(gob(a), gob(b)),
            Expr::Range(a, b) => Expr::Range(gob(a), gob(b)),
            Expr::Comparison { op, left, right } => Expr::Comparison {
                op,
                left: gob(left),
                right: gob(right),
            },
            Expr::Arith { op, left, right } => Expr::Arith {
                op,
                left: gob(left),
                right: gob(right),
            },
            Expr::Set { op, left, right } => Expr::Set {
                op,
                left: gob(left),
                right: gob(right),
            },
            Expr::Neg(e) => Expr::Neg(gob(e)),
            Expr::If { cond, then, els } => Expr::If {
                cond: gob(cond),
                then: gob(then),
                els: els.map(gob),
            },
            Expr::Flwor {
                clauses,
                where_,
                order,
                ret,
            } => Expr::Flwor {
                clauses: clauses
                    .into_iter()
                    .map(|c| match c {
                        FlworClause::For { var, at, source } => FlworClause::For {
                            var,
                            at,
                            source: go(source),
                        },
                        FlworClause::Let { var, value } => FlworClause::Let {
                            var,
                            value: go(value),
                        },
                    })
                    .collect(),
                where_: where_.map(gob),
                order: order
                    .into_iter()
                    .map(|o| OrderSpec {
                        key: go(o.key),
                        ..o
                    })
                    .collect(),
                ret: gob(ret),
            },
            Expr::Quantified {
                every,
                bindings,
                satisfies,
            } => Expr::Quantified {
                every,
                bindings: bindings.into_iter().map(|(v, e)| (v, go(e))).collect(),
                satisfies: gob(satisfies),
            },
            Expr::DirectElement {
                name,
                attrs,
                content,
            } => Expr::DirectElement {
                name,
                attrs: attrs
                    .into_iter()
                    .map(|(n, parts)| {
                        (
                            n,
                            parts
                                .into_iter()
                                .map(|p| match p {
                                    AttrValuePart::Enclosed(e) => AttrValuePart::Enclosed(go(e)),
                                    t => t,
                                })
                                .collect(),
                        )
                    })
                    .collect(),
                content: content
                    .into_iter()
                    .map(|c| match c {
                        DirContent::Enclosed(e) => DirContent::Enclosed(go(e)),
                        DirContent::Expr(e) => DirContent::Expr(go(e)),
                        t => t,
                    })
                    .collect(),
            },
            Expr::ComputedElement { name, content } => Expr::ComputedElement {
                name: gob(name),
                content: gob(content),
            },
            Expr::ComputedAttribute { name, content } => Expr::ComputedAttribute {
                name: gob(name),
                content: gob(content),
            },
            Expr::ComputedText(e) => Expr::ComputedText(gob(e)),
            Expr::ComputedComment(e) => Expr::ComputedComment(gob(e)),
            Expr::ComputedDocument(e) => Expr::ComputedDocument(gob(e)),
            Expr::Enqueue {
                message,
                queue,
                props,
            } => Expr::Enqueue {
                message: gob(message),
                queue,
                props: props.into_iter().map(|(n, e)| (n, go(e))).collect(),
            },
            Expr::Reset { slicing, key } => Expr::Reset {
                slicing,
                key: key.map(gob),
            },
            Expr::Insert {
                source,
                pos,
                target,
            } => Expr::Insert {
                source: gob(source),
                pos,
                target: gob(target),
            },
            Expr::Delete { target } => Expr::Delete {
                target: gob(target),
            },
            Expr::Replace {
                target,
                source,
                value_of,
            } => Expr::Replace {
                target: gob(target),
                source: gob(source),
                value_of,
            },
            Expr::Rename { target, name } => Expr::Rename {
                target: gob(target),
                name: gob(name),
            },
            Expr::Cast { expr, ty } => Expr::Cast {
                expr: gob(expr),
                ty,
            },
            Expr::InstanceOf { expr, ty } => Expr::InstanceOf {
                expr: gob(expr),
                ty,
            },
            leaf @ (Expr::StringLit(_)
            | Expr::IntLit(_)
            | Expr::DoubleLit(_)
            | Expr::Var(_)
            | Expr::ContextItem) => leaf,
        };
        f(rewritten)
    }
}
