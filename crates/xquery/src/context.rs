//! Static and dynamic evaluation contexts.

use crate::error::{Error, Result};
use crate::value::Sequence;
use demaq_xml::QName;
use std::collections::HashMap;
use std::sync::Arc;

/// Static context: known variables and (currently) nothing else — static
/// name checking happens in `Evaluator` against the builtin/extension
/// registries at call time, which keeps the two registries in one place.
#[derive(Default, Clone)]
pub struct StaticContext {
    /// Names of externally provided variables.
    pub external_vars: Vec<String>,
}

/// Host hooks: extension functions (the engine's `qs:` library) and the
/// `fn:collection`/`fn:doc` data sources.
///
/// A fresh host is typically constructed per message-processing transaction,
/// closing over the current message, queue handles, and slice context —
/// which is how `qs:message()` and friends get their implicit arguments.
pub trait HostFunctions: Send + Sync {
    /// Invoke an extension function (any function with a namespace prefix
    /// other than `fn`/`xs`). Return `None` to signal "unknown function".
    fn call(&self, name: &QName, args: &[Sequence]) -> Option<Result<Sequence>>;

    /// `fn:collection(name)` — master data access (paper Sec. 3.5.2 uses
    /// `collection("crm")` for price lists).
    fn collection(&self, name: &str) -> Result<Sequence> {
        Err(Error::dynamic(format!("no collection `{name}` available")))
    }

    /// `fn:doc(uri)`.
    fn doc(&self, uri: &str) -> Result<Sequence> {
        Err(Error::dynamic(format!("no document `{uri}` available")))
    }

    /// `fn:current-dateTime()` — epoch milliseconds of the engine's clock.
    /// Defaults to 0 so pure-library use stays deterministic.
    fn current_date_time_ms(&self) -> i64 {
        0
    }

    /// Answer a recognized aggregate read (`Plan::AggregateRead`) from a
    /// materialized cell. `None` declines — the evaluator then runs the
    /// embedded fallback, the reference rescan. Hosts without an
    /// incremental registry keep this default.
    fn aggregate(&self, _spec: &crate::aggregate::AggregateSpec) -> Option<Result<Sequence>> {
        None
    }
}

/// A host providing nothing: standalone XQuery evaluation.
pub struct NoHost;
impl HostFunctions for NoHost {
    fn call(&self, _name: &QName, _args: &[Sequence]) -> Option<Result<Sequence>> {
        None
    }
}

/// Dynamic context: external variable bindings plus the host hooks.
#[derive(Clone)]
pub struct DynamicContext {
    pub variables: HashMap<String, Sequence>,
    pub host: Arc<dyn HostFunctions>,
}

impl DynamicContext {
    pub fn new(host: Arc<dyn HostFunctions>) -> Self {
        DynamicContext {
            variables: HashMap::new(),
            host,
        }
    }

    /// Bind an external variable visible to the query as `$name`.
    pub fn bind(&mut self, name: impl Into<String>, value: Sequence) -> &mut Self {
        self.variables.insert(name.into(), value);
        self
    }
}

impl Default for DynamicContext {
    fn default() -> Self {
        DynamicContext::new(Arc::new(NoHost))
    }
}
