//! Error types for the XQuery engine, loosely mirroring the W3C error-code
//! families (`XPST` static, `XPDY`/`XPTY` dynamic/type, `FO` function).
//! Demaq routes these as *application-program-related errors* to error
//! queues (paper Sec. 3.6).

use std::fmt;

/// Error category, mapped onto the W3C code families.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// Static (parse/name-resolution) error — `XPST`.
    Static,
    /// Dynamic type error — `XPTY`/`FORG`.
    Type,
    /// Other dynamic evaluation error — `XPDY`/`FO*`.
    Dynamic,
    /// Misuse of an updating expression — `XUST`/`XUDY`.
    Update,
}

/// An XQuery error with category, code-ish label, and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    pub kind: ErrorKind,
    pub code: &'static str,
    pub msg: String,
}

impl Error {
    pub fn static_error(msg: impl Into<String>) -> Error {
        Error {
            kind: ErrorKind::Static,
            code: "XPST0003",
            msg: msg.into(),
        }
    }

    pub fn undefined_name(msg: impl Into<String>) -> Error {
        Error {
            kind: ErrorKind::Static,
            code: "XPST0008",
            msg: msg.into(),
        }
    }

    pub fn unknown_function(msg: impl Into<String>) -> Error {
        Error {
            kind: ErrorKind::Static,
            code: "XPST0017",
            msg: msg.into(),
        }
    }

    pub fn type_error(msg: impl Into<String>) -> Error {
        Error {
            kind: ErrorKind::Type,
            code: "XPTY0004",
            msg: msg.into(),
        }
    }

    pub fn dynamic(msg: impl Into<String>) -> Error {
        Error {
            kind: ErrorKind::Dynamic,
            code: "XPDY0002",
            msg: msg.into(),
        }
    }

    pub fn arity(name: &str, expected: &str, got: usize) -> Error {
        Error {
            kind: ErrorKind::Static,
            code: "XPST0017",
            msg: format!("function {name} expects {expected} argument(s), got {got}"),
        }
    }

    pub fn update(msg: impl Into<String>) -> Error {
        Error {
            kind: ErrorKind::Update,
            code: "XUST0001",
            msg: msg.into(),
        }
    }

    pub fn division_by_zero() -> Error {
        Error {
            kind: ErrorKind::Dynamic,
            code: "FOAR0001",
            msg: "division by zero".into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.code, self.msg)
    }
}
impl std::error::Error for Error {}

pub type Result<T> = std::result::Result<T, Error>;
