//! Dynamic evaluation of expression trees.
//!
//! The evaluator is snapshot-semantic: it reads the XML tree(s) and the
//! dynamic context, never mutating them; updating expressions append to a
//! pending update list ([`Evaluator::updates`]) that the caller applies
//! afterwards — exactly the separation of rule evaluation from action
//! execution that the Demaq execution model prescribes (paper Sec. 3.1).

use crate::ast::*;
use crate::context::{DynamicContext, StaticContext};
use crate::error::{Error, Result};
use crate::functions;
use crate::update::Update;
use crate::value::{parse_date_time, parse_duration, Atomic, Item, Sequence};
use demaq_xml::{DocBuilder, Document, NodeKind, NodeRef, QName};
use std::cmp::Ordering;
use std::sync::Arc;

/// The focus: context item, position, and size (XPath `.`/`position()`/
/// `last()`).
#[derive(Clone)]
pub struct Focus {
    pub item: Item,
    pub pos: usize,
    pub size: usize,
}

impl Focus {
    pub fn solo(item: impl Into<Item>) -> Focus {
        Focus {
            item: item.into(),
            pos: 1,
            size: 1,
        }
    }
}

/// Expression evaluator. Create one per query evaluation; collect
/// [`Evaluator::updates`] afterwards when evaluating updating expressions.
pub struct Evaluator<'a> {
    #[allow(dead_code)]
    sctx: &'a StaticContext,
    pub(crate) dctx: &'a DynamicContext,
    /// Lexically scoped variable bindings (FLWOR/quantifier vars).
    vars: Vec<(String, Sequence)>,
    /// Pending update list produced by updating expressions.
    pub updates: Vec<Update>,
    /// Recursion guard.
    depth: u32,
}

const MAX_DEPTH: u32 = 512;

impl<'a> Evaluator<'a> {
    pub fn new(sctx: &'a StaticContext, dctx: &'a DynamicContext) -> Self {
        Evaluator {
            sctx,
            dctx,
            vars: Vec::new(),
            updates: Vec::new(),
            depth: 0,
        }
    }

    /// Evaluate with `context` as the initial context item (the Demaq rule
    /// convention: "the default evaluation context ... is the document root
    /// of the triggering message", paper Sec. 3.4).
    pub fn eval_with_context(&mut self, expr: &Expr, context: NodeRef) -> Result<Sequence> {
        self.eval(expr, Some(&Focus::solo(context)))
    }

    /// Evaluate with no context item (absent focus).
    pub fn eval_no_context(&mut self, expr: &Expr) -> Result<Sequence> {
        self.eval(expr, None)
    }

    fn lookup_var(&self, name: &str) -> Result<Sequence> {
        for (n, v) in self.vars.iter().rev() {
            if n == name {
                return Ok(v.clone());
            }
        }
        self.dctx
            .variables
            .get(name)
            .cloned()
            .ok_or_else(|| Error::undefined_name(format!("undefined variable ${name}")))
    }

    fn context_item(focus: Option<&Focus>) -> Result<Item> {
        focus
            .map(|f| f.item.clone())
            .ok_or_else(|| Error::dynamic("context item is undefined here"))
    }

    /// Main dispatch.
    pub fn eval(&mut self, expr: &Expr, focus: Option<&Focus>) -> Result<Sequence> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            self.depth -= 1;
            return Err(Error::dynamic("expression nesting too deep"));
        }
        let r = self.eval_inner(expr, focus);
        self.depth -= 1;
        r
    }

    fn eval_inner(&mut self, expr: &Expr, focus: Option<&Focus>) -> Result<Sequence> {
        match expr {
            Expr::StringLit(s) => Ok(Sequence::str(s.clone())),
            Expr::IntLit(i) => Ok(Sequence::int(*i)),
            Expr::DoubleLit(d) => Ok(Sequence::one(Atomic::Double(*d))),
            Expr::Var(name) => self.lookup_var(name),
            Expr::ContextItem => Ok(Sequence::one(Self::context_item(focus)?)),
            Expr::Sequence(es) => {
                let mut out = Sequence::empty();
                for e in es {
                    out = out.concat(self.eval(e, focus)?);
                }
                Ok(out)
            }
            Expr::FunctionCall { name, args } => self.call_function(name, args, focus),
            Expr::Path { root, steps } => self.eval_path(*root, steps, focus),
            Expr::Step {
                axis,
                test,
                predicates,
            } => {
                let ctx = Self::context_item(focus)?;
                let node = match ctx {
                    Item::Node(n) => n,
                    Item::Atomic(_) => {
                        return Err(Error::type_error("axis step on an atomic context item"))
                    }
                };
                let axis_result = axis_nodes(*axis, &node, test);
                self.apply_predicates(axis_result, predicates)
            }
            Expr::Filter { base, predicates } => {
                let seq = self.eval(base, focus)?;
                self.apply_predicates(seq, predicates)
            }
            Expr::RelativePath {
                base,
                step,
                descend,
            } => {
                let seq = self.eval(base, focus)?;
                let mut steps = Vec::new();
                if *descend {
                    steps.push(Expr::Step {
                        axis: Axis::DescendantOrSelf,
                        test: NodeTest::AnyKind,
                        predicates: vec![],
                    });
                }
                steps.push((**step).clone());
                self.eval_steps(seq, &steps)
            }
            Expr::Or(a, b) => {
                let l = self.eval(a, focus)?.effective_boolean()?;
                if l {
                    return Ok(Sequence::bool(true));
                }
                Ok(Sequence::bool(self.eval(b, focus)?.effective_boolean()?))
            }
            Expr::And(a, b) => {
                let l = self.eval(a, focus)?.effective_boolean()?;
                if !l {
                    return Ok(Sequence::bool(false));
                }
                Ok(Sequence::bool(self.eval(b, focus)?.effective_boolean()?))
            }
            Expr::Comparison { op, left, right } => self.eval_comparison(*op, left, right, focus),
            Expr::Arith { op, left, right } => self.eval_arith(*op, left, right, focus),
            Expr::Set { op, left, right } => self.eval_set(*op, left, right, focus),
            Expr::Range(a, b) => {
                let la = self.eval(a, focus)?;
                let lb = self.eval(b, focus)?;
                if la.is_empty() || lb.is_empty() {
                    return Ok(Sequence::empty());
                }
                let from = la.exactly_one()?.atomize().cast_integer()?;
                let to = lb.exactly_one()?.atomize().cast_integer()?;
                Ok((from..=to).map(|i| Item::Atomic(Atomic::Int(i))).collect())
            }
            Expr::Neg(e) => {
                let v = self.eval(e, focus)?;
                if v.is_empty() {
                    return Ok(Sequence::empty());
                }
                match v.exactly_one()?.atomize() {
                    Atomic::Int(i) => Ok(Sequence::int(-i)),
                    a => Ok(Sequence::one(Atomic::Double(-a.to_double()))),
                }
            }
            Expr::If { cond, then, els } => {
                if self.eval(cond, focus)?.effective_boolean()? {
                    self.eval(then, focus)
                } else {
                    match els {
                        Some(e) => self.eval(e, focus),
                        None => Ok(Sequence::empty()),
                    }
                }
            }
            Expr::Flwor {
                clauses,
                where_,
                order,
                ret,
            } => self.eval_flwor(clauses, where_.as_deref(), order, ret, focus),
            Expr::Quantified {
                every,
                bindings,
                satisfies,
            } => {
                let result = self.eval_quantified(*every, bindings, satisfies, focus)?;
                Ok(Sequence::bool(result))
            }
            Expr::DirectElement {
                name,
                attrs,
                content,
            } => {
                let node = self.construct_element(name.clone(), attrs, content, focus)?;
                Ok(Sequence::one(node))
            }
            Expr::ComputedElement { name, content } => {
                let n = self.eval(name, focus)?;
                let qn = QName::parse_lexical(&n.string_value()?)
                    .ok_or_else(|| Error::dynamic("invalid computed element name"))?;
                let seq = self.eval(content, focus)?;
                let node = assemble_element(qn, &[], seq)?;
                Ok(Sequence::one(node))
            }
            Expr::ComputedAttribute { name, content } => {
                let n = self.eval(name, focus)?;
                let qn = QName::parse_lexical(&n.string_value()?)
                    .ok_or_else(|| Error::dynamic("invalid computed attribute name"))?;
                let v = self.eval(content, focus)?;
                let value = atomics_joined(&v);
                // Orphan attributes live under a holder element; the
                // constructor assembly recognizes and reattaches them.
                let mut b = DocBuilder::new();
                b.start("attr-holder").attr(qn, value).end();
                let doc = b.finish();
                let attr = doc.document_element().expect("holder").attributes()[0].clone();
                Ok(Sequence::one(attr))
            }
            Expr::ComputedText(e) => {
                let v = self.eval(e, focus)?;
                if v.is_empty() {
                    return Ok(Sequence::empty());
                }
                let mut b = DocBuilder::new();
                b.text(atomics_joined(&v));
                let doc = b.finish();
                let t = doc.root().children().first().cloned();
                Ok(match t {
                    Some(n) => Sequence::one(n),
                    None => Sequence::empty(),
                })
            }
            Expr::ComputedComment(e) => {
                let v = self.eval(e, focus)?;
                let mut b = DocBuilder::new();
                b.comment(atomics_joined(&v));
                let doc = b.finish();
                Ok(Sequence::one(doc.root().children()[0].clone()))
            }
            Expr::ComputedDocument(e) => {
                let seq = self.eval(e, focus)?;
                let mut b = DocBuilder::new();
                append_content(&mut b, &seq, &mut false)?;
                let doc = b.finish();
                Ok(Sequence::one(doc.root()))
            }
            Expr::Enqueue {
                message,
                queue,
                props,
            } => {
                let seq = self.eval(message, focus)?;
                let doc = sequence_to_document(&seq)?;
                let mut eprops = Vec::new();
                for (pname, pexpr) in props {
                    let v = self.eval(pexpr, focus)?;
                    let atom = match v.0.as_slice() {
                        [] => Atomic::Str(String::new()),
                        [item] => item.atomize(),
                        _ => {
                            return Err(Error::type_error(format!(
                                "property `{pname}` value must be a single item"
                            )))
                        }
                    };
                    eprops.push((pname.clone(), atom));
                }
                self.updates.push(Update::Enqueue {
                    queue: queue.clone(),
                    message: doc,
                    props: eprops,
                });
                Ok(Sequence::empty())
            }
            Expr::Reset { slicing, key } => {
                let key_atom = match key {
                    Some(k) => {
                        let v = self.eval(k, focus)?;
                        Some(v.exactly_one()?.atomize())
                    }
                    None => None,
                };
                self.updates.push(Update::Reset {
                    slicing: slicing.clone(),
                    key: key_atom,
                });
                Ok(Sequence::empty())
            }
            Expr::Insert {
                source,
                pos,
                target,
            } => {
                let content = self.eval_nodes(source, focus)?;
                let t = self.eval_single_node(target, focus)?;
                self.updates.push(Update::Insert {
                    target: t,
                    pos: *pos,
                    content,
                });
                Ok(Sequence::empty())
            }
            Expr::Delete { target } => {
                for t in self.eval_nodes(target, focus)? {
                    self.updates.push(Update::Delete { target: t });
                }
                Ok(Sequence::empty())
            }
            Expr::Replace {
                target,
                source,
                value_of,
            } => {
                let t = self.eval_single_node(target, focus)?;
                if *value_of {
                    let v = self.eval(source, focus)?;
                    self.updates.push(Update::ReplaceValue {
                        target: t,
                        value: atomics_joined(&v),
                    });
                } else {
                    let content = self.eval_nodes(source, focus)?;
                    self.updates.push(Update::Replace { target: t, content });
                }
                Ok(Sequence::empty())
            }
            Expr::Rename { target, name } => {
                let t = self.eval_single_node(target, focus)?;
                let n = self.eval(name, focus)?;
                let qn = QName::parse_lexical(&n.string_value()?)
                    .ok_or_else(|| Error::dynamic("invalid rename target name"))?;
                self.updates.push(Update::Rename {
                    target: t,
                    name: qn,
                });
                Ok(Sequence::empty())
            }
            Expr::Cast { expr, ty } => {
                let v = self.eval(expr, focus)?;
                if v.is_empty() {
                    return Ok(Sequence::empty());
                }
                let a = v.exactly_one()?.atomize();
                Ok(Sequence::one(cast_atomic(&a, ty)?))
            }
            Expr::InstanceOf { expr, ty } => {
                let v = self.eval(expr, focus)?;
                let matches = match v.0.as_slice() {
                    [Item::Atomic(a)] => a.type_name() == ty,
                    [Item::Node(_)] => ty == "node()" || ty == "item()",
                    _ => false,
                };
                Ok(Sequence::bool(matches))
            }
        }
    }

    // ---- function dispatch --------------------------------------------------

    fn call_function(
        &mut self,
        name: &QName,
        args: &[Expr],
        focus: Option<&Focus>,
    ) -> Result<Sequence> {
        let mut argv = Vec::with_capacity(args.len());
        for a in args {
            argv.push(self.eval(a, focus)?);
        }
        match name.prefix.as_deref() {
            None => functions::call_builtin(self.dctx, &name.local, argv, focus),
            Some("xs") => functions::call_constructor(&name.local, argv),
            Some(_) => match self.dctx.host.call(name, &argv) {
                Some(r) => r,
                None => Err(Error::unknown_function(format!(
                    "unknown function {}()",
                    name.lexical()
                ))),
            },
        }
    }

    // ---- paths ----------------------------------------------------------------

    fn eval_path(&mut self, root: bool, steps: &[Expr], focus: Option<&Focus>) -> Result<Sequence> {
        let start: Sequence = if root {
            let ctx = Self::context_item(focus)?;
            match ctx {
                Item::Node(n) => Sequence::one(n.doc.root()),
                Item::Atomic(_) => {
                    return Err(Error::type_error("`/` requires a node context item"))
                }
            }
        } else {
            match focus {
                Some(f) => Sequence::one(f.item.clone()),
                None => return Err(Error::dynamic("relative path with absent context item")),
            }
        };
        self.eval_steps(start, steps)
    }

    fn eval_steps(&mut self, mut current: Sequence, steps: &[Expr]) -> Result<Sequence> {
        for (idx, step) in steps.iter().enumerate() {
            let is_last = idx + 1 == steps.len();
            let size = current.len();
            let mut result = Sequence::empty();
            for (i, item) in current.0.iter().enumerate() {
                let f = Focus {
                    item: item.clone(),
                    pos: i + 1,
                    size,
                };
                let part = self.eval(step, Some(&f))?;
                result = result.concat(part);
            }
            let all_nodes = result.0.iter().all(|i| matches!(i, Item::Node(_)));
            if all_nodes {
                result = result.document_order_dedup()?;
            } else if !is_last {
                return Err(Error::type_error(
                    "intermediate path step produced atomic values",
                ));
            } else if result.0.iter().any(|i| matches!(i, Item::Node(_))) {
                return Err(Error::type_error("path step mixes nodes and atomic values"));
            }
            current = result;
        }
        Ok(current)
    }

    fn apply_predicates(&mut self, mut seq: Sequence, predicates: &[Expr]) -> Result<Sequence> {
        for pred in predicates {
            let size = seq.len();
            let mut kept = Vec::new();
            for (i, item) in seq.0.iter().enumerate() {
                let f = Focus {
                    item: item.clone(),
                    pos: i + 1,
                    size,
                };
                let v = self.eval(pred, Some(&f))?;
                // Numeric predicate = positional test.
                let keep = match v.0.as_slice() {
                    [Item::Atomic(a)] if a.is_numeric() => a.to_double() == (i + 1) as f64,
                    _ => v.effective_boolean()?,
                };
                if keep {
                    kept.push(item.clone());
                }
            }
            seq = Sequence(kept);
        }
        Ok(seq)
    }

    // ---- comparisons, arithmetic, sets -----------------------------------------

    fn eval_comparison(
        &mut self,
        op: CompOp,
        left: &Expr,
        right: &Expr,
        focus: Option<&Focus>,
    ) -> Result<Sequence> {
        let l = self.eval(left, focus)?;
        let r = self.eval(right, focus)?;
        use CompOp::*;
        match op {
            GenEq | GenNe | GenLt | GenLe | GenGt | GenGe => {
                let la = l.atomized();
                let ra = r.atomized();
                for a in &la {
                    for b in &ra {
                        if let Some(ord) = a.value_cmp(b) {
                            let hit = match op {
                                GenEq => ord == Ordering::Equal,
                                GenNe => ord != Ordering::Equal,
                                GenLt => ord == Ordering::Less,
                                GenLe => ord != Ordering::Greater,
                                GenGt => ord == Ordering::Greater,
                                GenGe => ord != Ordering::Less,
                                _ => unreachable!(),
                            };
                            if hit {
                                return Ok(Sequence::bool(true));
                            }
                        } else if matches!(op, GenNe) {
                            // Incomparable values are "not equal".
                            return Ok(Sequence::bool(true));
                        }
                    }
                }
                Ok(Sequence::bool(false))
            }
            ValEq | ValNe | ValLt | ValLe | ValGt | ValGe => {
                if l.is_empty() || r.is_empty() {
                    return Ok(Sequence::empty());
                }
                let a = l.exactly_one()?.atomize();
                let b = r.exactly_one()?.atomize();
                let ord = a.value_cmp(&b).ok_or_else(|| {
                    Error::type_error(format!(
                        "cannot compare {} with {}",
                        a.type_name(),
                        b.type_name()
                    ))
                })?;
                let hit = match op {
                    ValEq => ord == Ordering::Equal,
                    ValNe => ord != Ordering::Equal,
                    ValLt => ord == Ordering::Less,
                    ValLe => ord != Ordering::Greater,
                    ValGt => ord == Ordering::Greater,
                    ValGe => ord != Ordering::Less,
                    _ => unreachable!(),
                };
                Ok(Sequence::bool(hit))
            }
            Is | Precedes | Follows => {
                if l.is_empty() || r.is_empty() {
                    return Ok(Sequence::empty());
                }
                let a = l
                    .exactly_one()?
                    .as_node()
                    .ok_or_else(|| Error::type_error("node comparison on atomic value"))?
                    .clone();
                let b = r
                    .exactly_one()?
                    .as_node()
                    .ok_or_else(|| Error::type_error("node comparison on atomic value"))?
                    .clone();
                let hit = match op {
                    Is => a.is_same_node(&b),
                    Precedes => a < b,
                    Follows => a > b,
                    _ => unreachable!(),
                };
                Ok(Sequence::bool(hit))
            }
        }
    }

    fn eval_arith(
        &mut self,
        op: ArithOp,
        left: &Expr,
        right: &Expr,
        focus: Option<&Focus>,
    ) -> Result<Sequence> {
        let l = self.eval(left, focus)?;
        let r = self.eval(right, focus)?;
        if l.is_empty() || r.is_empty() {
            return Ok(Sequence::empty());
        }
        let a = l.exactly_one()?.atomize();
        let b = r.exactly_one()?.atomize();
        // Date/time arithmetic first.
        match (&a, op, &b) {
            (Atomic::DateTime(t), ArithOp::Add, Atomic::Duration(d))
            | (Atomic::Duration(d), ArithOp::Add, Atomic::DateTime(t)) => {
                return Ok(Sequence::one(Atomic::DateTime(t + d)));
            }
            (Atomic::DateTime(t), ArithOp::Sub, Atomic::Duration(d)) => {
                return Ok(Sequence::one(Atomic::DateTime(t - d)));
            }
            (Atomic::DateTime(t1), ArithOp::Sub, Atomic::DateTime(t2)) => {
                return Ok(Sequence::one(Atomic::Duration(t1 - t2)));
            }
            (Atomic::Duration(d1), ArithOp::Add, Atomic::Duration(d2)) => {
                return Ok(Sequence::one(Atomic::Duration(d1 + d2)));
            }
            (Atomic::Duration(d1), ArithOp::Sub, Atomic::Duration(d2)) => {
                return Ok(Sequence::one(Atomic::Duration(d1 - d2)));
            }
            (Atomic::Duration(d), ArithOp::Mul, n) | (n, ArithOp::Mul, Atomic::Duration(d))
                if n.is_numeric() =>
            {
                return Ok(Sequence::one(Atomic::Duration(
                    (*d as f64 * n.to_double()) as i64,
                )));
            }
            _ => {}
        }
        let both_int = matches!(a, Atomic::Int(_)) && matches!(b, Atomic::Int(_));
        let (x, y) = (a.to_double(), b.to_double());
        let result = match op {
            ArithOp::Add => x + y,
            ArithOp::Sub => x - y,
            ArithOp::Mul => x * y,
            ArithOp::Div => {
                if y == 0.0 && both_int {
                    return Err(Error::division_by_zero());
                }
                x / y
            }
            ArithOp::IDiv => {
                if y == 0.0 {
                    return Err(Error::division_by_zero());
                }
                return Ok(Sequence::int((x / y).trunc() as i64));
            }
            ArithOp::Mod => {
                if y == 0.0 {
                    return Err(Error::division_by_zero());
                }
                x % y
            }
        };
        if both_int && !matches!(op, ArithOp::Div) {
            Ok(Sequence::int(result as i64))
        } else {
            Ok(Sequence::one(Atomic::Double(result)))
        }
    }

    fn eval_set(
        &mut self,
        op: SetOp,
        left: &Expr,
        right: &Expr,
        focus: Option<&Focus>,
    ) -> Result<Sequence> {
        let l = self.eval(left, focus)?;
        let r = self.eval(right, focus)?;
        let as_nodes = |s: &Sequence| -> Result<Vec<NodeRef>> {
            s.0.iter()
                .map(|i| {
                    i.as_node()
                        .cloned()
                        .ok_or_else(|| Error::type_error("set operand must be nodes"))
                })
                .collect()
        };
        let ln = as_nodes(&l)?;
        let rn = as_nodes(&r)?;
        // Membership by hashed node identity (doc_seq, id) — the naive
        // per-node scan made intersect/except O(n·m).
        let identity = |n: &NodeRef| (n.doc.doc_seq, n.id);
        let combined: Vec<NodeRef> = match op {
            SetOp::Union => ln.iter().chain(rn.iter()).cloned().collect(),
            SetOp::Intersect => {
                let rset: std::collections::HashSet<_> = rn.iter().map(identity).collect();
                ln.iter()
                    .filter(|n| rset.contains(&identity(n)))
                    .cloned()
                    .collect()
            }
            SetOp::Except => {
                let rset: std::collections::HashSet<_> = rn.iter().map(identity).collect();
                ln.iter()
                    .filter(|n| !rset.contains(&identity(n)))
                    .cloned()
                    .collect()
            }
        };
        Sequence(combined.into_iter().map(Item::Node).collect()).document_order_dedup()
    }

    // ---- FLWOR & quantifiers -----------------------------------------------------

    fn eval_flwor(
        &mut self,
        clauses: &[FlworClause],
        where_: Option<&Expr>,
        order: &[OrderSpec],
        ret: &Expr,
        focus: Option<&Focus>,
    ) -> Result<Sequence> {
        let base_len = self.vars.len();
        if order.is_empty() {
            // No ordering: stream. `where` and `return` run at the leaf of
            // tuple generation, while the bindings are already on the stack
            // — no tuple is ever materialized.
            let mut out = Sequence::empty();
            self.stream_tuples(clauses, 0, focus, &mut |ev| {
                let passed = match where_ {
                    Some(w) => ev.eval(w, focus)?.effective_boolean()?,
                    None => true,
                };
                if passed {
                    out = std::mem::take(&mut out).concat(ev.eval(ret, focus)?);
                }
                Ok(())
            })?;
            debug_assert_eq!(self.vars.len(), base_len);
            return Ok(out);
        }

        // order by: `where` and the order keys also run at the leaf; only
        // surviving tuples snapshot their binding *values* (the names are
        // fixed by the clauses). The return clause then runs per tuple in
        // sorted order, so result and pending-update order match the
        // ordering semantics.
        let names = binding_names(clauses);
        let mut survivors: Vec<(Vec<Sequence>, Vec<Sequence>)> = Vec::new(); // (values, keys)
        self.stream_tuples(clauses, 0, focus, &mut |ev| {
            let passed = match where_ {
                Some(w) => ev.eval(w, focus)?.effective_boolean()?,
                None => true,
            };
            if passed {
                let mut keys = Vec::with_capacity(order.len());
                for spec in order {
                    keys.push(ev.eval(&spec.key, focus)?);
                }
                let values = ev.vars[ev.vars.len() - names.len()..]
                    .iter()
                    .map(|(_, v)| v.clone())
                    .collect();
                survivors.push((values, keys));
            }
            Ok(())
        })?;
        debug_assert_eq!(self.vars.len(), base_len);

        let flags: Vec<(bool, bool)> = order
            .iter()
            .map(|s| (s.descending, s.empty_greatest))
            .collect();
        survivors.sort_by(|(_, ka), (_, kb)| order_cmp(&flags, ka, kb));

        let mut out = Sequence::empty();
        for (values, _) in survivors {
            let n = values.len();
            for (name, v) in names.iter().zip(values) {
                self.vars.push((name.clone(), v));
            }
            let r = self.eval(ret, focus);
            self.vars.truncate(self.vars.len() - n);
            out = out.concat(r?);
        }
        Ok(out)
    }

    /// Depth-first tuple generation; `leaf` runs once per binding tuple
    /// with the bindings pushed on the variable stack.
    fn stream_tuples(
        &mut self,
        clauses: &[FlworClause],
        idx: usize,
        focus: Option<&Focus>,
        leaf: &mut dyn FnMut(&mut Self) -> Result<()>,
    ) -> Result<()> {
        if idx == clauses.len() {
            return leaf(self);
        }
        match &clauses[idx] {
            FlworClause::Let { var, value } => {
                let v = self.eval(value, focus)?;
                self.vars.push((var.clone(), v));
                let r = self.stream_tuples(clauses, idx + 1, focus, leaf);
                self.vars.pop();
                r
            }
            FlworClause::For { var, at, source } => {
                let src = self.eval(source, focus)?;
                for (i, item) in src.0.iter().enumerate() {
                    self.vars.push((var.clone(), Sequence::one(item.clone())));
                    let pushed_at = if let Some(atv) = at {
                        self.vars.push((atv.clone(), Sequence::int(i as i64 + 1)));
                        true
                    } else {
                        false
                    };
                    let r = self.stream_tuples(clauses, idx + 1, focus, leaf);
                    if pushed_at {
                        self.vars.pop();
                    }
                    self.vars.pop();
                    r?;
                }
                Ok(())
            }
        }
    }

    fn eval_quantified(
        &mut self,
        every: bool,
        bindings: &[(String, Expr)],
        satisfies: &Expr,
        focus: Option<&Focus>,
    ) -> Result<bool> {
        self.quantify(every, bindings, 0, satisfies, focus)
    }

    fn quantify(
        &mut self,
        every: bool,
        bindings: &[(String, Expr)],
        idx: usize,
        satisfies: &Expr,
        focus: Option<&Focus>,
    ) -> Result<bool> {
        if idx == bindings.len() {
            return self.eval(satisfies, focus)?.effective_boolean();
        }
        let (var, src_expr) = &bindings[idx];
        let src = self.eval(src_expr, focus)?;
        for item in src.0 {
            self.vars.push((var.clone(), Sequence::one(item)));
            let hit = self.quantify(every, bindings, idx + 1, satisfies, focus);
            self.vars.pop();
            let hit = hit?;
            if every && !hit {
                return Ok(false);
            }
            if !every && hit {
                return Ok(true);
            }
        }
        Ok(every)
    }

    // ---- constructors -----------------------------------------------------------

    fn construct_element(
        &mut self,
        name: QName,
        attrs: &[(QName, Vec<AttrValuePart>)],
        content: &[DirContent],
        focus: Option<&Focus>,
    ) -> Result<NodeRef> {
        let mut eattrs: Vec<(QName, String)> = Vec::new();
        for (an, parts) in attrs {
            let mut value = String::new();
            for p in parts {
                match p {
                    AttrValuePart::Text(t) => value.push_str(t),
                    AttrValuePart::Enclosed(e) => {
                        let v = self.eval(e, focus)?;
                        value.push_str(&atomics_joined(&v));
                    }
                }
            }
            eattrs.push((an.clone(), value));
        }
        // Evaluate content into a flat sequence with XQuery content rules.
        let mut seq = Sequence::empty();
        for c in content {
            match c {
                DirContent::Text(t) => {
                    seq.0.push(Item::Node(text_node(t)));
                }
                DirContent::Enclosed(e) | DirContent::Expr(e) => {
                    let v = self.eval(e, focus)?;
                    seq = seq.concat(v);
                }
            }
        }
        assemble_element(name, &eattrs, seq)
    }

    // ---- updating helpers ---------------------------------------------------------

    fn eval_nodes(&mut self, e: &Expr, focus: Option<&Focus>) -> Result<Vec<NodeRef>> {
        let v = self.eval(e, focus)?;
        v.0.into_iter()
            .map(|i| match i {
                Item::Node(n) => Ok(n),
                Item::Atomic(a) => Ok(text_node(&a.to_str())),
            })
            .collect()
    }

    fn eval_single_node(&mut self, e: &Expr, focus: Option<&Focus>) -> Result<NodeRef> {
        let v = self.eval(e, focus)?;
        match v.exactly_one()? {
            Item::Node(n) => Ok(n.clone()),
            Item::Atomic(_) => Err(Error::type_error("update target must be a node")),
        }
    }
}

/// Assemble an element node from a name, literal attributes, and a
/// content sequence following the XQuery constructor content rules:
/// adjacent atomics are joined with spaces into text nodes; attribute
/// items must precede other content and attach to the element; nodes
/// are deep-copied.
pub(crate) fn assemble_element(
    name: QName,
    attrs: &[(QName, String)],
    content: Sequence,
) -> Result<NodeRef> {
    let mut b = DocBuilder::new();
    b.start(name);
    for (an, av) in attrs {
        b.attr(an.clone(), av.clone());
    }
    let mut has_child = false;
    let mut pending_atomics: Vec<String> = Vec::new();
    let flush = |b: &mut DocBuilder, pending: &mut Vec<String>, has_child: &mut bool| {
        if !pending.is_empty() {
            b.text(pending.join(" "));
            pending.clear();
            *has_child = true;
        }
    };
    for item in content.0 {
        match item {
            Item::Atomic(a) => pending_atomics.push(a.to_str()),
            Item::Node(n) => {
                flush(&mut b, &mut pending_atomics, &mut has_child);
                if n.is_attribute() {
                    if has_child {
                        return Err(Error::type_error(
                            "attribute constructed after element content",
                        ));
                    }
                    if let NodeKind::Attribute(an, av) = n.kind() {
                        b.attr(an.clone(), av.clone());
                    }
                } else {
                    b.copy_node(&n);
                    has_child = true;
                }
            }
        }
    }
    flush(&mut b, &mut pending_atomics, &mut has_child);
    b.end();
    let doc = b.finish();
    Ok(doc.document_element().expect("constructed element"))
}

/// Names introduced by the FLWOR clauses, in stack push order.
fn binding_names(clauses: &[FlworClause]) -> Vec<String> {
    let mut names = Vec::new();
    for c in clauses {
        match c {
            FlworClause::Let { var, .. } => names.push(var.clone()),
            FlworClause::For { var, at, .. } => {
                names.push(var.clone());
                if let Some(atv) = at {
                    names.push(atv.clone());
                }
            }
        }
    }
    names
}

/// Compare two evaluated order-key vectors; `flags[i]` is the i-th key's
/// `(descending, empty_greatest)` pair.
pub(crate) fn order_cmp(flags: &[(bool, bool)], ka: &[Sequence], kb: &[Sequence]) -> Ordering {
    for (i, &(descending, empty_greatest)) in flags.iter().enumerate() {
        let a = ka[i].0.first().map(Item::atomize);
        let b = kb[i].0.first().map(Item::atomize);
        let ord = match (&a, &b) {
            (None, None) => Ordering::Equal,
            (None, Some(_)) => {
                if empty_greatest {
                    Ordering::Greater
                } else {
                    Ordering::Less
                }
            }
            (Some(_), None) => {
                if empty_greatest {
                    Ordering::Less
                } else {
                    Ordering::Greater
                }
            }
            (Some(x), Some(y)) => x.value_cmp(y).unwrap_or(Ordering::Equal),
        };
        let ord = if descending { ord.reverse() } else { ord };
        if ord != Ordering::Equal {
            return ord;
        }
    }
    Ordering::Equal
}

/// Build a standalone text node (holder document).
pub(crate) fn text_node(t: &str) -> NodeRef {
    let mut b = DocBuilder::new();
    b.text(if t.is_empty() { " " } else { t });
    let doc = b.finish();
    doc.root()
        .children()
        .into_iter()
        .next()
        .expect("text child")
}

/// Join the atomized items with single spaces (attribute/text content rule).
pub(crate) fn atomics_joined(seq: &Sequence) -> String {
    seq.0
        .iter()
        .map(|i| i.string_value())
        .collect::<Vec<_>>()
        .join(" ")
}

/// Convert an evaluated sequence into a standalone message document:
/// nodes are deep-copied (elements of documents unwrap), atomics become text.
pub fn sequence_to_document(seq: &Sequence) -> Result<Arc<Document>> {
    let mut b = DocBuilder::new();
    let mut pending: Vec<String> = Vec::new();
    for item in &seq.0 {
        match item {
            Item::Atomic(a) => pending.push(a.to_str()),
            Item::Node(n) => {
                if !pending.is_empty() {
                    b.text(pending.join(" "));
                    pending.clear();
                }
                if n.is_attribute() {
                    return Err(Error::type_error(
                        "cannot enqueue a bare attribute node as a message",
                    ));
                }
                b.copy_node(n);
            }
        }
    }
    if !pending.is_empty() {
        b.text(pending.join(" "));
    }
    Ok(b.finish())
}

pub(crate) fn append_content(b: &mut DocBuilder, seq: &Sequence, has_child: &mut bool) -> Result<()> {
    for item in &seq.0 {
        match item {
            Item::Atomic(a) => {
                b.text(a.to_str());
                *has_child = true;
            }
            Item::Node(n) => {
                b.copy_node(n);
                *has_child = true;
            }
        }
    }
    Ok(())
}

/// Axis traversal with node test filtering.
pub(crate) fn axis_nodes(axis: Axis, node: &NodeRef, test: &NodeTest) -> Sequence {
    let filtered = axis_candidates(axis, node)
        .into_iter()
        .filter(|n| node_test_matches(axis, n, test));
    Sequence(filtered.map(Item::Node).collect())
}

/// Enumerate the axis candidates (before node-test filtering), in the
/// axis's natural delivery order.
pub(crate) fn axis_candidates(axis: Axis, node: &NodeRef) -> Vec<NodeRef> {
    match axis {
        Axis::Child => node.children(),
        Axis::Descendant => node.descendants(),
        Axis::DescendantOrSelf => {
            let mut v = vec![node.clone()];
            v.extend(node.descendants());
            v
        }
        Axis::Attribute => node.attributes(),
        Axis::SelfAxis => vec![node.clone()],
        Axis::Parent => node.parent().into_iter().collect(),
        Axis::Ancestor => node.ancestors(),
        Axis::AncestorOrSelf => {
            let mut v = vec![node.clone()];
            v.extend(node.ancestors());
            v
        }
        Axis::FollowingSibling => node.following_siblings(),
        Axis::PrecedingSibling => node.preceding_siblings(),
    }
}

pub(crate) fn node_test_matches(axis: Axis, node: &NodeRef, test: &NodeTest) -> bool {
    // Namespace declarations are stored as attributes for serialization
    // fidelity but are not addressable via the attribute axis.
    if axis == Axis::Attribute {
        if let Some(q) = node.name() {
            if q.local == "xmlns" || q.local.starts_with("xmlns:") {
                return false;
            }
        }
    }
    match test {
        NodeTest::AnyKind => true,
        NodeTest::Text => node.is_text(),
        NodeTest::Comment => matches!(node.kind(), NodeKind::Comment(_)),
        NodeTest::Document => node.is_document(),
        NodeTest::AnyName => {
            if axis == Axis::Attribute {
                node.is_attribute()
            } else {
                node.is_element()
            }
        }
        NodeTest::Name(q) => {
            let principal_ok = if axis == Axis::Attribute {
                node.is_attribute()
            } else {
                node.is_element()
            };
            principal_ok && node.name().is_some_and(|n| q.matches(n))
        }
        NodeTest::Element(q) => {
            node.is_element()
                && q.as_ref()
                    .is_none_or(|q| node.name().is_some_and(|n| q.matches(n)))
        }
        NodeTest::Attribute(q) => {
            node.is_attribute()
                && q.as_ref()
                    .is_none_or(|q| node.name().is_some_and(|n| q.matches(n)))
        }
        NodeTest::Pi(target) => match node.kind() {
            NodeKind::Pi { target: t, .. } => target.as_ref().is_none_or(|x| x == t),
            _ => false,
        },
    }
}

pub(crate) fn cast_atomic(a: &Atomic, ty: &str) -> Result<Atomic> {
    match ty {
        "xs:string" | "string" => Ok(Atomic::Str(a.to_str())),
        "xs:boolean" | "boolean" => Ok(Atomic::Bool(a.cast_boolean()?)),
        "xs:integer" | "xs:int" | "xs:long" | "integer" => Ok(Atomic::Int(a.cast_integer()?)),
        "xs:double" | "double" => Ok(Atomic::Double(a.to_double())),
        "xs:decimal" | "decimal" => Ok(Atomic::Decimal(a.to_double())),
        "xs:dateTime" | "dateTime" => match a {
            Atomic::DateTime(ms) => Ok(Atomic::DateTime(*ms)),
            other => parse_date_time(&other.to_str())
                .map(Atomic::DateTime)
                .ok_or_else(|| {
                    Error::type_error(format!("cannot cast `{}` to xs:dateTime", other.to_str()))
                }),
        },
        "xs:dayTimeDuration" | "xs:duration" => match a {
            Atomic::Duration(ms) => Ok(Atomic::Duration(*ms)),
            other => parse_duration(&other.to_str())
                .map(Atomic::Duration)
                .ok_or_else(|| {
                    Error::type_error(format!(
                        "cannot cast `{}` to xs:dayTimeDuration",
                        other.to_str()
                    ))
                }),
        },
        "xs:untypedAtomic" => Ok(Atomic::Untyped(a.to_str())),
        other => Err(Error::type_error(format!(
            "unsupported cast target `{other}`"
        ))),
    }
}

/// Public casting entry point used by the Demaq property system (QDL
/// declares property types as `xs:` names).
pub fn cast_to_type(a: &Atomic, ty: &str) -> Result<Atomic> {
    cast_atomic(a, ty)
}
