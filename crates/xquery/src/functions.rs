//! The builtin function library (`fn:` namespace, callable unprefixed) and
//! the `xs:` constructor functions.
//!
//! Divergences from F&O, documented per DESIGN.md: `fn:replace` and
//! `fn:tokenize` take literal (non-regex) patterns; `fn:matches` is
//! substring containment. The paper's listings use none of these.

use crate::context::DynamicContext;
use crate::error::{Error, Result};
use crate::eval::{cast_to_type, Focus};
use crate::value::{Atomic, Item, Sequence};
use std::cmp::Ordering;

/// Dispatch an unprefixed (default `fn:` namespace) function call. Takes
/// the dynamic context (not an evaluator) so both the reference AST
/// interpreter and the lowered-plan evaluator share one dispatch table.
pub fn call_builtin(
    dctx: &DynamicContext,
    name: &str,
    args: Vec<Sequence>,
    focus: Option<&Focus>,
) -> Result<Sequence> {
    let arity = args.len();
    let wrong_arity = |expected: &'static str| Err(Error::arity(name, expected, arity));

    // Helper: the implicit context-item argument for 0-arity string funcs.
    let ctx_arg = |focus: Option<&Focus>| -> Result<Sequence> {
        match focus {
            Some(f) => Ok(Sequence::one(f.item.clone())),
            None => Err(Error::dynamic(format!(
                "fn:{name}() requires a context item"
            ))),
        }
    };
    let arg_or_ctx = |args: &[Sequence], focus: Option<&Focus>| -> Result<Sequence> {
        match args.first() {
            Some(a) => Ok(a.clone()),
            None => ctx_arg(focus),
        }
    };

    match name {
        // ---- boolean ---------------------------------------------------------
        "true" => Ok(Sequence::bool(true)),
        "false" => Ok(Sequence::bool(false)),
        "not" if arity == 1 => Ok(Sequence::bool(!args[0].effective_boolean()?)),
        "boolean" if arity == 1 => Ok(Sequence::bool(args[0].effective_boolean()?)),
        "exists" if arity == 1 => Ok(Sequence::bool(!args[0].is_empty())),
        "empty" if arity == 1 => Ok(Sequence::bool(args[0].is_empty())),
        "not" | "boolean" | "exists" | "empty" => wrong_arity("1"),

        // ---- numeric ----------------------------------------------------------
        "count" if arity == 1 => Ok(Sequence::int(args[0].len() as i64)),
        "count" => wrong_arity("1"),
        "number" if arity <= 1 => {
            let v = arg_or_ctx(&args, focus)?;
            let d = match v.0.as_slice() {
                [] => f64::NAN,
                [item] => item.atomize().to_double(),
                _ => f64::NAN,
            };
            Ok(Sequence::one(Atomic::Double(d)))
        }
        "sum" if (1..=2).contains(&arity) => {
            if args[0].is_empty() {
                return Ok(match args.get(1) {
                    Some(zero) => zero.clone(),
                    None => Sequence::int(0),
                });
            }
            numeric_fold(&args[0], name)
        }
        "avg" if arity == 1 => {
            if args[0].is_empty() {
                return Ok(Sequence::empty());
            }
            let sum = numeric_fold(&args[0], "sum")?;
            let total = sum.exactly_one()?.atomize().to_double();
            Ok(Sequence::one(Atomic::Double(total / args[0].len() as f64)))
        }
        "min" | "max" if arity == 1 => {
            if args[0].is_empty() {
                return Ok(Sequence::empty());
            }
            let atoms = args[0].atomized();
            let mut best = atoms[0].clone();
            for a in &atoms[1..] {
                let ord = a.value_cmp(&best).ok_or_else(|| {
                    Error::type_error(format!("fn:{name} over incomparable values"))
                })?;
                let better = if name == "min" {
                    ord == Ordering::Less
                } else {
                    ord == Ordering::Greater
                };
                if better {
                    best = a.clone();
                }
            }
            Ok(Sequence::one(best))
        }
        "abs" | "floor" | "ceiling" | "round" if arity == 1 => {
            if args[0].is_empty() {
                return Ok(Sequence::empty());
            }
            let a = args[0].exactly_one()?.atomize();
            if let Atomic::Int(i) = a {
                return Ok(Sequence::int(if name == "abs" { i.abs() } else { i }));
            }
            let d = a.to_double();
            let r = match name {
                "abs" => d.abs(),
                "floor" => d.floor(),
                "ceiling" => d.ceil(),
                _ => (d + 0.5).floor(), // XPath round: half away from zero (pos)
            };
            Ok(Sequence::one(Atomic::Double(r)))
        }

        // ---- strings ------------------------------------------------------------
        "string" if arity <= 1 => {
            let v = arg_or_ctx(&args, focus)?;
            Ok(Sequence::str(v.string_value()?))
        }
        "concat" if arity >= 2 => {
            let mut out = String::new();
            for a in &args {
                out.push_str(&a.string_value()?);
            }
            Ok(Sequence::str(out))
        }
        "concat" => wrong_arity("2+"),
        "string-join" if (1..=2).contains(&arity) => {
            let sep = match args.get(1) {
                Some(s) => s.string_value()?,
                None => String::new(),
            };
            let parts: Vec<String> = args[0].0.iter().map(Item::string_value).collect();
            Ok(Sequence::str(parts.join(&sep)))
        }
        "substring" if (2..=3).contains(&arity) => {
            let s = args[0].string_value()?;
            let chars: Vec<char> = s.chars().collect();
            let start = args[1].exactly_one()?.atomize().to_double();
            let len = match args.get(2) {
                Some(l) => l.exactly_one()?.atomize().to_double(),
                None => f64::INFINITY,
            };
            // XPath substring semantics with rounding.
            let from = (start.round() - 1.0).max(0.0) as usize;
            let to = if len.is_infinite() {
                chars.len()
            } else {
                ((start.round() - 1.0 + len.round()).max(0.0) as usize).min(chars.len())
            };
            let out: String = if from >= to {
                String::new()
            } else {
                chars[from..to].iter().collect()
            };
            Ok(Sequence::str(out))
        }
        "string-length" if arity <= 1 => {
            let v = arg_or_ctx(&args, focus)?;
            Ok(Sequence::int(v.string_value()?.chars().count() as i64))
        }
        "contains" if arity == 2 => Ok(Sequence::bool(
            args[0].string_value()?.contains(&args[1].string_value()?),
        )),
        "matches" if arity == 2 => {
            // Divergence: literal containment, not regex (see module docs).
            Ok(Sequence::bool(
                args[0].string_value()?.contains(&args[1].string_value()?),
            ))
        }
        "starts-with" if arity == 2 => Ok(Sequence::bool(
            args[0]
                .string_value()?
                .starts_with(&args[1].string_value()?),
        )),
        "ends-with" if arity == 2 => Ok(Sequence::bool(
            args[0].string_value()?.ends_with(&args[1].string_value()?),
        )),
        "substring-before" if arity == 2 => {
            let s = args[0].string_value()?;
            let p = args[1].string_value()?;
            Ok(Sequence::str(
                s.split_once(&p)
                    .map(|(a, _)| a.to_string())
                    .unwrap_or_default(),
            ))
        }
        "substring-after" if arity == 2 => {
            let s = args[0].string_value()?;
            let p = args[1].string_value()?;
            Ok(Sequence::str(
                s.split_once(&p)
                    .map(|(_, b)| b.to_string())
                    .unwrap_or_default(),
            ))
        }
        "upper-case" if arity == 1 => Ok(Sequence::str(args[0].string_value()?.to_uppercase())),
        "lower-case" if arity == 1 => Ok(Sequence::str(args[0].string_value()?.to_lowercase())),
        "normalize-space" if arity <= 1 => {
            let v = arg_or_ctx(&args, focus)?;
            let s = v.string_value()?;
            Ok(Sequence::str(
                s.split_whitespace().collect::<Vec<_>>().join(" "),
            ))
        }
        "translate" if arity == 3 => {
            let s = args[0].string_value()?;
            let from: Vec<char> = args[1].string_value()?.chars().collect();
            let to: Vec<char> = args[2].string_value()?.chars().collect();
            let out: String = s
                .chars()
                .filter_map(|c| match from.iter().position(|&f| f == c) {
                    Some(i) => to.get(i).copied(),
                    None => Some(c),
                })
                .collect();
            Ok(Sequence::str(out))
        }
        "tokenize" if arity == 2 => {
            // Divergence: separator is a literal string, not a regex.
            let s = args[0].string_value()?;
            let sep = args[1].string_value()?;
            if sep.is_empty() {
                return Err(Error::dynamic("fn:tokenize separator must be non-empty"));
            }
            Ok(s.split(&sep as &str)
                .map(|p| Item::Atomic(Atomic::Str(p.to_string())))
                .collect())
        }
        "replace" if arity == 3 => {
            // Divergence: literal find/replace, not regex.
            let s = args[0].string_value()?;
            let find = args[1].string_value()?;
            let with = args[2].string_value()?;
            if find.is_empty() {
                return Err(Error::dynamic("fn:replace pattern must be non-empty"));
            }
            Ok(Sequence::str(s.replace(&find, &with)))
        }

        // ---- sequences -------------------------------------------------------------
        "position" if arity == 0 => match focus {
            Some(f) => Ok(Sequence::int(f.pos as i64)),
            None => Err(Error::dynamic("fn:position() requires a context")),
        },
        "last" if arity == 0 => match focus {
            Some(f) => Ok(Sequence::int(f.size as i64)),
            None => Err(Error::dynamic("fn:last() requires a context")),
        },
        "data" if arity == 1 => Ok(args[0].atomized().into_iter().map(Item::Atomic).collect()),
        "distinct-values" if arity == 1 => {
            let mut out: Vec<Atomic> = Vec::new();
            for a in args[0].atomized() {
                if !out.iter().any(|x| x.value_cmp(&a) == Some(Ordering::Equal)) {
                    out.push(a);
                }
            }
            Ok(out.into_iter().map(Item::Atomic).collect())
        }
        "reverse" if arity == 1 => {
            let mut v = args[0].0.clone();
            v.reverse();
            Ok(Sequence(v))
        }
        "subsequence" if (2..=3).contains(&arity) => {
            let start = args[1].exactly_one()?.atomize().to_double().round();
            let len = match args.get(2) {
                Some(l) => l.exactly_one()?.atomize().to_double().round(),
                None => f64::INFINITY,
            };
            let out: Vec<Item> = args[0]
                .0
                .iter()
                .enumerate()
                .filter(|(i, _)| {
                    let p = (*i + 1) as f64;
                    p >= start && p < start + len
                })
                .map(|(_, x)| x.clone())
                .collect();
            Ok(Sequence(out))
        }
        "insert-before" if arity == 3 => {
            let pos = (args[1].exactly_one()?.atomize().cast_integer()?.max(1) as usize)
                .min(args[0].len() + 1);
            let mut v = args[0].0.clone();
            let tail = v.split_off(pos - 1);
            v.extend(args[2].0.clone());
            v.extend(tail);
            Ok(Sequence(v))
        }
        "remove" if arity == 2 => {
            let pos = args[1].exactly_one()?.atomize().cast_integer()?;
            Ok(args[0]
                .0
                .iter()
                .enumerate()
                .filter(|(i, _)| (*i + 1) as i64 != pos)
                .map(|(_, x)| x.clone())
                .collect())
        }
        "index-of" if arity == 2 => {
            let probe = args[1].exactly_one()?.atomize();
            Ok(args[0]
                .atomized()
                .into_iter()
                .enumerate()
                .filter(|(_, a)| a.value_cmp(&probe) == Some(Ordering::Equal))
                .map(|(i, _)| Item::Atomic(Atomic::Int(i as i64 + 1)))
                .collect())
        }
        "head" if arity == 1 => Ok(Sequence(args[0].0.first().cloned().into_iter().collect())),
        "tail" if arity == 1 => Ok(Sequence(args[0].0.iter().skip(1).cloned().collect())),
        "zero-or-one" if arity == 1 => {
            if args[0].len() <= 1 {
                Ok(args[0].clone())
            } else {
                Err(Error::type_error("fn:zero-or-one got more than one item"))
            }
        }
        "one-or-more" if arity == 1 => {
            if args[0].is_empty() {
                Err(Error::type_error("fn:one-or-more got an empty sequence"))
            } else {
                Ok(args[0].clone())
            }
        }
        "exactly-one" if arity == 1 => {
            if args[0].len() == 1 {
                Ok(args[0].clone())
            } else {
                Err(Error::type_error("fn:exactly-one needs exactly one item"))
            }
        }
        "deep-equal" if arity == 2 => {
            if args[0].len() != args[1].len() {
                return Ok(Sequence::bool(false));
            }
            let eq = args[0]
                .0
                .iter()
                .zip(args[1].0.iter())
                .all(|(a, b)| match (a, b) {
                    (Item::Node(x), Item::Node(y)) => x.deep_equal(y),
                    (Item::Atomic(x), Item::Atomic(y)) => x.value_cmp(y) == Some(Ordering::Equal),
                    _ => false,
                });
            Ok(Sequence::bool(eq))
        }

        // ---- nodes --------------------------------------------------------------
        "name" | "local-name" if arity <= 1 => {
            let v = arg_or_ctx(&args, focus)?;
            let s = match v.0.first() {
                Some(Item::Node(n)) => match n.name() {
                    Some(q) => {
                        if name == "name" {
                            q.lexical()
                        } else {
                            q.local.clone()
                        }
                    }
                    None => String::new(),
                },
                Some(Item::Atomic(_)) => {
                    return Err(Error::type_error(format!("fn:{name} on an atomic value")))
                }
                None => String::new(),
            };
            Ok(Sequence::str(s))
        }
        "root" if arity <= 1 => {
            let v = arg_or_ctx(&args, focus)?;
            match v.0.first() {
                Some(Item::Node(n)) => Ok(Sequence::one(n.doc.root())),
                Some(Item::Atomic(_)) => Err(Error::type_error("fn:root on an atomic value")),
                None => Ok(Sequence::empty()),
            }
        }

        // ---- environment ------------------------------------------------------------
        "collection" if arity == 1 => {
            let n = args[0].string_value()?;
            dctx.host.collection(&n)
        }
        "doc" if arity == 1 => {
            let u = args[0].string_value()?;
            dctx.host.doc(&u)
        }
        "current-dateTime" if arity == 0 => Ok(Sequence::one(Atomic::DateTime(
            dctx.host.current_date_time_ms(),
        ))),

        other => Err(Error::unknown_function(format!(
            "unknown function fn:{other}#{arity}"
        ))),
    }
}

fn numeric_fold(seq: &Sequence, name: &str) -> Result<Sequence> {
    let atoms = seq.atomized();
    let all_int = atoms.iter().all(|a| matches!(a, Atomic::Int(_)));
    if all_int {
        let mut acc: i64 = 0;
        for a in &atoms {
            acc = acc
                .checked_add(a.cast_integer()?)
                .ok_or_else(|| Error::dynamic("integer overflow in fn:sum"))?;
        }
        return Ok(Sequence::int(acc));
    }
    let mut acc = 0.0;
    for a in &atoms {
        let d = a.to_double();
        if d.is_nan() {
            return Err(Error::type_error(format!(
                "fn:{name} over non-numeric values"
            )));
        }
        acc += d;
    }
    Ok(Sequence::one(Atomic::Double(acc)))
}

/// `xs:` constructor functions: `xs:integer("42")`, `xs:boolean(1)`, ….
pub fn call_constructor(local: &str, args: Vec<Sequence>) -> Result<Sequence> {
    if args.len() != 1 {
        return Err(Error::arity(&format!("xs:{local}"), "1", args.len()));
    }
    if args[0].is_empty() {
        return Ok(Sequence::empty());
    }
    let a = args[0].exactly_one()?.atomize();
    let ty = format!("xs:{local}");
    Ok(Sequence::one(cast_to_type(&a, &ty)?))
}

#[cfg(test)]
mod tests {
    use crate::eval_query;
    use crate::value::format_double;

    fn q(query: &str) -> String {
        let doc = demaq_xml::parse("<root/>").unwrap();
        eval_query(query, &doc.root()).unwrap().to_string()
    }

    fn q_err(query: &str) -> bool {
        let doc = demaq_xml::parse("<root/>").unwrap();
        eval_query(query, &doc.root()).is_err()
    }

    #[test]
    fn boolean_functions() {
        assert_eq!(q("not(true())"), "false");
        assert_eq!(q("boolean('x')"), "true");
        assert_eq!(q("exists(())"), "false");
        assert_eq!(q("empty(())"), "true");
        assert_eq!(q("exists((1,2))"), "true");
    }

    #[test]
    fn numeric_functions() {
        assert_eq!(q("count((1,2,3))"), "3");
        assert_eq!(q("sum((1,2,3))"), "6");
        assert_eq!(q("sum(())"), "0");
        assert_eq!(q("avg((2,4))"), "3");
        assert_eq!(q("min((3,1,2))"), "1");
        assert_eq!(q("max(('a','c','b'))"), "c");
        assert_eq!(q("abs(-4)"), "4");
        assert_eq!(q("floor(3.7)"), "3");
        assert_eq!(q("ceiling(3.2)"), "4");
        assert_eq!(q("round(2.5)"), "3");
        assert_eq!(q("number('5.5')"), "5.5");
        assert_eq!(q("string(number('zzz'))"), "NaN");
    }

    #[test]
    fn string_functions() {
        assert_eq!(q("concat('a','b','c')"), "abc");
        assert_eq!(q("string-join(('a','b'), '-')"), "a-b");
        assert_eq!(q("substring('hello', 2)"), "ello");
        assert_eq!(q("substring('hello', 2, 3)"), "ell");
        assert_eq!(q("string-length('grüße')"), "5");
        assert_eq!(q("contains('haystack', 'stack')"), "true");
        assert_eq!(q("starts-with('abc','ab')"), "true");
        assert_eq!(q("ends-with('abc','bc')"), "true");
        assert_eq!(q("substring-before('a=b','=')"), "a");
        assert_eq!(q("substring-after('a=b','=')"), "b");
        assert_eq!(q("upper-case('abc')"), "ABC");
        assert_eq!(q("lower-case('ABC')"), "abc");
        assert_eq!(q("normalize-space('  a   b ')"), "a b");
        assert_eq!(q("translate('abcabc','ab','BA')"), "BAcBAc");
        assert_eq!(q("translate('abc','b','')"), "ac");
        assert_eq!(q("string-join(tokenize('a,b,c', ','), '|')"), "a|b|c");
        assert_eq!(q("replace('aXbXc','X','-')"), "a-b-c");
    }

    #[test]
    fn sequence_functions() {
        assert_eq!(q("string-join(distinct-values(('a','b','a')), ',')"), "a,b");
        assert_eq!(q("string-join(reverse(('1','2','3')), '')"), "321");
        assert_eq!(
            q("string-join(subsequence(('a','b','c','d'), 2, 2), '')"),
            "bc"
        );
        assert_eq!(
            q("string-join(insert-before(('a','c'), 2, 'b'), '')"),
            "abc"
        );
        assert_eq!(q("string-join(remove(('a','b','c'), 2), '')"), "ac");
        assert_eq!(q("index-of((10, 20, 10), 10)"), "1 3");
        assert_eq!(q("head((7,8,9))"), "7");
        assert_eq!(q("string-join(tail(('a','b','c')), '')"), "bc");
        assert!(q_err("exactly-one((1,2))"));
        assert!(q_err("zero-or-one((1,2))"));
        assert!(q_err("one-or-more(())"));
        assert_eq!(q("deep-equal((1,2),(1,2))"), "true");
    }

    #[test]
    fn xs_constructors() {
        assert_eq!(q("xs:integer('42') + 1"), "43");
        assert_eq!(q("xs:boolean('1')"), "true");
        assert_eq!(q("xs:string(3.5)"), "3.5");
        assert_eq!(q("string(xs:double('2'))"), "2");
        assert!(q_err("xs:integer('nope')"));
    }

    #[test]
    fn unknown_function_is_static_error() {
        assert!(q_err("fn:bogus()"));
        assert!(q_err("qs:message()")); // no host registered here
    }

    #[test]
    fn double_format_is_xpathish() {
        assert_eq!(format_double(2.0), "2");
    }
}
