//! Hand-rolled lexer for the XQuery/QML grammar.
//!
//! The lexer is deliberately parser-driven: `peek()` never commits input, so
//! the parser can drop the lookahead and switch to raw character scanning
//! when it recognizes a direct element constructor (`<name …>…</name>`),
//! whose interior follows XML rather than XQuery token rules.

use crate::error::{Error, Result};

/// A single token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    Eof,
    /// A (possibly prefixed) name: `foo`, `qs:queue`, `xs:string`.
    Name(String),
    StringLit(String),
    IntLit(i64),
    DoubleLit(f64),
    /// Punctuation / operators, e.g. `(`, `:=`, `//`, `<=`.
    Sym(&'static str),
}

impl Tok {
    /// The name payload, if this is a name token.
    pub fn as_name(&self) -> Option<&str> {
        match self {
            Tok::Name(n) => Some(n),
            _ => None,
        }
    }
}

/// Lexer over a query string.
pub struct Lexer {
    chars: Vec<char>,
    /// Index of the next unconsumed character.
    pos: usize,
    /// Cached lookahead token and the position just past it.
    peeked: Option<(Tok, usize)>,
}

impl Lexer {
    pub fn new(input: &str) -> Lexer {
        Lexer {
            chars: input.chars().collect(),
            pos: 0,
            peeked: None,
        }
    }

    /// Current raw position (used for error reporting and constructor mode).
    pub fn raw_pos(&self) -> usize {
        self.pos
    }

    /// 1-based line/column of a raw position, for error messages.
    pub fn line_col(&self, pos: usize) -> (u32, u32) {
        let (mut line, mut col) = (1u32, 1u32);
        for &c in self.chars.iter().take(pos.min(self.chars.len())) {
            if c == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        (line, col)
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T> {
        let (line, col) = self.line_col(self.pos);
        Err(Error::static_error(format!(
            "{} (at {}:{})",
            msg.into(),
            line,
            col
        )))
    }

    /// Drop any cached lookahead (before raw-mode scanning).
    pub fn clear_peek(&mut self) {
        self.peeked = None;
    }

    /// Reposition the scanner (used by the parser's speculative lookahead).
    pub fn rewind(&mut self, pos: usize) {
        self.pos = pos;
        self.peeked = None;
    }

    // ---- raw character interface (direct constructors) --------------------

    pub fn raw_peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    pub fn raw_peek_at(&self, off: usize) -> Option<char> {
        self.chars.get(self.pos + off).copied()
    }

    pub fn raw_bump(&mut self) -> Option<char> {
        debug_assert!(self.peeked.is_none(), "raw scan with live lookahead");
        let c = self.raw_peek()?;
        self.pos += 1;
        Some(c)
    }

    pub fn raw_eat(&mut self, s: &str) -> bool {
        let sc: Vec<char> = s.chars().collect();
        if self.chars[self.pos.min(self.chars.len())..].starts_with(&sc) {
            self.pos += sc.len();
            self.peeked = None;
            true
        } else {
            false
        }
    }

    pub fn raw_starts_with(&self, s: &str) -> bool {
        let sc: Vec<char> = s.chars().collect();
        self.chars[self.pos.min(self.chars.len())..].starts_with(&sc)
    }

    /// Skip XML-ish whitespace in raw mode.
    pub fn raw_skip_ws(&mut self) {
        while matches!(self.raw_peek(), Some(' ' | '\t' | '\r' | '\n')) {
            self.pos += 1;
        }
    }

    /// Read an XML name in raw mode.
    pub fn raw_name(&mut self) -> Result<String> {
        let start = self.pos;
        while let Some(c) = self.raw_peek() {
            let ok = if self.pos == start {
                c.is_alphabetic() || c == '_'
            } else {
                c.is_alphanumeric() || matches!(c, '_' | '-' | '.' | ':')
            };
            if !ok {
                break;
            }
            self.pos += 1;
        }
        if self.pos == start {
            return self.err("expected an XML name");
        }
        Ok(self.chars[start..self.pos].iter().collect())
    }

    // ---- token interface ---------------------------------------------------

    /// Skip whitespace and (nested) `(: … :)` comments.
    fn skip_trivia(&self, mut at: usize) -> Result<usize> {
        loop {
            while matches!(self.chars.get(at), Some(' ' | '\t' | '\r' | '\n')) {
                at += 1;
            }
            if self.chars.get(at) == Some(&'(') && self.chars.get(at + 1) == Some(&':') {
                let mut depth = 1;
                at += 2;
                while depth > 0 {
                    match (self.chars.get(at), self.chars.get(at + 1)) {
                        (Some('('), Some(':')) => {
                            depth += 1;
                            at += 2;
                        }
                        (Some(':'), Some(')')) => {
                            depth -= 1;
                            at += 2;
                        }
                        (Some(_), _) => at += 1,
                        (None, _) => return self.err("unterminated comment"),
                    }
                }
            } else {
                return Ok(at);
            }
        }
    }

    /// Look at the next token without consuming input.
    pub fn peek(&mut self) -> Result<Tok> {
        if let Some((t, _)) = &self.peeked {
            return Ok(t.clone());
        }
        let (tok, end) = self.lex_from(self.pos)?;
        self.peeked = Some((tok.clone(), end));
        Ok(tok)
    }

    /// Consume and return the next token.
    pub fn next_tok(&mut self) -> Result<Tok> {
        if let Some((t, end)) = self.peeked.take() {
            self.pos = end;
            return Ok(t);
        }
        let (tok, end) = self.lex_from(self.pos)?;
        self.pos = end;
        Ok(tok)
    }

    /// True when the next token is the given symbol.
    pub fn at_sym(&mut self, s: &str) -> bool {
        matches!(self.peek(), Ok(Tok::Sym(x)) if x == s)
    }

    /// True when the next token is the given (keyword) name.
    pub fn at_name(&mut self, s: &str) -> bool {
        matches!(self.peek(), Ok(Tok::Name(x)) if x == s)
    }

    /// Consume the next token if it is the given symbol.
    pub fn eat_sym(&mut self, s: &str) -> bool {
        if self.at_sym(s) {
            let _ = self.next_tok();
            true
        } else {
            false
        }
    }

    /// Consume the next token if it is the given name.
    pub fn eat_name(&mut self, s: &str) -> bool {
        if self.at_name(s) {
            let _ = self.next_tok();
            true
        } else {
            false
        }
    }

    fn lex_from(&self, start: usize) -> Result<(Tok, usize)> {
        let mut lexer_view = LexView {
            chars: &self.chars,
            pos: start,
        };
        // We need trivia skipping that can error; reuse self.skip_trivia.
        let at = self.skip_trivia(start)?;
        lexer_view.pos = at;
        lexer_view.lex()
    }
}

struct LexView<'a> {
    chars: &'a [char],
    pos: usize,
}

impl<'a> LexView<'a> {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek_at(&self, off: usize) -> Option<char> {
        self.chars.get(self.pos + off).copied()
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T> {
        Err(Error::static_error(msg.into()))
    }

    fn lex(&mut self) -> Result<(Tok, usize)> {
        let Some(c) = self.peek() else {
            return Ok((Tok::Eof, self.pos));
        };
        match c {
            '"' | '\'' => self.lex_string(c),
            c if c.is_ascii_digit() => self.lex_number(),
            '.' if self.peek_at(1).is_some_and(|d| d.is_ascii_digit()) => self.lex_number(),
            c if c.is_alphabetic() || c == '_' => self.lex_name(),
            _ => self.lex_symbol(),
        }
    }

    fn lex_string(&mut self, quote: char) -> Result<(Tok, usize)> {
        self.pos += 1;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated string literal"),
                Some(q) if q == quote => {
                    // Doubled quote is an escape.
                    if self.peek_at(1) == Some(quote) {
                        out.push(quote);
                        self.pos += 2;
                    } else {
                        self.pos += 1;
                        return Ok((Tok::StringLit(out), self.pos));
                    }
                }
                Some(ch) => {
                    out.push(ch);
                    self.pos += 1;
                }
            }
        }
    }

    fn lex_number(&mut self) -> Result<(Tok, usize)> {
        let start = self.pos;
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_double = false;
        if self.peek() == Some('.') && self.peek_at(1).is_some_and(|c| c.is_ascii_digit()) {
            is_double = true;
            self.pos += 1;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
        } else if self.peek() == Some('.') && !self.peek_at(1).is_some_and(|c| c.is_alphabetic()) {
            // `1.` form
            is_double = true;
            self.pos += 1;
        }
        if matches!(self.peek(), Some('e' | 'E')) {
            let mut look = self.pos + 1;
            if matches!(self.chars.get(look), Some('+' | '-')) {
                look += 1;
            }
            if self.chars.get(look).is_some_and(|c| c.is_ascii_digit()) {
                is_double = true;
                self.pos = look;
                while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                    self.pos += 1;
                }
            }
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        if is_double {
            match text.parse::<f64>() {
                Ok(d) => Ok((Tok::DoubleLit(d), self.pos)),
                Err(_) => self.err(format!("invalid number `{text}`")),
            }
        } else {
            match text.parse::<i64>() {
                Ok(i) => Ok((Tok::IntLit(i), self.pos)),
                Err(_) => self.err(format!("integer literal `{text}` out of range")),
            }
        }
    }

    fn lex_name(&mut self) -> Result<(Tok, usize)> {
        let start = self.pos;
        let mut seen_colon = false;
        while let Some(c) = self.peek() {
            let ok = if self.pos == start {
                c.is_alphabetic() || c == '_'
            } else if c == ':' {
                // A name may contain exactly one ':' forming a QName, and
                // only when followed by a name start char. This keeps `a :=`
                // and `q:name` both lexing correctly.
                !seen_colon
                    && self
                        .peek_at(1)
                        .is_some_and(|d| d.is_alphabetic() || d == '_')
            } else {
                c.is_alphanumeric() || matches!(c, '_' | '-' | '.')
            };
            if !ok {
                break;
            }
            if c == ':' {
                seen_colon = true;
            }
            self.pos += 1;
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        Ok((Tok::Name(text), self.pos))
    }

    fn lex_symbol(&mut self) -> Result<(Tok, usize)> {
        const TWO: &[&str] = &["//", "::", ":=", "!=", "<=", ">=", "<<", ">>", "..", "||"];
        const ONE: &[&str] = &[
            "(", ")", "[", "]", "{", "}", ",", ";", "$", "@", "/", "=", "<", ">", "+", "-", "*",
            "|", ".", "?",
        ];
        let c0 = self.peek().unwrap();
        let c1 = self.peek_at(1);
        if let Some(c1) = c1 {
            let two: String = [c0, c1].iter().collect();
            if let Some(&s) = TWO.iter().find(|&&s| s == two) {
                self.pos += 2;
                return Ok((Tok::Sym(s), self.pos));
            }
        }
        let one = c0.to_string();
        if let Some(&s) = ONE.iter().find(|&&s| s == one) {
            self.pos += 1;
            return Ok((Tok::Sym(s), self.pos));
        }
        self.err(format!("unexpected character `{c0}`"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_tokens(s: &str) -> Vec<Tok> {
        let mut lx = Lexer::new(s);
        let mut out = Vec::new();
        loop {
            let t = lx.next_tok().unwrap();
            if t == Tok::Eof {
                return out;
            }
            out.push(t);
        }
    }

    #[test]
    fn basic_tokens() {
        let toks = all_tokens(r#"let $x := 3.5 + count(//item) return "done""#);
        assert_eq!(
            toks,
            vec![
                Tok::Name("let".into()),
                Tok::Sym("$"),
                Tok::Name("x".into()),
                Tok::Sym(":="),
                Tok::DoubleLit(3.5),
                Tok::Sym("+"),
                Tok::Name("count".into()),
                Tok::Sym("("),
                Tok::Sym("//"),
                Tok::Name("item".into()),
                Tok::Sym(")"),
                Tok::Name("return".into()),
                Tok::StringLit("done".into()),
            ]
        );
    }

    #[test]
    fn qnames_and_assignment() {
        let toks = all_tokens("qs:queue xs:string a:=1");
        assert_eq!(
            toks,
            vec![
                Tok::Name("qs:queue".into()),
                Tok::Name("xs:string".into()),
                Tok::Name("a".into()),
                Tok::Sym(":="),
                Tok::IntLit(1),
            ]
        );
    }

    #[test]
    fn comments_skipped_and_nested() {
        let toks = all_tokens("1 (: outer (: inner :) still :) 2");
        assert_eq!(toks, vec![Tok::IntLit(1), Tok::IntLit(2)]);
    }

    #[test]
    fn string_escapes() {
        let toks = all_tokens(r#""he said ""hi""" 'it''s'"#);
        assert_eq!(
            toks,
            vec![
                Tok::StringLit("he said \"hi\"".into()),
                Tok::StringLit("it's".into())
            ]
        );
    }

    #[test]
    fn dots_and_ranges() {
        assert_eq!(
            all_tokens(". .. 1 to 3"),
            vec![
                Tok::Sym("."),
                Tok::Sym(".."),
                Tok::IntLit(1),
                Tok::Name("to".into()),
                Tok::IntLit(3)
            ]
        );
    }

    #[test]
    fn hyphenated_names() {
        // XQuery treats `a-b` as one QName; subtraction needs spaces.
        assert_eq!(
            all_tokens("starts-with"),
            vec![Tok::Name("starts-with".into())]
        );
        assert_eq!(
            all_tokens("a - b"),
            vec![Tok::Name("a".into()), Tok::Sym("-"), Tok::Name("b".into())]
        );
    }

    #[test]
    fn peek_does_not_consume() {
        let mut lx = Lexer::new("foo bar");
        assert_eq!(lx.peek().unwrap(), Tok::Name("foo".into()));
        assert_eq!(lx.peek().unwrap(), Tok::Name("foo".into()));
        assert_eq!(lx.next_tok().unwrap(), Tok::Name("foo".into()));
        assert_eq!(lx.next_tok().unwrap(), Tok::Name("bar".into()));
    }

    #[test]
    fn raw_mode_after_clear() {
        let mut lx = Lexer::new("<a>text</a>");
        assert_eq!(lx.next_tok().unwrap(), Tok::Sym("<"));
        lx.clear_peek();
        assert_eq!(lx.raw_name().unwrap(), "a");
        assert!(lx.raw_eat(">"));
        assert_eq!(lx.raw_bump(), Some('t'));
    }

    #[test]
    fn unterminated_string_errors() {
        let mut lx = Lexer::new("\"abc");
        assert!(lx.next_tok().is_err());
    }

    #[test]
    fn numbers() {
        assert_eq!(
            all_tokens("42 4.25 1e3 2.5E-2"),
            vec![
                Tok::IntLit(42),
                Tok::DoubleLit(4.25),
                Tok::DoubleLit(1000.0),
                Tok::DoubleLit(0.025),
            ]
        );
    }
}
