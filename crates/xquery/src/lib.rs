//! # demaq-xquery
//!
//! A from-scratch XQuery engine for the Demaq reproduction, covering the
//! fragment of XQuery 1.0 + XQuery Update Facility that the Demaq rule
//! language (QML) is built on (paper Sec. 3.2):
//!
//! * FLWOR (`for`/`let`/`where`/`order by`/`return`), quantified
//!   expressions, conditionals,
//! * path expressions with predicates over the `demaq-xml` tree,
//! * direct and computed node constructors,
//! * general/value/node comparisons, arithmetic, sequence operations,
//! * a library of `fn:` builtins plus host-registered extension functions
//!   (the engine registers `qs:message()`, `qs:queue()`, `qs:slice()`, …),
//! * *updating expressions* producing pending update lists, extended with
//!   the Demaq queue primitives `do enqueue … into … (with … value …)*`
//!   and `do reset`, alongside the XQUF tree primitives (`do insert`,
//!   `do delete`, `do replace`, `do rename`) applied copy-on-write.
//!
//! Evaluation is snapshot-semantic: expression evaluation never mutates
//! state; updates accumulate on a pending list applied after evaluation,
//! exactly as the paper's execution model requires.

pub mod aggregate;
pub mod ast;
pub mod context;
pub mod error;
pub mod eval;
pub mod functions;
pub mod lexer;
pub mod parser;
pub mod plan;
pub mod update;
pub mod value;

pub use aggregate::{recognize_aggregate, AggAcc, AggOp, AggSource, AggregateSpec};
pub use ast::Expr;
pub use context::{DynamicContext, HostFunctions, NoHost, StaticContext};
pub use error::{Error, Result};
pub use eval::Evaluator;
pub use parser::{parse_expr, parse_expr_prefix};
pub use plan::{fold_boolean, lower, Plan, PlanEvaluator};
pub use update::{apply_tree_updates, Update};
pub use value::{Atomic, Item, Sequence};

use demaq_xml::NodeRef;
use std::sync::Arc;

/// One-stop evaluation of a query string against a context node.
///
/// ```
/// use demaq_xquery::eval_query;
/// let doc = demaq_xml::parse("<order><id>7</id></order>").unwrap();
/// let seq = eval_query("//id + 1", &doc.root()).unwrap();
/// assert_eq!(seq.to_string(), "8");
/// ```
pub fn eval_query(query: &str, context: &NodeRef) -> Result<Sequence> {
    let expr = parse_expr(query)?;
    let sctx = StaticContext::default();
    let dctx = DynamicContext::new(Arc::new(NoHost));
    let mut ev = Evaluator::new(&sctx, &dctx);
    ev.eval_with_context(&expr, context.clone())
}
