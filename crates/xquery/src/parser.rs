//! Recursive-descent parser for the XQuery/QML expression grammar.
//!
//! Follows XQuery 1.0 operator precedence. Direct element constructors are
//! parsed in raw character mode (see [`crate::lexer`]); everything else is
//! token-driven. The QML extensions (`do enqueue`, `do reset`) and the
//! XQUF `do` primitives are parsed as updating expressions.

use crate::ast::*;
use crate::error::{Error, Result};
use crate::lexer::{Lexer, Tok};
use demaq_xml::QName;

/// Parse a complete expression (must consume all input).
pub fn parse_expr(input: &str) -> Result<Expr> {
    let mut p = Parser {
        lx: Lexer::new(input),
        depth: 0,
    };
    let e = p.expr()?;
    match p.lx.peek()? {
        Tok::Eof => Ok(e),
        t => {
            let (line, col) = p.lx.line_col(p.lx.raw_pos());
            Err(Error::static_error(format!(
                "unexpected trailing token {t:?} at {line}:{col}"
            )))
        }
    }
}

/// Parse a single `ExprSingle` from the start of `input`, returning the
/// expression and the number of characters consumed. Used by the QDL
/// parser, which embeds expressions inside `create property … value Expr`
/// and `create rule … CondExpr` statements.
pub fn parse_expr_prefix(input: &str) -> Result<(Expr, usize)> {
    let mut p = Parser {
        lx: Lexer::new(input),
        depth: 0,
    };
    let e = p.expr_single()?;
    // Ensure the lookahead is not counted as consumed.
    let _ = p.lx.peek();
    Ok((e, p.lx.raw_pos()))
}

/// Reserved function-like names that are kind tests, not function calls.
const KIND_TESTS: &[&str] = &[
    "node",
    "text",
    "comment",
    "element",
    "attribute",
    "processing-instruction",
    "document-node",
];

/// Keywords that cannot start a path step when followed by their trigger
/// token (disambiguation is done with explicit lookahead in `expr_single`).
struct Parser {
    lx: Lexer,
    depth: u32,
}

/// Recursion guard: queries nested deeper than this are rejected instead of
/// overflowing the stack (rule programs are small; this is a safety net
/// against adversarial messages containing pathological queries).
const MAX_PARSE_DEPTH: u32 = 40;

impl Parser {
    fn err<T>(&mut self, msg: impl Into<String>) -> Result<T> {
        let (line, col) = self.lx.line_col(self.lx.raw_pos());
        Err(Error::static_error(format!(
            "{} (at {}:{})",
            msg.into(),
            line,
            col
        )))
    }

    fn expect_sym(&mut self, s: &str) -> Result<()> {
        if self.lx.eat_sym(s) {
            Ok(())
        } else {
            let t = self.lx.peek()?;
            self.err(format!("expected `{s}`, found {t:?}"))
        }
    }

    fn expect_name(&mut self, s: &str) -> Result<()> {
        if self.lx.eat_name(s) {
            Ok(())
        } else {
            let t = self.lx.peek()?;
            self.err(format!("expected `{s}`, found {t:?}"))
        }
    }

    fn name_token(&mut self) -> Result<String> {
        match self.lx.next_tok()? {
            Tok::Name(n) => Ok(n),
            t => self.err(format!("expected a name, found {t:?}")),
        }
    }

    fn qname(&mut self) -> Result<QName> {
        let n = self.name_token()?;
        QName::parse_lexical(&n).ok_or_else(|| Error::static_error(format!("invalid QName `{n}`")))
    }

    fn var_name(&mut self) -> Result<String> {
        self.expect_sym("$")?;
        self.name_token()
    }

    // ---- top level ---------------------------------------------------------

    /// Expr ::= ExprSingle ("," ExprSingle)*
    pub fn expr(&mut self) -> Result<Expr> {
        let first = self.expr_single()?;
        if !self.lx.at_sym(",") {
            return Ok(first);
        }
        let mut items = vec![first];
        while self.lx.eat_sym(",") {
            items.push(self.expr_single()?);
        }
        Ok(Expr::Sequence(items))
    }

    fn expr_single(&mut self) -> Result<Expr> {
        self.depth += 1;
        if self.depth > MAX_PARSE_DEPTH {
            self.depth -= 1;
            return Err(Error::static_error("expression nesting too deep"));
        }
        let r = self.expr_single_inner();
        self.depth -= 1;
        r
    }

    fn expr_single_inner(&mut self) -> Result<Expr> {
        if self.at_kw_then("for", "$") || self.at_kw_then("let", "$") {
            return self.flwor();
        }
        if self.at_kw_then("some", "$") || self.at_kw_then("every", "$") {
            return self.quantified();
        }
        if self.at_kw_then("if", "(") {
            return self.if_expr();
        }
        if self.at_do_keyword() {
            return self.updating_expr();
        }
        self.or_expr()
    }

    /// Lookahead: keyword name followed by a specific symbol.
    fn at_kw_then(&mut self, kw: &str, sym: &str) -> bool {
        if !self.lx.at_name(kw) {
            return false;
        }
        // Tentatively consume and restore via re-lexing: cheap because the
        // lexer's peek is positionless. We clone-position manually.
        let save = self.save();
        let _ = self.lx.next_tok();
        let hit = self.lx.at_sym(sym);
        self.restore(save);
        hit
    }

    fn at_do_keyword(&mut self) -> bool {
        if !self.lx.at_name("do") {
            return false;
        }
        let save = self.save();
        let _ = self.lx.next_tok();
        let hit = ["enqueue", "reset", "insert", "delete", "replace", "rename"]
            .iter()
            .any(|k| self.lx.at_name(k));
        self.restore(save);
        hit
    }

    fn save(&self) -> usize {
        self.lx.raw_pos()
    }

    fn restore(&mut self, pos: usize) {
        self.lx.clear_peek();
        self.lx.rewind(pos);
    }

    // ---- FLWOR --------------------------------------------------------------

    fn flwor(&mut self) -> Result<Expr> {
        let mut clauses = Vec::new();
        loop {
            if self.at_kw_then("for", "$") {
                self.expect_name("for")?;
                loop {
                    let var = self.var_name()?;
                    let at = if self.lx.eat_name("at") {
                        Some(self.var_name()?)
                    } else {
                        None
                    };
                    self.expect_name("in")?;
                    let source = self.expr_single()?;
                    clauses.push(FlworClause::For { var, at, source });
                    if !self.lx.eat_sym(",") {
                        break;
                    }
                }
            } else if self.at_kw_then("let", "$") {
                self.expect_name("let")?;
                loop {
                    let var = self.var_name()?;
                    self.expect_sym(":=")?;
                    let value = self.expr_single()?;
                    clauses.push(FlworClause::Let { var, value });
                    if !self.lx.eat_sym(",") {
                        break;
                    }
                }
            } else {
                break;
            }
        }
        let where_ = if self.lx.eat_name("where") {
            Some(Box::new(self.expr_single()?))
        } else {
            None
        };
        let mut order = Vec::new();
        let stable = self.at_kw_then2("stable", "order");
        if stable {
            self.expect_name("stable")?;
        }
        if stable || self.at_kw_then2("order", "by") {
            self.expect_name("order")?;
            self.expect_name("by")?;
            loop {
                let key = self.expr_single()?;
                let descending = if self.lx.eat_name("descending") {
                    true
                } else {
                    self.lx.eat_name("ascending");
                    false
                };
                let mut empty_greatest = false;
                if self.lx.eat_name("empty") {
                    if self.lx.eat_name("greatest") {
                        empty_greatest = true;
                    } else {
                        self.expect_name("least")?;
                    }
                }
                order.push(OrderSpec {
                    key,
                    descending,
                    empty_greatest,
                });
                if !self.lx.eat_sym(",") {
                    break;
                }
            }
        }
        self.expect_name("return")?;
        let ret = Box::new(self.expr_single()?);
        Ok(Expr::Flwor {
            clauses,
            where_,
            order,
            ret,
        })
    }

    fn quantified(&mut self) -> Result<Expr> {
        let every = self.lx.eat_name("every");
        if !every {
            self.expect_name("some")?;
        }
        let mut bindings = Vec::new();
        loop {
            let var = self.var_name()?;
            self.expect_name("in")?;
            let source = self.expr_single()?;
            bindings.push((var, source));
            if !self.lx.eat_sym(",") {
                break;
            }
        }
        self.expect_name("satisfies")?;
        let satisfies = Box::new(self.expr_single()?);
        Ok(Expr::Quantified {
            every,
            bindings,
            satisfies,
        })
    }

    fn if_expr(&mut self) -> Result<Expr> {
        self.expect_name("if")?;
        self.expect_sym("(")?;
        let cond = Box::new(self.expr()?);
        self.expect_sym(")")?;
        self.expect_name("then")?;
        let then = Box::new(self.expr_single()?);
        // QML convenience (paper Sec 3.3): the else branch may be absent and
        // defaults to the empty sequence.
        let els = if self.lx.eat_name("else") {
            Some(Box::new(self.expr_single()?))
        } else {
            None
        };
        Ok(Expr::If { cond, then, els })
    }

    // ---- updating expressions ----------------------------------------------

    fn updating_expr(&mut self) -> Result<Expr> {
        self.expect_name("do")?;
        if self.lx.eat_name("enqueue") {
            let message = Box::new(self.expr_single()?);
            self.expect_name("into")?;
            let queue = self.qname()?;
            let mut props = Vec::new();
            while self.lx.eat_name("with") {
                let pname = self.name_token()?;
                self.expect_name("value")?;
                let pval = self.expr_single()?;
                props.push((pname, pval));
            }
            return Ok(Expr::Enqueue {
                message,
                queue,
                props,
            });
        }
        if self.lx.eat_name("reset") {
            // `do reset` | `do reset slicing key Expr`. The parameterless
            // form resets the current rule's slice (paper Sec. 3.5.3); a
            // slicing name is only recognized when followed by `key`, which
            // keeps `do reset` unambiguous inside QDL statement sequences.
            let has_params = match self.lx.peek()? {
                Tok::Name(n) if n != "key" => {
                    let save = self.save();
                    let _ = self.lx.next_tok();
                    let hit = self.lx.at_name("key");
                    self.restore(save);
                    hit
                }
                _ => false,
            };
            let (slicing, key) = if has_params {
                let s = self.qname()?;
                self.expect_name("key")?;
                let k = Box::new(self.expr_single()?);
                (Some(s), Some(k))
            } else {
                (None, None)
            };
            return Ok(Expr::Reset { slicing, key });
        }
        if self.lx.eat_name("insert") {
            let source = Box::new(self.expr_single()?);
            let pos;
            if self.lx.eat_name("as") {
                if self.lx.eat_name("first") {
                    pos = InsertPos::IntoAsFirst;
                } else {
                    self.expect_name("last")?;
                    pos = InsertPos::IntoAsLast;
                }
                self.expect_name("into")?;
            } else if self.lx.eat_name("into") {
                pos = InsertPos::Into;
            } else if self.lx.eat_name("before") {
                pos = InsertPos::Before;
            } else if self.lx.eat_name("after") {
                pos = InsertPos::After;
            } else {
                return self.err("expected `into`, `before`, or `after` in do insert");
            }
            let target = Box::new(self.expr_single()?);
            return Ok(Expr::Insert {
                source,
                pos,
                target,
            });
        }
        if self.lx.eat_name("delete") {
            let target = Box::new(self.expr_single()?);
            return Ok(Expr::Delete { target });
        }
        if self.lx.eat_name("replace") {
            let value_of = if self.lx.eat_name("value") {
                self.expect_name("of")?;
                true
            } else {
                false
            };
            let target = Box::new(self.expr_single()?);
            self.expect_name("with")?;
            let source = Box::new(self.expr_single()?);
            return Ok(Expr::Replace {
                target,
                source,
                value_of,
            });
        }
        self.expect_name("rename")?;
        let target = Box::new(self.expr_single()?);
        self.expect_name("as")?;
        let name = Box::new(self.expr_single()?);
        Ok(Expr::Rename { target, name })
    }

    // ---- operator precedence ladder ------------------------------------------

    fn or_expr(&mut self) -> Result<Expr> {
        let mut left = self.and_expr()?;
        while self.lx.eat_name("or") {
            let right = self.and_expr()?;
            left = Expr::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut left = self.comparison_expr()?;
        while self.lx.eat_name("and") {
            let right = self.comparison_expr()?;
            left = Expr::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn comparison_expr(&mut self) -> Result<Expr> {
        let left = self.range_expr()?;
        let op = match self.lx.peek()? {
            Tok::Sym("=") => Some(CompOp::GenEq),
            Tok::Sym("!=") => Some(CompOp::GenNe),
            Tok::Sym("<") => Some(CompOp::GenLt),
            Tok::Sym("<=") => Some(CompOp::GenLe),
            Tok::Sym(">") => Some(CompOp::GenGt),
            Tok::Sym(">=") => Some(CompOp::GenGe),
            Tok::Sym("<<") => Some(CompOp::Precedes),
            Tok::Sym(">>") => Some(CompOp::Follows),
            Tok::Name(n) => match n.as_str() {
                "eq" => Some(CompOp::ValEq),
                "ne" => Some(CompOp::ValNe),
                "lt" => Some(CompOp::ValLt),
                "le" => Some(CompOp::ValLe),
                "gt" => Some(CompOp::ValGt),
                "ge" => Some(CompOp::ValGe),
                "is" => Some(CompOp::Is),
                _ => None,
            },
            _ => None,
        };
        match op {
            None => Ok(left),
            Some(op) => {
                let _ = self.lx.next_tok();
                let right = self.range_expr()?;
                Ok(Expr::Comparison {
                    op,
                    left: Box::new(left),
                    right: Box::new(right),
                })
            }
        }
    }

    fn range_expr(&mut self) -> Result<Expr> {
        let left = self.additive_expr()?;
        if self.lx.eat_name("to") {
            let right = self.additive_expr()?;
            Ok(Expr::Range(Box::new(left), Box::new(right)))
        } else {
            Ok(left)
        }
    }

    fn additive_expr(&mut self) -> Result<Expr> {
        let mut left = self.multiplicative_expr()?;
        loop {
            let op = if self.lx.eat_sym("+") {
                ArithOp::Add
            } else if self.lx.eat_sym("-") {
                ArithOp::Sub
            } else {
                return Ok(left);
            };
            let right = self.multiplicative_expr()?;
            left = Expr::Arith {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
    }

    fn multiplicative_expr(&mut self) -> Result<Expr> {
        let mut left = self.union_expr()?;
        loop {
            let op = if self.lx.eat_sym("*") {
                ArithOp::Mul
            } else if self.lx.eat_name("div") {
                ArithOp::Div
            } else if self.lx.eat_name("idiv") {
                ArithOp::IDiv
            } else if self.lx.eat_name("mod") {
                ArithOp::Mod
            } else {
                return Ok(left);
            };
            let right = self.union_expr()?;
            left = Expr::Arith {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
    }

    fn union_expr(&mut self) -> Result<Expr> {
        let mut left = self.intersect_expr()?;
        while self.lx.eat_sym("|") || self.lx.eat_name("union") {
            let right = self.intersect_expr()?;
            left = Expr::Set {
                op: SetOp::Union,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn intersect_expr(&mut self) -> Result<Expr> {
        let mut left = self.cast_expr()?;
        loop {
            let op = if self.lx.eat_name("intersect") {
                SetOp::Intersect
            } else if self.lx.eat_name("except") {
                SetOp::Except
            } else {
                return Ok(left);
            };
            let right = self.cast_expr()?;
            left = Expr::Set {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
    }

    fn cast_expr(&mut self) -> Result<Expr> {
        let e = self.unary_expr()?;
        if self.at_kw_then2("cast", "as") {
            self.expect_name("cast")?;
            self.expect_name("as")?;
            let ty = self.name_token()?;
            self.lx.eat_sym("?"); // optional occurrence indicator
            return Ok(Expr::Cast {
                expr: Box::new(e),
                ty,
            });
        }
        if self.at_kw_then2("instance", "of") {
            self.expect_name("instance")?;
            self.expect_name("of")?;
            let ty = self.name_token()?;
            self.lx.eat_sym("?");
            return Ok(Expr::InstanceOf {
                expr: Box::new(e),
                ty,
            });
        }
        Ok(e)
    }

    /// Lookahead: keyword name followed by another keyword name.
    fn at_kw_then2(&mut self, kw: &str, kw2: &str) -> bool {
        if !self.lx.at_name(kw) {
            return false;
        }
        let save = self.save();
        let _ = self.lx.next_tok();
        let hit = self.lx.at_name(kw2);
        self.restore(save);
        hit
    }

    fn unary_expr(&mut self) -> Result<Expr> {
        if self.lx.eat_sym("-") {
            let inner = self.unary_expr()?;
            return Ok(Expr::Neg(Box::new(inner)));
        }
        if self.lx.eat_sym("+") {
            return self.unary_expr();
        }
        self.path_expr()
    }

    // ---- paths ------------------------------------------------------------

    fn path_expr(&mut self) -> Result<Expr> {
        if self.lx.at_sym("//") {
            self.expect_sym("//")?;
            let mut steps = vec![Expr::Step {
                axis: Axis::DescendantOrSelf,
                test: NodeTest::AnyKind,
                predicates: vec![],
            }];
            self.relative_path_into(&mut steps)?;
            return Ok(Expr::Path { root: true, steps });
        }
        if self.lx.at_sym("/") {
            self.expect_sym("/")?;
            if self.at_step_start() {
                let mut steps = Vec::new();
                self.relative_path_into(&mut steps)?;
                return Ok(Expr::Path { root: true, steps });
            }
            return Ok(Expr::Path {
                root: true,
                steps: vec![],
            });
        }
        if self.at_step_start() {
            let mut steps = Vec::new();
            self.relative_path_into(&mut steps)?;
            if steps.len() == 1 {
                // A single primary-expression "step" needs no path wrapper.
                if !matches!(steps[0], Expr::Step { .. }) {
                    return Ok(steps.pop_unwrapped());
                }
            }
            return Ok(Expr::Path { root: false, steps });
        }
        let t = self.lx.peek()?;
        self.err(format!("expected an expression, found {t:?}"))
    }

    fn relative_path_into(&mut self, steps: &mut Vec<Expr>) -> Result<()> {
        loop {
            let step = self.step_expr()?;
            steps.push(step);
            if self.lx.eat_sym("//") {
                steps.push(Expr::Step {
                    axis: Axis::DescendantOrSelf,
                    test: NodeTest::AnyKind,
                    predicates: vec![],
                });
            } else if !self.lx.eat_sym("/") {
                return Ok(());
            }
        }
    }

    /// Could the next token begin a path step / primary expression?
    fn at_step_start(&mut self) -> bool {
        match self.lx.peek() {
            Ok(Tok::Name(_))
            | Ok(Tok::IntLit(_))
            | Ok(Tok::DoubleLit(_))
            | Ok(Tok::StringLit(_)) => true,
            Ok(Tok::Sym(s)) => matches!(s, "(" | "$" | "@" | "." | ".." | "*" | "<"),
            _ => false,
        }
    }

    fn step_expr(&mut self) -> Result<Expr> {
        // Reverse step `..`
        if self.lx.eat_sym("..") {
            let predicates = self.predicates()?;
            return Ok(Expr::Step {
                axis: Axis::Parent,
                test: NodeTest::AnyKind,
                predicates,
            });
        }
        // Attribute shorthand `@`
        if self.lx.eat_sym("@") {
            let test = self.node_test()?;
            let predicates = self.predicates()?;
            return Ok(Expr::Step {
                axis: Axis::Attribute,
                test,
                predicates,
            });
        }
        // Explicit axis `name::`
        if let Ok(Tok::Name(n)) = self.lx.peek() {
            if let Some(axis) = axis_from_name(&n) {
                let save = self.save();
                let _ = self.lx.next_tok();
                if self.lx.eat_sym("::") {
                    let test = self.node_test()?;
                    let predicates = self.predicates()?;
                    return Ok(Expr::Step {
                        axis,
                        test,
                        predicates,
                    });
                }
                self.restore(save);
            }
        }
        // Name test or kind test (not a function call or keyword-expression).
        match self.lx.peek()? {
            Tok::Sym("*") => {
                let _ = self.lx.next_tok();
                let predicates = self.predicates()?;
                return Ok(Expr::Step {
                    axis: Axis::Child,
                    test: NodeTest::AnyName,
                    predicates,
                });
            }
            Tok::Name(n) => {
                if KIND_TESTS.contains(&n.as_str()) && self.name_then_lparen() {
                    let test = self.node_test()?;
                    let predicates = self.predicates()?;
                    return Ok(Expr::Step {
                        axis: Axis::Child,
                        test,
                        predicates,
                    });
                }
                if !self.name_then_lparen() && !self.at_computed_constructor() {
                    // Plain child-axis name test.
                    let q = self.qname()?;
                    let predicates = self.predicates()?;
                    return Ok(Expr::Step {
                        axis: Axis::Child,
                        test: NodeTest::Name(q),
                        predicates,
                    });
                }
            }
            _ => {}
        }
        // Otherwise: a primary expression with optional predicates.
        let base = self.primary_expr()?;
        let predicates = self.predicates()?;
        if predicates.is_empty() {
            Ok(base)
        } else {
            Ok(Expr::Filter {
                base: Box::new(base),
                predicates,
            })
        }
    }

    fn name_then_lparen(&mut self) -> bool {
        let save = self.save();
        let is_name = matches!(self.lx.peek(), Ok(Tok::Name(_)));
        if !is_name {
            return false;
        }
        let _ = self.lx.next_tok();
        let hit = self.lx.at_sym("(");
        self.restore(save);
        hit
    }

    fn at_computed_constructor(&mut self) -> bool {
        let kw = match self.lx.peek() {
            Ok(Tok::Name(n)) => n,
            _ => return false,
        };
        match kw.as_str() {
            "element" | "attribute" => {
                // `element {expr} {content}` or `element name {content}`
                let save = self.save();
                let _ = self.lx.next_tok();
                let hit = self.lx.at_sym("{")
                    || (matches!(self.lx.peek(), Ok(Tok::Name(_))) && {
                        let _ = self.lx.next_tok();
                        self.lx.at_sym("{")
                    });
                self.restore(save);
                hit
            }
            "text" | "comment" | "document" => self.at_kw_then(&kw, "{"),
            _ => false,
        }
    }

    fn node_test(&mut self) -> Result<NodeTest> {
        match self.lx.peek()? {
            Tok::Sym("*") => {
                let _ = self.lx.next_tok();
                Ok(NodeTest::AnyName)
            }
            Tok::Name(n) => {
                if KIND_TESTS.contains(&n.as_str()) && self.name_then_lparen() {
                    let kind = self.name_token()?;
                    self.expect_sym("(")?;
                    let test = match kind.as_str() {
                        "node" => NodeTest::AnyKind,
                        "text" => NodeTest::Text,
                        "comment" => NodeTest::Comment,
                        "document-node" => NodeTest::Document,
                        "element" => {
                            if self.lx.at_sym(")") {
                                NodeTest::Element(None)
                            } else {
                                NodeTest::Element(Some(self.qname()?))
                            }
                        }
                        "attribute" => {
                            if self.lx.at_sym(")") {
                                NodeTest::Attribute(None)
                            } else {
                                NodeTest::Attribute(Some(self.qname()?))
                            }
                        }
                        "processing-instruction" => {
                            if self.lx.at_sym(")") {
                                NodeTest::Pi(None)
                            } else {
                                match self.lx.next_tok()? {
                                    Tok::StringLit(s) => NodeTest::Pi(Some(s)),
                                    Tok::Name(s) => NodeTest::Pi(Some(s)),
                                    t => return self.err(format!("bad PI target {t:?}")),
                                }
                            }
                        }
                        _ => unreachable!("KIND_TESTS covers all"),
                    };
                    self.expect_sym(")")?;
                    Ok(test)
                } else {
                    Ok(NodeTest::Name(self.qname()?))
                }
            }
            t => self.err(format!("expected a node test, found {t:?}")),
        }
    }

    fn predicates(&mut self) -> Result<Vec<Expr>> {
        let mut out = Vec::new();
        while self.lx.eat_sym("[") {
            out.push(self.expr()?);
            self.expect_sym("]")?;
        }
        Ok(out)
    }

    // ---- primaries --------------------------------------------------------

    fn primary_expr(&mut self) -> Result<Expr> {
        match self.lx.peek()? {
            Tok::StringLit(s) => {
                let _ = self.lx.next_tok();
                Ok(Expr::StringLit(s))
            }
            Tok::IntLit(i) => {
                let _ = self.lx.next_tok();
                Ok(Expr::IntLit(i))
            }
            Tok::DoubleLit(d) => {
                let _ = self.lx.next_tok();
                Ok(Expr::DoubleLit(d))
            }
            Tok::Sym("$") => {
                let name = self.var_name()?;
                Ok(Expr::Var(name))
            }
            Tok::Sym(".") => {
                let _ = self.lx.next_tok();
                Ok(Expr::ContextItem)
            }
            Tok::Sym("(") => {
                let _ = self.lx.next_tok();
                if self.lx.eat_sym(")") {
                    return Ok(Expr::Sequence(vec![]));
                }
                let e = self.expr()?;
                self.expect_sym(")")?;
                Ok(e)
            }
            Tok::Sym("<") => self.direct_constructor(),
            Tok::Name(n) => {
                if self.at_computed_constructor() {
                    return self.computed_constructor();
                }
                if self.name_then_lparen() && !KIND_TESTS.contains(&n.as_str()) {
                    return self.function_call();
                }
                let t = self.lx.peek()?;
                self.err(format!("unexpected token {t:?} in expression"))
            }
            t => self.err(format!("unexpected token {t:?} in expression")),
        }
    }

    fn function_call(&mut self) -> Result<Expr> {
        let raw = self.name_token()?;
        // Normalize the default function namespace prefix.
        let normalized = raw.strip_prefix("fn:").unwrap_or(&raw).to_string();
        let name = QName::parse_lexical(&normalized)
            .ok_or_else(|| Error::static_error(format!("invalid function name `{raw}`")))?;
        self.expect_sym("(")?;
        let mut args = Vec::new();
        if !self.lx.at_sym(")") {
            loop {
                args.push(self.expr_single()?);
                if !self.lx.eat_sym(",") {
                    break;
                }
            }
        }
        self.expect_sym(")")?;
        Ok(Expr::FunctionCall { name, args })
    }

    fn computed_constructor(&mut self) -> Result<Expr> {
        let kw = self.name_token()?;
        match kw.as_str() {
            "element" | "attribute" => {
                let name: Expr = if self.lx.at_sym("{") {
                    self.expect_sym("{")?;
                    let e = self.expr()?;
                    self.expect_sym("}")?;
                    e
                } else {
                    Expr::StringLit(self.name_token()?)
                };
                self.expect_sym("{")?;
                let content = if self.lx.at_sym("}") {
                    Expr::Sequence(vec![])
                } else {
                    self.expr()?
                };
                self.expect_sym("}")?;
                if kw == "element" {
                    Ok(Expr::ComputedElement {
                        name: Box::new(name),
                        content: Box::new(content),
                    })
                } else {
                    Ok(Expr::ComputedAttribute {
                        name: Box::new(name),
                        content: Box::new(content),
                    })
                }
            }
            "text" | "comment" | "document" => {
                self.expect_sym("{")?;
                let content = if self.lx.at_sym("}") {
                    Expr::Sequence(vec![])
                } else {
                    self.expr()?
                };
                self.expect_sym("}")?;
                Ok(match kw.as_str() {
                    "text" => Expr::ComputedText(Box::new(content)),
                    "comment" => Expr::ComputedComment(Box::new(content)),
                    _ => Expr::ComputedDocument(Box::new(content)),
                })
            }
            other => self.err(format!("unknown computed constructor `{other}`")),
        }
    }

    // ---- direct element constructors (raw mode) -----------------------------

    fn direct_constructor(&mut self) -> Result<Expr> {
        self.expect_sym("<")?;
        self.lx.clear_peek();
        self.parse_element_tail()
    }

    /// Parse an element constructor, positioned just after `<`.
    fn parse_element_tail(&mut self) -> Result<Expr> {
        let name_s = self.lx.raw_name()?;
        let name = QName::parse_lexical(&name_s)
            .ok_or_else(|| Error::static_error(format!("invalid element name `{name_s}`")))?;
        let mut attrs = Vec::new();
        loop {
            self.lx.raw_skip_ws();
            match self.lx.raw_peek() {
                Some('/') | Some('>') => break,
                None => return self.err("unexpected end of constructor"),
                _ => {
                    let an_s = self.lx.raw_name()?;
                    let an = QName::parse_lexical(&an_s).ok_or_else(|| {
                        Error::static_error(format!("invalid attribute name `{an_s}`"))
                    })?;
                    self.lx.raw_skip_ws();
                    if !self.lx.raw_eat("=") {
                        return self.err("expected `=` in attribute");
                    }
                    self.lx.raw_skip_ws();
                    let parts = self.attr_value_template()?;
                    attrs.push((an, parts));
                }
            }
        }
        if self.lx.raw_eat("/>") {
            return Ok(Expr::DirectElement {
                name,
                attrs,
                content: vec![],
            });
        }
        if !self.lx.raw_eat(">") {
            return self.err("expected `>` in constructor");
        }
        let mut content: Vec<DirContent> = Vec::new();
        let mut text = String::new();
        macro_rules! flush_text {
            () => {
                if !text.is_empty() {
                    content.push(DirContent::Text(std::mem::take(&mut text)));
                }
            };
        }
        loop {
            if self.lx.raw_starts_with("</") {
                flush_text!();
                self.lx.raw_eat("</");
                let end = self.lx.raw_name()?;
                self.lx.raw_skip_ws();
                if !self.lx.raw_eat(">") {
                    return self.err("expected `>` in end tag");
                }
                if end != name_s {
                    return self.err(format!("mismatched end tag `</{end}>` for `<{name_s}>`"));
                }
                break;
            } else if self.lx.raw_starts_with("<!--") {
                flush_text!();
                self.lx.raw_eat("<!--");
                let mut c = String::new();
                while !self.lx.raw_starts_with("-->") {
                    match self.lx.raw_bump() {
                        Some(ch) => c.push(ch),
                        None => return self.err("unterminated comment in constructor"),
                    }
                }
                self.lx.raw_eat("-->");
                content.push(DirContent::Expr(Expr::ComputedComment(Box::new(
                    Expr::StringLit(c),
                ))));
            } else if self.lx.raw_starts_with("<![CDATA[") {
                self.lx.raw_eat("<![CDATA[");
                while !self.lx.raw_starts_with("]]>") {
                    match self.lx.raw_bump() {
                        Some(ch) => text.push(ch),
                        None => return self.err("unterminated CDATA in constructor"),
                    }
                }
                self.lx.raw_eat("]]>");
            } else if self.lx.raw_starts_with("<") {
                flush_text!();
                self.lx.raw_eat("<");
                let nested = self.parse_element_tail()?;
                content.push(DirContent::Expr(nested));
            } else if self.lx.raw_starts_with("{{") {
                self.lx.raw_eat("{{");
                text.push('{');
            } else if self.lx.raw_starts_with("}}") {
                self.lx.raw_eat("}}");
                text.push('}');
            } else if self.lx.raw_starts_with("{") {
                flush_text!();
                self.lx.raw_eat("{");
                // Token mode for the enclosed expression.
                let e = self.expr()?;
                self.expect_sym("}")?;
                self.lx.clear_peek();
                content.push(DirContent::Enclosed(e));
            } else if self.lx.raw_starts_with("&") {
                text.push_str(&self.char_reference()?);
            } else {
                match self.lx.raw_bump() {
                    Some(ch) => text.push(ch),
                    None => return self.err(format!("unterminated element `<{name_s}>`")),
                }
            }
        }
        // Boundary whitespace stripping (XQuery default boundary-space strip):
        // whitespace-only literal text between constructs is dropped.
        let content: Vec<DirContent> = content
            .into_iter()
            .filter(|c| !matches!(c, DirContent::Text(t) if t.trim().is_empty()))
            .collect();
        Ok(Expr::DirectElement {
            name,
            attrs,
            content,
        })
    }

    fn attr_value_template(&mut self) -> Result<Vec<AttrValuePart>> {
        let quote = match self.lx.raw_bump() {
            Some(q @ ('"' | '\'')) => q,
            _ => return self.err("expected quoted attribute value"),
        };
        let mut parts = Vec::new();
        let mut text = String::new();
        loop {
            match self.lx.raw_peek() {
                None => return self.err("unterminated attribute value"),
                Some(q) if q == quote => {
                    self.lx.raw_bump();
                    if !text.is_empty() {
                        parts.push(AttrValuePart::Text(text));
                    }
                    return Ok(parts);
                }
                Some('{') => {
                    if self.lx.raw_starts_with("{{") {
                        self.lx.raw_eat("{{");
                        text.push('{');
                        continue;
                    }
                    if !text.is_empty() {
                        parts.push(AttrValuePart::Text(std::mem::take(&mut text)));
                    }
                    self.lx.raw_eat("{");
                    let e = self.expr()?;
                    self.expect_sym("}")?;
                    self.lx.clear_peek();
                    parts.push(AttrValuePart::Enclosed(e));
                }
                Some('}') => {
                    if self.lx.raw_starts_with("}}") {
                        self.lx.raw_eat("}}");
                        text.push('}');
                    } else {
                        return self.err("unescaped `}` in attribute value");
                    }
                }
                Some('&') => text.push_str(&self.char_reference()?),
                Some(c) => {
                    text.push(c);
                    self.lx.raw_bump();
                }
            }
        }
    }

    fn char_reference(&mut self) -> Result<String> {
        self.lx.raw_eat("&");
        if self.lx.raw_eat("#") {
            let hex = self.lx.raw_eat("x");
            let mut digits = String::new();
            while self.lx.raw_peek().is_some_and(|c| c.is_ascii_hexdigit()) {
                digits.push(self.lx.raw_bump().unwrap());
            }
            if !self.lx.raw_eat(";") {
                return self.err("expected `;` in character reference");
            }
            let code = u32::from_str_radix(&digits, if hex { 16 } else { 10 })
                .ok()
                .and_then(char::from_u32);
            match code {
                Some(c) => Ok(c.to_string()),
                None => self.err("invalid character reference"),
            }
        } else {
            let name = self.lx.raw_name()?;
            if !self.lx.raw_eat(";") {
                return self.err("expected `;` in entity reference");
            }
            match name.as_str() {
                "amp" => Ok("&".into()),
                "lt" => Ok("<".into()),
                "gt" => Ok(">".into()),
                "apos" => Ok("'".into()),
                "quot" => Ok("\"".into()),
                other => self.err(format!("unknown entity `&{other};`")),
            }
        }
    }
}

fn axis_from_name(n: &str) -> Option<Axis> {
    Some(match n {
        "child" => Axis::Child,
        "descendant" => Axis::Descendant,
        "descendant-or-self" => Axis::DescendantOrSelf,
        "attribute" => Axis::Attribute,
        "self" => Axis::SelfAxis,
        "parent" => Axis::Parent,
        "ancestor" => Axis::Ancestor,
        "ancestor-or-self" => Axis::AncestorOrSelf,
        "following-sibling" => Axis::FollowingSibling,
        "preceding-sibling" => Axis::PrecedingSibling,
        _ => return None,
    })
}

/// Small helper: take ownership of the single element of a Vec.
trait PopUnwrapped {
    fn pop_unwrapped(&mut self) -> Expr;
}
impl PopUnwrapped for Vec<Expr> {
    fn pop_unwrapped(&mut self) -> Expr {
        debug_assert_eq!(self.len(), 1);
        self.pop().expect("non-empty")
    }
}
