//! Lowered execution plans.
//!
//! [`lower`] compiles an [`Expr`] tree (the output of the Demaq rule
//! compiler's `compile`/`merge` stages, paper Sec. 4.4.1) into a [`Plan`]:
//! the same operator tree, but with every name resolved ahead of time so
//! the per-message hot path does no string work:
//!
//! * element/attribute name tests carry interned [`Sym`] ids — a name test
//!   is one `u32` comparison against [`NodeRef::name_sym`] instead of a
//!   string compare (see [`demaq_xml::sym`]),
//! * variable references become frame-slot indices ([`Plan::Slot`],
//!   de Bruijn style): the evaluator's environment is a plain
//!   `Vec<Sequence>` indexed by position, not a name-searched assoc list,
//! * constant subexpressions are folded at lower time ([`Plan::Const`]) —
//!   only where folding provably cannot hide a runtime error,
//! * paths in effective-boolean-value position (trigger conditions,
//!   `where` clauses, quantifier bodies) become [`Plan::Exists`], which
//!   stops at the first matching node instead of materializing and
//!   sorting the full node sequence.
//!
//! [`PlanEvaluator`] executes plans with semantics identical to
//! [`Evaluator`](crate::eval::Evaluator) — the differential test suite
//! holds both interpreters to the same results, including error cases.

use crate::ast::*;
use crate::context::DynamicContext;
use crate::error::{Error, Result};
use crate::eval::{
    assemble_element, atomics_joined, axis_candidates, cast_atomic, order_cmp,
    sequence_to_document, text_node, Focus,
};
use crate::functions;
use crate::update::Update;
use crate::value::{Atomic, Item, Sequence};
use demaq_xml::sym::{self, Sym};
use demaq_xml::{DocBuilder, NodeKind, NodeRef, QName};
use std::cmp::Ordering;
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};

static PLANS_LOWERED: AtomicU64 = AtomicU64::new(0);
static EBV_SHORT_CIRCUITS: AtomicU64 = AtomicU64::new(0);

/// Number of expression trees lowered to plans since process start
/// (`demaq_xquery_plans_lowered_total`).
pub fn plans_lowered_total() -> u64 {
    PLANS_LOWERED.load(AtomicOrdering::Relaxed)
}

/// Number of existence evaluations that stopped at the first matching node
/// (`demaq_xquery_ebv_short_circuits_total`).
pub fn ebv_short_circuits_total() -> u64 {
    EBV_SHORT_CIRCUITS.load(AtomicOrdering::Relaxed)
}

/// A pre-resolved node test: name comparisons are `Sym` equality, with the
/// namespace compared only when the test carries one (mirroring
/// [`QName::matches`]).
#[derive(Debug, Clone, PartialEq)]
pub enum PTest {
    Name { sym: Sym, ns: Option<String> },
    AnyName,
    AnyKind,
    Text,
    Comment,
    Element(Option<(Sym, Option<String>)>),
    Attribute(Option<(Sym, Option<String>)>),
    Pi(Option<String>),
    Document,
}

pub(crate) fn lower_test(test: &NodeTest) -> PTest {
    let named = |q: &QName| (sym::intern(&q.local), q.ns.clone());
    match test {
        NodeTest::Name(q) => {
            let (sym, ns) = named(q);
            PTest::Name { sym, ns }
        }
        NodeTest::AnyName => PTest::AnyName,
        NodeTest::AnyKind => PTest::AnyKind,
        NodeTest::Text => PTest::Text,
        NodeTest::Comment => PTest::Comment,
        NodeTest::Element(q) => PTest::Element(q.as_ref().map(&named)),
        NodeTest::Attribute(q) => PTest::Attribute(q.as_ref().map(&named)),
        NodeTest::Pi(t) => PTest::Pi(t.clone()),
        NodeTest::Document => PTest::Document,
    }
}

/// Sym-fast name match: local names compare as integers; namespaces are
/// only consulted when both the test and the node carry one.
fn name_matches(node: &NodeRef, sym: Sym, ns: &Option<String>) -> bool {
    if node.name_sym() != Some(sym) {
        return false;
    }
    match (ns, node.name().and_then(|q| q.ns.as_ref())) {
        (Some(t), Some(n)) => t == n,
        _ => true,
    }
}

pub(crate) fn ptest_matches(axis: Axis, node: &NodeRef, test: &PTest) -> bool {
    // Namespace declarations are stored as attributes for serialization
    // fidelity but are not addressable via the attribute axis.
    if axis == Axis::Attribute {
        if let Some(q) = node.name() {
            if q.local == "xmlns" || q.local.starts_with("xmlns:") {
                return false;
            }
        }
    }
    match test {
        PTest::AnyKind => true,
        PTest::Text => node.is_text(),
        PTest::Comment => matches!(node.kind(), NodeKind::Comment(_)),
        PTest::Document => node.is_document(),
        PTest::AnyName => {
            if axis == Axis::Attribute {
                node.is_attribute()
            } else {
                node.is_element()
            }
        }
        PTest::Name { sym, ns } => {
            let principal_ok = if axis == Axis::Attribute {
                node.is_attribute()
            } else {
                node.is_element()
            };
            principal_ok && name_matches(node, *sym, ns)
        }
        PTest::Element(q) => {
            node.is_element() && q.as_ref().is_none_or(|(s, ns)| name_matches(node, *s, ns))
        }
        PTest::Attribute(q) => {
            node.is_attribute() && q.as_ref().is_none_or(|(s, ns)| name_matches(node, *s, ns))
        }
        PTest::Pi(target) => match node.kind() {
            NodeKind::Pi { target: t, .. } => target.as_ref().is_none_or(|x| x == t),
            _ => false,
        },
    }
}

/// A lowered FLWOR clause; binding names are gone — each clause pushes its
/// slot(s) at a statically known frame position.
#[derive(Debug, Clone)]
pub enum PClause {
    /// Pushes one slot.
    Let { value: Plan },
    /// Pushes one slot, plus a positional slot when `at` is set.
    For { at: bool, source: Plan },
}

#[derive(Debug, Clone)]
pub struct POrderSpec {
    pub key: Plan,
    pub descending: bool,
    pub empty_greatest: bool,
}

#[derive(Debug, Clone)]
pub enum PContent {
    Text(String),
    Expr(Plan),
}

#[derive(Debug, Clone)]
pub enum PAttrPart {
    Text(String),
    Expr(Plan),
}

/// The lowered operator tree. Mirrors [`Expr`] except that literals fold
/// into [`Plan::Const`], variables resolve to [`Plan::Slot`] /
/// [`Plan::FreeVar`], node tests are [`PTest`]s, and existence-only paths
/// become [`Plan::Exists`].
#[derive(Debug, Clone)]
pub enum Plan {
    Const(Sequence),
    /// Lexical variable resolved to an absolute frame index.
    Slot(usize),
    /// Variable not bound lexically; resolved from the dynamic context at
    /// run time (externally supplied variables).
    FreeVar(String),
    ContextItem,
    Sequence(Vec<Plan>),
    FunctionCall {
        name: QName,
        args: Vec<Plan>,
    },
    Path {
        root: bool,
        steps: Vec<Plan>,
    },
    Step {
        axis: Axis,
        test: PTest,
        predicates: Vec<Plan>,
    },
    Filter {
        base: Box<Plan>,
        predicates: Vec<Plan>,
    },
    RelativePath {
        base: Box<Plan>,
        step: Box<Plan>,
        descend: bool,
    },
    Or(Box<Plan>, Box<Plan>),
    And(Box<Plan>, Box<Plan>),
    Comparison {
        op: CompOp,
        left: Box<Plan>,
        right: Box<Plan>,
    },
    Arith {
        op: ArithOp,
        left: Box<Plan>,
        right: Box<Plan>,
    },
    Set {
        op: SetOp,
        left: Box<Plan>,
        right: Box<Plan>,
    },
    Range(Box<Plan>, Box<Plan>),
    Neg(Box<Plan>),
    If {
        cond: Box<Plan>,
        then: Box<Plan>,
        els: Option<Box<Plan>>,
    },
    Flwor {
        clauses: Vec<PClause>,
        where_: Option<Box<Plan>>,
        order: Vec<POrderSpec>,
        ret: Box<Plan>,
    },
    Quantified {
        every: bool,
        /// Binding sources in clause order; each pushes one slot.
        bindings: Vec<Plan>,
        satisfies: Box<Plan>,
    },
    DirectElement {
        name: QName,
        attrs: Vec<(QName, Vec<PAttrPart>)>,
        content: Vec<PContent>,
    },
    ComputedElement {
        name: Box<Plan>,
        content: Box<Plan>,
    },
    ComputedAttribute {
        name: Box<Plan>,
        content: Box<Plan>,
    },
    ComputedText(Box<Plan>),
    ComputedComment(Box<Plan>),
    ComputedDocument(Box<Plan>),
    Enqueue {
        message: Box<Plan>,
        queue: QName,
        props: Vec<(String, Plan)>,
    },
    Reset {
        slicing: Option<QName>,
        key: Option<Box<Plan>>,
    },
    Insert {
        source: Box<Plan>,
        pos: InsertPos,
        target: Box<Plan>,
    },
    Delete {
        target: Box<Plan>,
    },
    Replace {
        target: Box<Plan>,
        source: Box<Plan>,
        value_of: bool,
    },
    Rename {
        target: Box<Plan>,
        name: Box<Plan>,
    },
    Cast {
        expr: Box<Plan>,
        ty: String,
    },
    InstanceOf {
        expr: Box<Plan>,
        ty: String,
    },
    /// Effective-boolean-value of a pure axis path: yields
    /// `Sequence::bool` and stops at the first matching node. Only emitted
    /// for paths whose every step is a predicate-free axis step, where the
    /// equivalence to full evaluation + EBV is provable (such a path can
    /// produce no error besides the context-item checks, which `Exists`
    /// replicates).
    Exists {
        root: bool,
        steps: Vec<(Axis, PTest)>,
    },
    /// An incrementalizable aggregate over a queue/slice membership
    /// (`count(qs:slice())`, `sum(qs:queue("q")//n)`, …). The host may
    /// answer it from a materialized cell; when it declines (registry
    /// disabled, cold cell, no slice context) the evaluator runs
    /// `fallback` — the original `Plan::FunctionCall` — so unsupported
    /// reads are byte-identical to the reference rescan, errors included.
    AggregateRead {
        spec: crate::aggregate::AggregateSpec,
        fallback: Box<Plan>,
    },
}

impl Plan {
    /// The folded constant value, when lowering reduced this plan to a
    /// constant (static-analysis introspection hook).
    pub fn as_const(&self) -> Option<&Sequence> {
        match self {
            Plan::Const(seq) => Some(seq),
            _ => None,
        }
    }
}

/// Constant-fold an expression through the lowerer and report its
/// effective boolean value when it reduces to a constant. `None` means the
/// value is not statically known (or has no EBV, e.g. a multi-atomic
/// sequence). Used by the whole-application analyzer to find rule
/// conditions that can never hold.
pub fn fold_boolean(expr: &Expr) -> Option<bool> {
    match lower(expr) {
        Plan::Const(seq) => seq.effective_boolean().ok(),
        _ => None,
    }
}

// ---- lowering -----------------------------------------------------------------

/// Lower an expression tree to an execution plan.
pub fn lower(expr: &Expr) -> Plan {
    PLANS_LOWERED.fetch_add(1, AtomicOrdering::Relaxed);
    Lowerer { scope: Vec::new() }.lower(expr)
}

struct Lowerer {
    /// Lexical binding names in frame push order; `rposition` = slot index.
    scope: Vec<String>,
}

impl Lowerer {
    fn lower(&mut self, e: &Expr) -> Plan {
        match e {
            Expr::StringLit(s) => Plan::Const(Sequence::str(s.clone())),
            Expr::IntLit(i) => Plan::Const(Sequence::int(*i)),
            Expr::DoubleLit(d) => Plan::Const(Sequence::one(Atomic::Double(*d))),
            Expr::Var(name) => match self.scope.iter().rposition(|n| n == name) {
                Some(slot) => Plan::Slot(slot),
                None => Plan::FreeVar(name.clone()),
            },
            Expr::ContextItem => Plan::ContextItem,
            Expr::Sequence(es) => {
                let parts: Vec<Plan> = es.iter().map(|e| self.lower(e)).collect();
                if let Some(folded) = fold_sequence(&parts) {
                    return folded;
                }
                Plan::Sequence(parts)
            }
            Expr::FunctionCall { name, args } => {
                let args: Vec<Plan> = args.iter().map(|a| self.lower(a)).collect();
                if let Some(spec) = crate::aggregate::recognize_aggregate(e) {
                    return Plan::AggregateRead {
                        spec,
                        fallback: Box::new(Plan::FunctionCall {
                            name: name.clone(),
                            args,
                        }),
                    };
                }
                if args.is_empty() && name.prefix.is_none() {
                    // fn:true()/fn:false() are constants.
                    match name.local.as_str() {
                        "true" => return Plan::Const(Sequence::bool(true)),
                        "false" => return Plan::Const(Sequence::bool(false)),
                        _ => {}
                    }
                }
                Plan::FunctionCall {
                    name: name.clone(),
                    args,
                }
            }
            Expr::Path { root, steps } => Plan::Path {
                root: *root,
                steps: steps.iter().map(|s| self.lower(s)).collect(),
            },
            Expr::Step {
                axis,
                test,
                predicates,
            } => Plan::Step {
                axis: *axis,
                test: lower_test(test),
                predicates: predicates.iter().map(|p| self.lower(p)).collect(),
            },
            Expr::Filter { base, predicates } => Plan::Filter {
                base: Box::new(self.lower(base)),
                predicates: predicates.iter().map(|p| self.lower(p)).collect(),
            },
            Expr::RelativePath {
                base,
                step,
                descend,
            } => Plan::RelativePath {
                base: Box::new(self.lower(base)),
                step: Box::new(self.lower(step)),
                descend: *descend,
            },
            Expr::Or(a, b) => {
                let l = self.lower_ebv(a);
                let r = self.lower_ebv(b);
                // Fold only when the constant's EBV is Ok — a constant whose
                // EBV errors (e.g. a two-atomic sequence) must still error.
                if let Some(lb) = const_ebv(&l) {
                    if lb {
                        return Plan::Const(Sequence::bool(true));
                    }
                    if let Some(rb) = const_ebv(&r) {
                        return Plan::Const(Sequence::bool(rb));
                    }
                }
                Plan::Or(Box::new(l), Box::new(r))
            }
            Expr::And(a, b) => {
                let l = self.lower_ebv(a);
                let r = self.lower_ebv(b);
                if let Some(lb) = const_ebv(&l) {
                    if !lb {
                        return Plan::Const(Sequence::bool(false));
                    }
                    if let Some(rb) = const_ebv(&r) {
                        return Plan::Const(Sequence::bool(rb));
                    }
                }
                Plan::And(Box::new(l), Box::new(r))
            }
            Expr::Comparison { op, left, right } => Plan::Comparison {
                op: *op,
                left: Box::new(self.lower(left)),
                right: Box::new(self.lower(right)),
            },
            Expr::Arith { op, left, right } => Plan::Arith {
                op: *op,
                left: Box::new(self.lower(left)),
                right: Box::new(self.lower(right)),
            },
            Expr::Set { op, left, right } => Plan::Set {
                op: *op,
                left: Box::new(self.lower(left)),
                right: Box::new(self.lower(right)),
            },
            Expr::Range(a, b) => {
                let l = self.lower(a);
                let r = self.lower(b);
                if let Some(folded) = fold_range(&l, &r) {
                    return folded;
                }
                Plan::Range(Box::new(l), Box::new(r))
            }
            Expr::Neg(e) => {
                let inner = self.lower(e);
                if let Some(folded) = fold_neg(&inner) {
                    return folded;
                }
                Plan::Neg(Box::new(inner))
            }
            Expr::If { cond, then, els } => {
                let c = self.lower_ebv(cond);
                if let Some(cb) = const_ebv(&c) {
                    // Dead-branch elimination: trigger conditions of merged
                    // rules are often decided at compile time.
                    return if cb {
                        self.lower(then)
                    } else {
                        match els {
                            Some(e) => self.lower(e),
                            None => Plan::Const(Sequence::empty()),
                        }
                    };
                }
                Plan::If {
                    cond: Box::new(c),
                    then: Box::new(self.lower(then)),
                    els: els.as_ref().map(|e| Box::new(self.lower(e))),
                }
            }
            Expr::Flwor {
                clauses,
                where_,
                order,
                ret,
            } => {
                let scope_base = self.scope.len();
                let mut pclauses = Vec::with_capacity(clauses.len());
                for c in clauses {
                    match c {
                        FlworClause::Let { var, value } => {
                            let value = self.lower(value);
                            self.scope.push(var.clone());
                            pclauses.push(PClause::Let { value });
                        }
                        FlworClause::For { var, at, source } => {
                            let source = self.lower(source);
                            self.scope.push(var.clone());
                            let at = if let Some(atv) = at {
                                self.scope.push(atv.clone());
                                true
                            } else {
                                false
                            };
                            pclauses.push(PClause::For { at, source });
                        }
                    }
                }
                let where_ = where_.as_ref().map(|w| Box::new(self.lower_ebv(w)));
                let order = order
                    .iter()
                    .map(|o| POrderSpec {
                        key: self.lower(&o.key),
                        descending: o.descending,
                        empty_greatest: o.empty_greatest,
                    })
                    .collect();
                let ret = Box::new(self.lower(ret));
                self.scope.truncate(scope_base);
                Plan::Flwor {
                    clauses: pclauses,
                    where_,
                    order,
                    ret,
                }
            }
            Expr::Quantified {
                every,
                bindings,
                satisfies,
            } => {
                let scope_base = self.scope.len();
                let mut sources = Vec::with_capacity(bindings.len());
                for (var, src) in bindings {
                    sources.push(self.lower(src));
                    self.scope.push(var.clone());
                }
                let satisfies = Box::new(self.lower_ebv(satisfies));
                self.scope.truncate(scope_base);
                Plan::Quantified {
                    every: *every,
                    bindings: sources,
                    satisfies,
                }
            }
            Expr::DirectElement {
                name,
                attrs,
                content,
            } => Plan::DirectElement {
                name: name.clone(),
                attrs: attrs
                    .iter()
                    .map(|(n, parts)| {
                        (
                            n.clone(),
                            parts
                                .iter()
                                .map(|p| match p {
                                    AttrValuePart::Text(t) => PAttrPart::Text(t.clone()),
                                    AttrValuePart::Enclosed(e) => PAttrPart::Expr(self.lower(e)),
                                })
                                .collect(),
                        )
                    })
                    .collect(),
                content: content
                    .iter()
                    .map(|c| match c {
                        DirContent::Text(t) => PContent::Text(t.clone()),
                        DirContent::Enclosed(e) | DirContent::Expr(e) => {
                            PContent::Expr(self.lower(e))
                        }
                    })
                    .collect(),
            },
            Expr::ComputedElement { name, content } => Plan::ComputedElement {
                name: Box::new(self.lower(name)),
                content: Box::new(self.lower(content)),
            },
            Expr::ComputedAttribute { name, content } => Plan::ComputedAttribute {
                name: Box::new(self.lower(name)),
                content: Box::new(self.lower(content)),
            },
            Expr::ComputedText(e) => Plan::ComputedText(Box::new(self.lower(e))),
            Expr::ComputedComment(e) => Plan::ComputedComment(Box::new(self.lower(e))),
            Expr::ComputedDocument(e) => Plan::ComputedDocument(Box::new(self.lower(e))),
            Expr::Enqueue {
                message,
                queue,
                props,
            } => Plan::Enqueue {
                message: Box::new(self.lower(message)),
                queue: queue.clone(),
                props: props
                    .iter()
                    .map(|(n, e)| (n.clone(), self.lower(e)))
                    .collect(),
            },
            Expr::Reset { slicing, key } => Plan::Reset {
                slicing: slicing.clone(),
                key: key.as_ref().map(|k| Box::new(self.lower(k))),
            },
            Expr::Insert {
                source,
                pos,
                target,
            } => Plan::Insert {
                source: Box::new(self.lower(source)),
                pos: *pos,
                target: Box::new(self.lower(target)),
            },
            Expr::Delete { target } => Plan::Delete {
                target: Box::new(self.lower(target)),
            },
            Expr::Replace {
                target,
                source,
                value_of,
            } => Plan::Replace {
                target: Box::new(self.lower(target)),
                source: Box::new(self.lower(source)),
                value_of: *value_of,
            },
            Expr::Rename { target, name } => Plan::Rename {
                target: Box::new(self.lower(target)),
                name: Box::new(self.lower(name)),
            },
            Expr::Cast { expr, ty } => Plan::Cast {
                expr: Box::new(self.lower(expr)),
                ty: ty.clone(),
            },
            Expr::InstanceOf { expr, ty } => Plan::InstanceOf {
                expr: Box::new(self.lower(expr)),
                ty: ty.clone(),
            },
        }
    }

    /// Lower an expression whose value is consumed as an effective boolean
    /// (trigger condition, `and`/`or` operand, `where`, `satisfies`).
    /// Predicate positions must NOT use this — a single numeric predicate
    /// is a positional test, not an EBV.
    fn lower_ebv(&mut self, e: &Expr) -> Plan {
        if let Expr::Path { root, steps } = e {
            if let Some(chain) = existence_chain(steps) {
                return Plan::Exists {
                    root: *root,
                    steps: chain,
                };
            }
        }
        self.lower(e)
    }
}

/// A path is existence-streamable iff every step is a predicate-free axis
/// step: such a path yields only nodes (EBV = non-empty) and, beyond the
/// context-item checks, cannot raise an error — so stopping at the first
/// match is observably identical to full evaluation.
fn existence_chain(steps: &[Expr]) -> Option<Vec<(Axis, PTest)>> {
    if steps.is_empty() {
        return None;
    }
    steps
        .iter()
        .map(|s| match s {
            Expr::Step {
                axis,
                test,
                predicates,
            } if predicates.is_empty() => Some((*axis, lower_test(test))),
            _ => None,
        })
        .collect()
}

/// EBV of a constant plan, only when evaluating it cannot error.
fn const_ebv(p: &Plan) -> Option<bool> {
    match p {
        Plan::Const(seq) => seq.effective_boolean().ok(),
        _ => None,
    }
}

fn fold_sequence(parts: &[Plan]) -> Option<Plan> {
    let mut out = Sequence::empty();
    for p in parts {
        match p {
            Plan::Const(seq) => out = out.concat(seq.clone()),
            _ => return None,
        }
    }
    Some(Plan::Const(out))
}

/// Fold `a to b` when both operands are constant single integers and the
/// range is small; an over-large constant range stays lazy rather than
/// bloating the plan.
fn fold_range(l: &Plan, r: &Plan) -> Option<Plan> {
    const MAX_FOLDED_RANGE: i64 = 1024;
    let (Plan::Const(ls), Plan::Const(rs)) = (l, r) else {
        return None;
    };
    if ls.is_empty() || rs.is_empty() {
        return Some(Plan::Const(Sequence::empty()));
    }
    let from = ls.exactly_one().ok()?.atomize().cast_integer().ok()?;
    let to = rs.exactly_one().ok()?.atomize().cast_integer().ok()?;
    if to.saturating_sub(from) > MAX_FOLDED_RANGE {
        return None;
    }
    Some(Plan::Const(
        (from..=to).map(|i| Item::Atomic(Atomic::Int(i))).collect(),
    ))
}

fn fold_neg(inner: &Plan) -> Option<Plan> {
    let Plan::Const(seq) = inner else {
        return None;
    };
    if seq.is_empty() {
        return Some(Plan::Const(Sequence::empty()));
    }
    match seq.exactly_one().ok()?.atomize() {
        Atomic::Int(i) => Some(Plan::Const(Sequence::int(-i))),
        a => Some(Plan::Const(Sequence::one(Atomic::Double(-a.to_double())))),
    }
}

// ---- plan evaluation -----------------------------------------------------------

const MAX_DEPTH: u32 = 512;

/// Evaluator for lowered plans. Shares all value/constructor semantics
/// with [`Evaluator`](crate::eval::Evaluator); the environment is a slot
/// frame instead of a name-searched binding list.
pub struct PlanEvaluator<'a> {
    dctx: &'a DynamicContext,
    /// Slot frame: `Plan::Slot(i)` reads `frame[i]`.
    frame: Vec<Sequence>,
    /// Pending update list produced by updating expressions.
    pub updates: Vec<Update>,
    depth: u32,
}

impl<'a> PlanEvaluator<'a> {
    pub fn new(dctx: &'a DynamicContext) -> Self {
        PlanEvaluator {
            dctx,
            frame: Vec::new(),
            updates: Vec::new(),
            depth: 0,
        }
    }

    /// Evaluate with `context` as the initial context item.
    pub fn eval_with_context(&mut self, plan: &Plan, context: NodeRef) -> Result<Sequence> {
        self.eval(plan, Some(&Focus::solo(context)))
    }

    /// Evaluate with no context item (absent focus).
    pub fn eval_no_context(&mut self, plan: &Plan) -> Result<Sequence> {
        self.eval(plan, None)
    }

    fn context_item(focus: Option<&Focus>) -> Result<Item> {
        focus
            .map(|f| f.item.clone())
            .ok_or_else(|| Error::dynamic("context item is undefined here"))
    }

    pub fn eval(&mut self, plan: &Plan, focus: Option<&Focus>) -> Result<Sequence> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            self.depth -= 1;
            return Err(Error::dynamic("expression nesting too deep"));
        }
        let r = self.eval_inner(plan, focus);
        self.depth -= 1;
        r
    }

    fn eval_inner(&mut self, plan: &Plan, focus: Option<&Focus>) -> Result<Sequence> {
        match plan {
            Plan::Const(seq) => Ok(seq.clone()),
            Plan::Slot(i) => Ok(self.frame[*i].clone()),
            Plan::FreeVar(name) => self
                .dctx
                .variables
                .get(name)
                .cloned()
                .ok_or_else(|| Error::undefined_name(format!("undefined variable ${name}"))),
            Plan::ContextItem => Ok(Sequence::one(Self::context_item(focus)?)),
            Plan::Sequence(ps) => {
                let mut out = Sequence::empty();
                for p in ps {
                    out = out.concat(self.eval(p, focus)?);
                }
                Ok(out)
            }
            Plan::FunctionCall { name, args } => {
                let mut argv = Vec::with_capacity(args.len());
                for a in args {
                    argv.push(self.eval(a, focus)?);
                }
                match name.prefix.as_deref() {
                    None => functions::call_builtin(self.dctx, &name.local, argv, focus),
                    Some("xs") => functions::call_constructor(&name.local, argv),
                    Some(_) => match self.dctx.host.call(name, &argv) {
                        Some(r) => r,
                        None => Err(Error::unknown_function(format!(
                            "unknown function {}()",
                            name.lexical()
                        ))),
                    },
                }
            }
            Plan::Path { root, steps } => {
                let start: Sequence = if *root {
                    match Self::context_item(focus)? {
                        Item::Node(n) => Sequence::one(n.doc.root()),
                        Item::Atomic(_) => {
                            return Err(Error::type_error("`/` requires a node context item"))
                        }
                    }
                } else {
                    match focus {
                        Some(f) => Sequence::one(f.item.clone()),
                        None => {
                            return Err(Error::dynamic("relative path with absent context item"))
                        }
                    }
                };
                self.eval_steps(start, steps)
            }
            Plan::Step {
                axis,
                test,
                predicates,
            } => {
                let node = match Self::context_item(focus)? {
                    Item::Node(n) => n,
                    Item::Atomic(_) => {
                        return Err(Error::type_error("axis step on an atomic context item"))
                    }
                };
                let axis_result = Sequence(
                    axis_candidates(*axis, &node)
                        .into_iter()
                        .filter(|n| ptest_matches(*axis, n, test))
                        .map(Item::Node)
                        .collect(),
                );
                self.apply_predicates(axis_result, predicates)
            }
            Plan::Filter { base, predicates } => {
                let seq = self.eval(base, focus)?;
                self.apply_predicates(seq, predicates)
            }
            Plan::RelativePath {
                base,
                step,
                descend,
            } => {
                let seq = self.eval(base, focus)?;
                if *descend {
                    let dos = Plan::Step {
                        axis: Axis::DescendantOrSelf,
                        test: PTest::AnyKind,
                        predicates: vec![],
                    };
                    let mid = self.eval_steps(seq, std::slice::from_ref(&dos))?;
                    self.eval_steps(mid, std::slice::from_ref(step))
                } else {
                    self.eval_steps(seq, std::slice::from_ref(step))
                }
            }
            Plan::Or(a, b) => {
                if self.eval(a, focus)?.effective_boolean()? {
                    return Ok(Sequence::bool(true));
                }
                Ok(Sequence::bool(self.eval(b, focus)?.effective_boolean()?))
            }
            Plan::And(a, b) => {
                if !self.eval(a, focus)?.effective_boolean()? {
                    return Ok(Sequence::bool(false));
                }
                Ok(Sequence::bool(self.eval(b, focus)?.effective_boolean()?))
            }
            Plan::Comparison { op, left, right } => self.eval_comparison(*op, left, right, focus),
            Plan::Arith { op, left, right } => self.eval_arith(*op, left, right, focus),
            Plan::Set { op, left, right } => self.eval_set(*op, left, right, focus),
            Plan::Range(a, b) => {
                let la = self.eval(a, focus)?;
                let lb = self.eval(b, focus)?;
                if la.is_empty() || lb.is_empty() {
                    return Ok(Sequence::empty());
                }
                let from = la.exactly_one()?.atomize().cast_integer()?;
                let to = lb.exactly_one()?.atomize().cast_integer()?;
                Ok((from..=to).map(|i| Item::Atomic(Atomic::Int(i))).collect())
            }
            Plan::Neg(p) => {
                let v = self.eval(p, focus)?;
                if v.is_empty() {
                    return Ok(Sequence::empty());
                }
                match v.exactly_one()?.atomize() {
                    Atomic::Int(i) => Ok(Sequence::int(-i)),
                    a => Ok(Sequence::one(Atomic::Double(-a.to_double()))),
                }
            }
            Plan::If { cond, then, els } => {
                if self.eval(cond, focus)?.effective_boolean()? {
                    self.eval(then, focus)
                } else {
                    match els {
                        Some(e) => self.eval(e, focus),
                        None => Ok(Sequence::empty()),
                    }
                }
            }
            Plan::Flwor {
                clauses,
                where_,
                order,
                ret,
            } => self.eval_flwor(clauses, where_.as_deref(), order, ret, focus),
            Plan::Quantified {
                every,
                bindings,
                satisfies,
            } => {
                let result = self.quantify(*every, bindings, 0, satisfies, focus)?;
                Ok(Sequence::bool(result))
            }
            Plan::DirectElement {
                name,
                attrs,
                content,
            } => {
                let mut eattrs: Vec<(QName, String)> = Vec::new();
                for (an, parts) in attrs {
                    let mut value = String::new();
                    for p in parts {
                        match p {
                            PAttrPart::Text(t) => value.push_str(t),
                            PAttrPart::Expr(e) => {
                                let v = self.eval(e, focus)?;
                                value.push_str(&atomics_joined(&v));
                            }
                        }
                    }
                    eattrs.push((an.clone(), value));
                }
                let mut seq = Sequence::empty();
                for c in content {
                    match c {
                        PContent::Text(t) => seq.0.push(Item::Node(text_node(t))),
                        PContent::Expr(e) => {
                            let v = self.eval(e, focus)?;
                            seq = seq.concat(v);
                        }
                    }
                }
                let node = assemble_element(name.clone(), &eattrs, seq)?;
                Ok(Sequence::one(node))
            }
            Plan::ComputedElement { name, content } => {
                let n = self.eval(name, focus)?;
                let qn = QName::parse_lexical(&n.string_value()?)
                    .ok_or_else(|| Error::dynamic("invalid computed element name"))?;
                let seq = self.eval(content, focus)?;
                let node = assemble_element(qn, &[], seq)?;
                Ok(Sequence::one(node))
            }
            Plan::ComputedAttribute { name, content } => {
                let n = self.eval(name, focus)?;
                let qn = QName::parse_lexical(&n.string_value()?)
                    .ok_or_else(|| Error::dynamic("invalid computed attribute name"))?;
                let v = self.eval(content, focus)?;
                let value = atomics_joined(&v);
                let mut b = DocBuilder::new();
                b.start("attr-holder").attr(qn, value).end();
                let doc = b.finish();
                let attr = doc.document_element().expect("holder").attributes()[0].clone();
                Ok(Sequence::one(attr))
            }
            Plan::ComputedText(e) => {
                let v = self.eval(e, focus)?;
                if v.is_empty() {
                    return Ok(Sequence::empty());
                }
                let mut b = DocBuilder::new();
                b.text(atomics_joined(&v));
                let doc = b.finish();
                let t = doc.root().children().first().cloned();
                Ok(match t {
                    Some(n) => Sequence::one(n),
                    None => Sequence::empty(),
                })
            }
            Plan::ComputedComment(e) => {
                let v = self.eval(e, focus)?;
                let mut b = DocBuilder::new();
                b.comment(atomics_joined(&v));
                let doc = b.finish();
                Ok(Sequence::one(doc.root().children()[0].clone()))
            }
            Plan::ComputedDocument(e) => {
                let seq = self.eval(e, focus)?;
                let mut b = DocBuilder::new();
                crate::eval::append_content(&mut b, &seq, &mut false)?;
                let doc = b.finish();
                Ok(Sequence::one(doc.root()))
            }
            Plan::Enqueue {
                message,
                queue,
                props,
            } => {
                let seq = self.eval(message, focus)?;
                let doc = sequence_to_document(&seq)?;
                let mut eprops = Vec::new();
                for (pname, pexpr) in props {
                    let v = self.eval(pexpr, focus)?;
                    let atom = match v.0.as_slice() {
                        [] => Atomic::Str(String::new()),
                        [item] => item.atomize(),
                        _ => {
                            return Err(Error::type_error(format!(
                                "property `{pname}` value must be a single item"
                            )))
                        }
                    };
                    eprops.push((pname.clone(), atom));
                }
                self.updates.push(Update::Enqueue {
                    queue: queue.clone(),
                    message: doc,
                    props: eprops,
                });
                Ok(Sequence::empty())
            }
            Plan::Reset { slicing, key } => {
                let key_atom = match key {
                    Some(k) => {
                        let v = self.eval(k, focus)?;
                        Some(v.exactly_one()?.atomize())
                    }
                    None => None,
                };
                self.updates.push(Update::Reset {
                    slicing: slicing.clone(),
                    key: key_atom,
                });
                Ok(Sequence::empty())
            }
            Plan::Insert {
                source,
                pos,
                target,
            } => {
                let content = self.eval_nodes(source, focus)?;
                let t = self.eval_single_node(target, focus)?;
                self.updates.push(Update::Insert {
                    target: t,
                    pos: *pos,
                    content,
                });
                Ok(Sequence::empty())
            }
            Plan::Delete { target } => {
                for t in self.eval_nodes(target, focus)? {
                    self.updates.push(Update::Delete { target: t });
                }
                Ok(Sequence::empty())
            }
            Plan::Replace {
                target,
                source,
                value_of,
            } => {
                let t = self.eval_single_node(target, focus)?;
                if *value_of {
                    let v = self.eval(source, focus)?;
                    self.updates.push(Update::ReplaceValue {
                        target: t,
                        value: atomics_joined(&v),
                    });
                } else {
                    let content = self.eval_nodes(source, focus)?;
                    self.updates.push(Update::Replace { target: t, content });
                }
                Ok(Sequence::empty())
            }
            Plan::Rename { target, name } => {
                let t = self.eval_single_node(target, focus)?;
                let n = self.eval(name, focus)?;
                let qn = QName::parse_lexical(&n.string_value()?)
                    .ok_or_else(|| Error::dynamic("invalid rename target name"))?;
                self.updates.push(Update::Rename {
                    target: t,
                    name: qn,
                });
                Ok(Sequence::empty())
            }
            Plan::Cast { expr, ty } => {
                let v = self.eval(expr, focus)?;
                if v.is_empty() {
                    return Ok(Sequence::empty());
                }
                let a = v.exactly_one()?.atomize();
                Ok(Sequence::one(cast_atomic(&a, ty)?))
            }
            Plan::InstanceOf { expr, ty } => {
                let v = self.eval(expr, focus)?;
                let matches = match v.0.as_slice() {
                    [Item::Atomic(a)] => a.type_name() == ty,
                    [Item::Node(_)] => ty == "node()" || ty == "item()",
                    _ => false,
                };
                Ok(Sequence::bool(matches))
            }
            Plan::Exists { root, steps } => {
                let start: NodeRef = if *root {
                    match Self::context_item(focus)? {
                        Item::Node(n) => n.doc.root(),
                        Item::Atomic(_) => {
                            return Err(Error::type_error("`/` requires a node context item"))
                        }
                    }
                } else {
                    match focus {
                        Some(f) => match &f.item {
                            Item::Node(n) => n.clone(),
                            Item::Atomic(_) => {
                                return Err(Error::type_error(
                                    "axis step on an atomic context item",
                                ))
                            }
                        },
                        None => {
                            return Err(Error::dynamic("relative path with absent context item"))
                        }
                    }
                };
                let found = step_exists(&start, steps);
                if found {
                    EBV_SHORT_CIRCUITS.fetch_add(1, AtomicOrdering::Relaxed);
                }
                Ok(Sequence::bool(found))
            }
            Plan::AggregateRead { spec, fallback } => match self.dctx.host.aggregate(spec) {
                Some(r) => r,
                None => self.eval(fallback, focus),
            },
        }
    }

    // ---- paths ---------------------------------------------------------------

    fn eval_steps(&mut self, mut current: Sequence, steps: &[Plan]) -> Result<Sequence> {
        for (idx, step) in steps.iter().enumerate() {
            let is_last = idx + 1 == steps.len();
            let size = current.len();
            let mut result = Sequence::empty();
            for (i, item) in current.0.iter().enumerate() {
                let f = Focus {
                    item: item.clone(),
                    pos: i + 1,
                    size,
                };
                let part = self.eval(step, Some(&f))?;
                result = result.concat(part);
            }
            let all_nodes = result.0.iter().all(|i| matches!(i, Item::Node(_)));
            if all_nodes {
                result = result.document_order_dedup()?;
            } else if !is_last {
                return Err(Error::type_error(
                    "intermediate path step produced atomic values",
                ));
            } else if result.0.iter().any(|i| matches!(i, Item::Node(_))) {
                return Err(Error::type_error("path step mixes nodes and atomic values"));
            }
            current = result;
        }
        Ok(current)
    }

    fn apply_predicates(&mut self, mut seq: Sequence, predicates: &[Plan]) -> Result<Sequence> {
        for pred in predicates {
            let size = seq.len();
            let mut kept = Vec::new();
            for (i, item) in seq.0.iter().enumerate() {
                let f = Focus {
                    item: item.clone(),
                    pos: i + 1,
                    size,
                };
                let v = self.eval(pred, Some(&f))?;
                // Numeric predicate = positional test.
                let keep = match v.0.as_slice() {
                    [Item::Atomic(a)] if a.is_numeric() => a.to_double() == (i + 1) as f64,
                    _ => v.effective_boolean()?,
                };
                if keep {
                    kept.push(item.clone());
                }
            }
            seq = Sequence(kept);
        }
        Ok(seq)
    }

    // ---- comparisons, arithmetic, sets ----------------------------------------

    fn eval_comparison(
        &mut self,
        op: CompOp,
        left: &Plan,
        right: &Plan,
        focus: Option<&Focus>,
    ) -> Result<Sequence> {
        let l = self.eval(left, focus)?;
        let r = self.eval(right, focus)?;
        use CompOp::*;
        match op {
            GenEq | GenNe | GenLt | GenLe | GenGt | GenGe => {
                let la = l.atomized();
                let ra = r.atomized();
                for a in &la {
                    for b in &ra {
                        if let Some(ord) = a.value_cmp(b) {
                            let hit = match op {
                                GenEq => ord == Ordering::Equal,
                                GenNe => ord != Ordering::Equal,
                                GenLt => ord == Ordering::Less,
                                GenLe => ord != Ordering::Greater,
                                GenGt => ord == Ordering::Greater,
                                GenGe => ord != Ordering::Less,
                                _ => unreachable!(),
                            };
                            if hit {
                                return Ok(Sequence::bool(true));
                            }
                        } else if matches!(op, GenNe) {
                            // Incomparable values are "not equal".
                            return Ok(Sequence::bool(true));
                        }
                    }
                }
                Ok(Sequence::bool(false))
            }
            ValEq | ValNe | ValLt | ValLe | ValGt | ValGe => {
                if l.is_empty() || r.is_empty() {
                    return Ok(Sequence::empty());
                }
                let a = l.exactly_one()?.atomize();
                let b = r.exactly_one()?.atomize();
                let ord = a.value_cmp(&b).ok_or_else(|| {
                    Error::type_error(format!(
                        "cannot compare {} with {}",
                        a.type_name(),
                        b.type_name()
                    ))
                })?;
                let hit = match op {
                    ValEq => ord == Ordering::Equal,
                    ValNe => ord != Ordering::Equal,
                    ValLt => ord == Ordering::Less,
                    ValLe => ord != Ordering::Greater,
                    ValGt => ord == Ordering::Greater,
                    ValGe => ord != Ordering::Less,
                    _ => unreachable!(),
                };
                Ok(Sequence::bool(hit))
            }
            Is | Precedes | Follows => {
                if l.is_empty() || r.is_empty() {
                    return Ok(Sequence::empty());
                }
                let a = l
                    .exactly_one()?
                    .as_node()
                    .ok_or_else(|| Error::type_error("node comparison on atomic value"))?
                    .clone();
                let b = r
                    .exactly_one()?
                    .as_node()
                    .ok_or_else(|| Error::type_error("node comparison on atomic value"))?
                    .clone();
                let hit = match op {
                    Is => a.is_same_node(&b),
                    Precedes => a < b,
                    Follows => a > b,
                    _ => unreachable!(),
                };
                Ok(Sequence::bool(hit))
            }
        }
    }

    fn eval_arith(
        &mut self,
        op: ArithOp,
        left: &Plan,
        right: &Plan,
        focus: Option<&Focus>,
    ) -> Result<Sequence> {
        let l = self.eval(left, focus)?;
        let r = self.eval(right, focus)?;
        if l.is_empty() || r.is_empty() {
            return Ok(Sequence::empty());
        }
        let a = l.exactly_one()?.atomize();
        let b = r.exactly_one()?.atomize();
        // Date/time arithmetic first.
        match (&a, op, &b) {
            (Atomic::DateTime(t), ArithOp::Add, Atomic::Duration(d))
            | (Atomic::Duration(d), ArithOp::Add, Atomic::DateTime(t)) => {
                return Ok(Sequence::one(Atomic::DateTime(t + d)));
            }
            (Atomic::DateTime(t), ArithOp::Sub, Atomic::Duration(d)) => {
                return Ok(Sequence::one(Atomic::DateTime(t - d)));
            }
            (Atomic::DateTime(t1), ArithOp::Sub, Atomic::DateTime(t2)) => {
                return Ok(Sequence::one(Atomic::Duration(t1 - t2)));
            }
            (Atomic::Duration(d1), ArithOp::Add, Atomic::Duration(d2)) => {
                return Ok(Sequence::one(Atomic::Duration(d1 + d2)));
            }
            (Atomic::Duration(d1), ArithOp::Sub, Atomic::Duration(d2)) => {
                return Ok(Sequence::one(Atomic::Duration(d1 - d2)));
            }
            (Atomic::Duration(d), ArithOp::Mul, n) | (n, ArithOp::Mul, Atomic::Duration(d))
                if n.is_numeric() =>
            {
                return Ok(Sequence::one(Atomic::Duration(
                    (*d as f64 * n.to_double()) as i64,
                )));
            }
            _ => {}
        }
        let both_int = matches!(a, Atomic::Int(_)) && matches!(b, Atomic::Int(_));
        let (x, y) = (a.to_double(), b.to_double());
        let result = match op {
            ArithOp::Add => x + y,
            ArithOp::Sub => x - y,
            ArithOp::Mul => x * y,
            ArithOp::Div => {
                if y == 0.0 && both_int {
                    return Err(Error::division_by_zero());
                }
                x / y
            }
            ArithOp::IDiv => {
                if y == 0.0 {
                    return Err(Error::division_by_zero());
                }
                return Ok(Sequence::int((x / y).trunc() as i64));
            }
            ArithOp::Mod => {
                if y == 0.0 {
                    return Err(Error::division_by_zero());
                }
                x % y
            }
        };
        if both_int && !matches!(op, ArithOp::Div) {
            Ok(Sequence::int(result as i64))
        } else {
            Ok(Sequence::one(Atomic::Double(result)))
        }
    }

    fn eval_set(
        &mut self,
        op: SetOp,
        left: &Plan,
        right: &Plan,
        focus: Option<&Focus>,
    ) -> Result<Sequence> {
        let l = self.eval(left, focus)?;
        let r = self.eval(right, focus)?;
        let as_nodes = |s: &Sequence| -> Result<Vec<NodeRef>> {
            s.0.iter()
                .map(|i| {
                    i.as_node()
                        .cloned()
                        .ok_or_else(|| Error::type_error("set operand must be nodes"))
                })
                .collect()
        };
        let ln = as_nodes(&l)?;
        let rn = as_nodes(&r)?;
        let identity = |n: &NodeRef| (n.doc.doc_seq, n.id);
        let combined: Vec<NodeRef> = match op {
            SetOp::Union => ln.iter().chain(rn.iter()).cloned().collect(),
            SetOp::Intersect => {
                let rset: std::collections::HashSet<_> = rn.iter().map(identity).collect();
                ln.iter()
                    .filter(|n| rset.contains(&identity(n)))
                    .cloned()
                    .collect()
            }
            SetOp::Except => {
                let rset: std::collections::HashSet<_> = rn.iter().map(identity).collect();
                ln.iter()
                    .filter(|n| !rset.contains(&identity(n)))
                    .cloned()
                    .collect()
            }
        };
        Sequence(combined.into_iter().map(Item::Node).collect()).document_order_dedup()
    }

    // ---- FLWOR / quantifiers ---------------------------------------------------

    fn eval_flwor(
        &mut self,
        clauses: &[PClause],
        where_: Option<&Plan>,
        order: &[POrderSpec],
        ret: &Plan,
        focus: Option<&Focus>,
    ) -> Result<Sequence> {
        let base_len = self.frame.len();
        if order.is_empty() {
            let mut out = Sequence::empty();
            self.stream_tuples(clauses, 0, focus, &mut |ev| {
                let passed = match where_ {
                    Some(w) => ev.eval(w, focus)?.effective_boolean()?,
                    None => true,
                };
                if passed {
                    out = std::mem::take(&mut out).concat(ev.eval(ret, focus)?);
                }
                Ok(())
            })?;
            debug_assert_eq!(self.frame.len(), base_len);
            return Ok(out);
        }

        let n_slots = clause_slots(clauses);
        let mut survivors: Vec<(Vec<Sequence>, Vec<Sequence>)> = Vec::new();
        self.stream_tuples(clauses, 0, focus, &mut |ev| {
            let passed = match where_ {
                Some(w) => ev.eval(w, focus)?.effective_boolean()?,
                None => true,
            };
            if passed {
                let mut keys = Vec::with_capacity(order.len());
                for spec in order {
                    keys.push(ev.eval(&spec.key, focus)?);
                }
                let values = ev.frame[ev.frame.len() - n_slots..].to_vec();
                survivors.push((values, keys));
            }
            Ok(())
        })?;
        debug_assert_eq!(self.frame.len(), base_len);

        let flags: Vec<(bool, bool)> = order
            .iter()
            .map(|o| (o.descending, o.empty_greatest))
            .collect();
        survivors.sort_by(|(_, ka), (_, kb)| order_cmp(&flags, ka, kb));

        let mut out = Sequence::empty();
        for (values, _) in survivors {
            let n = values.len();
            self.frame.extend(values);
            let r = self.eval(ret, focus);
            self.frame.truncate(self.frame.len() - n);
            out = out.concat(r?);
        }
        Ok(out)
    }

    fn stream_tuples(
        &mut self,
        clauses: &[PClause],
        idx: usize,
        focus: Option<&Focus>,
        leaf: &mut dyn FnMut(&mut Self) -> Result<()>,
    ) -> Result<()> {
        if idx == clauses.len() {
            return leaf(self);
        }
        match &clauses[idx] {
            PClause::Let { value } => {
                let v = self.eval(value, focus)?;
                self.frame.push(v);
                let r = self.stream_tuples(clauses, idx + 1, focus, leaf);
                self.frame.pop();
                r
            }
            PClause::For { at, source } => {
                let src = self.eval(source, focus)?;
                for (i, item) in src.0.iter().enumerate() {
                    self.frame.push(Sequence::one(item.clone()));
                    if *at {
                        self.frame.push(Sequence::int(i as i64 + 1));
                    }
                    let r = self.stream_tuples(clauses, idx + 1, focus, leaf);
                    if *at {
                        self.frame.pop();
                    }
                    self.frame.pop();
                    r?;
                }
                Ok(())
            }
        }
    }

    fn quantify(
        &mut self,
        every: bool,
        bindings: &[Plan],
        idx: usize,
        satisfies: &Plan,
        focus: Option<&Focus>,
    ) -> Result<bool> {
        if idx == bindings.len() {
            return self.eval(satisfies, focus)?.effective_boolean();
        }
        let src = self.eval(&bindings[idx], focus)?;
        for item in src.0 {
            self.frame.push(Sequence::one(item));
            let hit = self.quantify(every, bindings, idx + 1, satisfies, focus);
            self.frame.pop();
            let hit = hit?;
            if every && !hit {
                return Ok(false);
            }
            if !every && hit {
                return Ok(true);
            }
        }
        Ok(every)
    }

    // ---- updating helpers ------------------------------------------------------

    fn eval_nodes(&mut self, p: &Plan, focus: Option<&Focus>) -> Result<Vec<NodeRef>> {
        let v = self.eval(p, focus)?;
        v.0.into_iter()
            .map(|i| match i {
                Item::Node(n) => Ok(n),
                Item::Atomic(a) => Ok(text_node(&a.to_str())),
            })
            .collect()
    }

    fn eval_single_node(&mut self, p: &Plan, focus: Option<&Focus>) -> Result<NodeRef> {
        let v = self.eval(p, focus)?;
        match v.exactly_one()? {
            Item::Node(n) => Ok(n.clone()),
            Item::Atomic(_) => Err(Error::type_error("update target must be a node")),
        }
    }
}

/// Depth-first existence test over a predicate-free step chain; returns as
/// soon as one full match is found.
fn step_exists(node: &NodeRef, steps: &[(Axis, PTest)]) -> bool {
    let Some(((axis, test), rest)) = steps.split_first() else {
        return true;
    };
    axis_candidates(*axis, node)
        .into_iter()
        .any(|cand| ptest_matches(*axis, &cand, test) && step_exists(&cand, rest))
}

fn clause_slots(clauses: &[PClause]) -> usize {
    clauses
        .iter()
        .map(|c| match c {
            PClause::For { at: true, .. } => 2,
            _ => 1,
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::StaticContext;
    use crate::eval::Evaluator;
    use crate::parser::parse_expr;

    fn doc() -> std::sync::Arc<demaq_xml::Document> {
        demaq_xml::parse(
            "<order status='open'><item n='1'>widget</item><item n='2'>gadget</item>\
             <total>42</total></order>",
        )
        .unwrap()
    }

    fn both(query: &str) -> (Result<Sequence>, Result<Sequence>) {
        let sctx = StaticContext::default();
        let dctx = DynamicContext::new(std::sync::Arc::new(crate::context::NoHost));
        let expr = parse_expr(query).unwrap();
        let plan = lower(&expr);
        let d = doc();
        let reference = Evaluator::new(&sctx, &dctx).eval_with_context(&expr, d.root());
        let lowered = PlanEvaluator::new(&dctx).eval_with_context(&plan, d.root());
        (reference, lowered)
    }

    fn assert_same(query: &str) {
        let (reference, lowered) = both(query);
        match (&reference, &lowered) {
            (Ok(a), Ok(b)) => {
                let fmt = |s: &Sequence| {
                    s.0.iter()
                        .map(|i| match i {
                            Item::Atomic(a) => format!("{}:{}", a.type_name(), a.to_str()),
                            Item::Node(n) => demaq_xml::serializer::serialize_node(n),
                        })
                        .collect::<Vec<_>>()
                };
                assert_eq!(fmt(a), fmt(b), "mismatch on `{query}`");
            }
            (Err(_), Err(_)) => {}
            _ => panic!("divergence on `{query}`: ref={reference:?} plan={lowered:?}"),
        }
    }

    #[test]
    fn lowered_plan_matches_reference_on_paths_and_flwor() {
        for q in [
            "//item",
            "//item/@n",
            "/order/item[1]",
            "/order/item[@n = '2']",
            "count(//item)",
            "if (//total) then 'y' else 'n'",
            "if (//missing) then 'y' else 'n'",
            "for $i in //item return string($i)",
            "for $i at $p in //item order by $p descending return $i/@n",
            "for $i in //item where $i/@n = '1' return $i",
            "let $t := //total return $t + 0",
            "some $i in //item satisfies $i = 'widget'",
            "every $i in //item satisfies $i = 'widget'",
            "//item union //total",
            "//item intersect //item[1]",
            "//item except //item[1]",
            "1 + 2 * 3",
            "(1, 2) = (2, 3)",
            "-(//total)",
            "'a' , 'b'",
            "1 to 3",
            "//total cast as xs:integer",
            "string-join((for $i in //item return string($i)), ',')",
        ] {
            assert_same(q);
        }
    }

    #[test]
    fn lowered_plan_matches_reference_on_errors() {
        for q in [
            "1 div 0",
            "$undefined",
            "(//item)/(1 div 0)",
            "('a','b') + 1",
        ] {
            assert_same(q);
        }
    }

    #[test]
    fn variables_resolve_to_slots() {
        let expr = parse_expr("for $x in 1 to 3 let $y := $x return $y").unwrap();
        let plan = lower(&expr);
        fn has_free(p: &Plan) -> bool {
            match p {
                Plan::FreeVar(_) => true,
                Plan::Flwor { clauses, ret, .. } => {
                    clauses.iter().any(|c| match c {
                        PClause::Let { value } => has_free(value),
                        PClause::For { source, .. } => has_free(source),
                    }) || has_free(ret)
                }
                _ => false,
            }
        }
        assert!(!has_free(&plan), "lexical vars must lower to slots: {plan:?}");
    }

    #[test]
    fn constants_fold() {
        let expr = parse_expr("if (true()) then 1 + 0 else 2").unwrap();
        // The cond folds away; the branch remains (arith is not folded —
        // it stays an Arith node, which is fine).
        let plan = lower(&expr);
        assert!(
            !matches!(plan, Plan::If { .. }),
            "constant condition must fold: {plan:?}"
        );
        let expr = parse_expr("('a', 'b', 'c')").unwrap();
        assert!(matches!(lower(&expr), Plan::Const(_)));
    }

    #[test]
    fn ebv_paths_become_exists_and_short_circuit() {
        let expr = parse_expr("if (//item) then 1 else 0").unwrap();
        let plan = lower(&expr);
        let Plan::If { cond, .. } = &plan else {
            panic!("expected If: {plan:?}");
        };
        assert!(matches!(**cond, Plan::Exists { .. }), "cond: {cond:?}");

        let dctx = DynamicContext::new(std::sync::Arc::new(crate::context::NoHost));
        let before = ebv_short_circuits_total();
        let d = doc();
        let r = PlanEvaluator::new(&dctx)
            .eval_with_context(&plan, d.root())
            .unwrap();
        assert_eq!(r.0.len(), 1);
        assert!(ebv_short_circuits_total() > before);
    }

    #[test]
    fn predicates_do_not_become_exists() {
        // A numeric predicate is positional; EBV-lowering must not apply.
        assert_same("/order/item[1]/@n");
        let expr = parse_expr("//item[//total]").unwrap();
        let plan = lower(&expr);
        fn no_exists_in_predicates(p: &Plan) -> bool {
            match p {
                Plan::Step { predicates, .. } => {
                    predicates.iter().all(|q| !matches!(q, Plan::Exists { .. }))
                }
                Plan::Path { steps, .. } => steps.iter().all(no_exists_in_predicates),
                _ => true,
            }
        }
        assert!(no_exists_in_predicates(&plan));
    }
}
