//! Pending update lists (XQuery Update Facility) with Demaq's queue
//! extensions.
//!
//! Updating expressions never mutate anything during evaluation. They append
//! [`Update`] records to the evaluator's pending list; the caller applies
//! them afterwards — the paper's snapshot semantics ("pending update list of
//! update primitives that are applied after the entire statement has been
//! evaluated", Sec. 3.2).
//!
//! Demaq's rule engine consumes [`Update::Enqueue`] and [`Update::Reset`].
//! The XQUF tree primitives operate copy-on-write via
//! [`apply_tree_updates`], producing *new* documents — stored messages are
//! immutable (append-only store), so tree updates are only legal against
//! trees constructed inside the rule body.

use crate::ast::InsertPos;
use crate::error::{Error, Result};
use crate::value::Atomic;
use demaq_xml::{DocBuilder, Document, NodeId, NodeKind, NodeRef, QName};
use std::collections::HashMap;
use std::sync::Arc;

/// One pending update primitive.
#[derive(Debug, Clone)]
pub enum Update {
    /// `do enqueue <msg> into <queue> with p value v ...` — the central
    /// Demaq action (paper Sec. 3.4).
    Enqueue {
        queue: QName,
        message: Arc<Document>,
        /// Explicit property values supplied via `with ... value ...`.
        props: Vec<(String, Atomic)>,
    },
    /// `do reset [slicing key k]` — begin a new slice lifetime
    /// (paper Sec. 3.5.3).
    Reset {
        slicing: Option<QName>,
        key: Option<Atomic>,
    },
    /// XQUF insert.
    Insert {
        target: NodeRef,
        pos: InsertPos,
        content: Vec<NodeRef>,
    },
    /// XQUF delete.
    Delete { target: NodeRef },
    /// XQUF replace (node).
    Replace {
        target: NodeRef,
        content: Vec<NodeRef>,
    },
    /// XQUF replace value of (string value).
    ReplaceValue { target: NodeRef, value: String },
    /// XQUF rename.
    Rename { target: NodeRef, name: QName },
}

impl Update {
    /// Is this one of the Demaq queue primitives (vs. an XQUF tree update)?
    pub fn is_queue_update(&self) -> bool {
        matches!(self, Update::Enqueue { .. } | Update::Reset { .. })
    }
}

/// Per-node modification plan assembled from the tree updates of one doc.
#[derive(Default)]
struct NodePlan {
    delete: bool,
    rename: Option<QName>,
    replace: Option<Vec<NodeRef>>,
    replace_value: Option<String>,
    insert_first: Vec<NodeRef>,
    insert_last: Vec<NodeRef>,
    insert_before: Vec<NodeRef>,
    insert_after: Vec<NodeRef>,
}

/// Apply all *tree* updates on the list, returning the rebuilt documents
/// keyed by the original document's sequence number. Queue updates are
/// ignored (the engine handles those). Errors on conflicting updates
/// (two `replace` on the same node — XUDY0016-style).
pub fn apply_tree_updates(updates: &[Update]) -> Result<HashMap<u64, Arc<Document>>> {
    // Group plans per (doc, node).
    type DocPlans = HashMap<u64, (NodeRef, HashMap<NodeId, NodePlan>)>;
    let mut docs: DocPlans = HashMap::new();
    fn plan_for<'a>(docs: &'a mut DocPlans, node: &NodeRef) -> &'a mut NodePlan {
        let entry = docs
            .entry(node.doc.doc_seq)
            .or_insert_with(|| (node.doc.root(), HashMap::new()));
        entry.1.entry(node.id).or_default()
    }
    for u in updates {
        match u {
            Update::Enqueue { .. } | Update::Reset { .. } => {}
            Update::Delete { target } => plan_for(&mut docs, target).delete = true,
            Update::Rename { target, name } => {
                let p = plan_for(&mut docs, target);
                if p.rename.is_some() {
                    return Err(Error::update("two renames target the same node"));
                }
                p.rename = Some(name.clone());
            }
            Update::Replace { target, content } => {
                if target.parent().is_none() {
                    return Err(Error::update("cannot replace a root node"));
                }
                let p = plan_for(&mut docs, target);
                if p.replace.is_some() {
                    return Err(Error::update("two replaces target the same node"));
                }
                p.replace = Some(content.clone());
            }
            Update::ReplaceValue { target, value } => {
                let p = plan_for(&mut docs, target);
                if p.replace_value.is_some() {
                    return Err(Error::update("two value replaces target the same node"));
                }
                p.replace_value = Some(value.clone());
            }
            Update::Insert {
                target,
                pos,
                content,
            } => {
                let p = plan_for(&mut docs, target);
                match pos {
                    InsertPos::Into | InsertPos::IntoAsLast => {
                        p.insert_last.extend(content.iter().cloned())
                    }
                    InsertPos::IntoAsFirst => p.insert_first.extend(content.iter().cloned()),
                    InsertPos::Before => p.insert_before.extend(content.iter().cloned()),
                    InsertPos::After => p.insert_after.extend(content.iter().cloned()),
                }
            }
        }
    }

    let mut out = HashMap::new();
    for (seq, (root, plans)) in docs {
        let mut b = DocBuilder::new();
        rebuild(&root, &plans, &mut b)?;
        out.insert(seq, b.finish());
    }
    Ok(out)
}

fn rebuild(node: &NodeRef, plans: &HashMap<NodeId, NodePlan>, b: &mut DocBuilder) -> Result<()> {
    let plan = plans.get(&node.id);
    if let Some(p) = plan {
        for n in &p.insert_before {
            b.copy_node(n);
        }
        if p.delete {
            for n in &p.insert_after {
                b.copy_node(n);
            }
            return Ok(());
        }
        if let Some(content) = &p.replace {
            for n in content {
                b.copy_node(n);
            }
            for n in &p.insert_after {
                b.copy_node(n);
            }
            return Ok(());
        }
    }
    match node.kind() {
        NodeKind::Document => {
            for c in node.children() {
                rebuild(&c, plans, b)?;
            }
        }
        NodeKind::Element(q) => {
            let name = plan
                .and_then(|p| p.rename.clone())
                .unwrap_or_else(|| q.clone());
            b.start(name);
            for a in node.attributes() {
                // Attribute-level plans: delete / rename / replace value.
                if let Some(ap) = plans.get(&a.id) {
                    if ap.delete {
                        continue;
                    }
                    if let NodeKind::Attribute(an, av) = a.kind() {
                        let name = ap.rename.clone().unwrap_or_else(|| an.clone());
                        let value = ap.replace_value.clone().unwrap_or_else(|| av.clone());
                        b.attr(name, value);
                    }
                    continue;
                }
                if let NodeKind::Attribute(an, av) = a.kind() {
                    b.attr(an.clone(), av.clone());
                }
            }
            if let Some(p) = plan {
                if let Some(v) = &p.replace_value {
                    b.text(v);
                    b.end();
                    if !p.insert_after.is_empty() {
                        for n in &p.insert_after {
                            b.copy_node(n);
                        }
                    }
                    return Ok(());
                }
                for n in &p.insert_first {
                    b.copy_node(n);
                }
            }
            for c in node.children() {
                rebuild(&c, plans, b)?;
            }
            if let Some(p) = plan {
                for n in &p.insert_last {
                    b.copy_node(n);
                }
            }
            b.end();
        }
        NodeKind::Text(t) => {
            let text = plan
                .and_then(|p| p.replace_value.clone())
                .unwrap_or_else(|| t.clone());
            b.text(&text);
        }
        NodeKind::Comment(c) => {
            let text = plan
                .and_then(|p| p.replace_value.clone())
                .unwrap_or_else(|| c.clone());
            b.comment(text);
        }
        NodeKind::Pi { target, data } => {
            b.pi(target.clone(), data.clone());
        }
        NodeKind::Attribute(..) => {
            return Err(Error::update(
                "attribute updates must go through the owner element",
            ));
        }
    }
    if let Some(p) = plan {
        for n in &p.insert_after {
            b.copy_node(n);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use demaq_xml::parse;

    fn find(doc: &Arc<Document>, name: &str) -> NodeRef {
        doc.root()
            .descendants()
            .into_iter()
            .find(|n| n.name().map(|q| q.local == name).unwrap_or(false))
            .unwrap()
    }

    #[test]
    fn delete_node() {
        let doc = parse("<a><b/><c/></a>").unwrap();
        let ups = vec![Update::Delete {
            target: find(&doc, "b"),
        }];
        let rebuilt = apply_tree_updates(&ups).unwrap();
        let new_doc = &rebuilt[&doc.doc_seq];
        assert_eq!(new_doc.root().to_xml(), "<a><c/></a>");
    }

    #[test]
    fn insert_positions() {
        let doc = parse("<a><b/></a>").unwrap();
        let x = parse("<x/>").unwrap().document_element().unwrap();
        let y = parse("<y/>").unwrap().document_element().unwrap();
        let z = parse("<z/>").unwrap().document_element().unwrap();
        let w = parse("<w/>").unwrap().document_element().unwrap();
        let a = find(&doc, "a");
        let b = find(&doc, "b");
        let ups = vec![
            Update::Insert {
                target: a.clone(),
                pos: InsertPos::IntoAsFirst,
                content: vec![x],
            },
            Update::Insert {
                target: a,
                pos: InsertPos::IntoAsLast,
                content: vec![y],
            },
            Update::Insert {
                target: b.clone(),
                pos: InsertPos::Before,
                content: vec![z],
            },
            Update::Insert {
                target: b,
                pos: InsertPos::After,
                content: vec![w],
            },
        ];
        let rebuilt = apply_tree_updates(&ups).unwrap();
        assert_eq!(
            rebuilt[&doc.doc_seq].root().to_xml(),
            "<a><x/><z/><b/><w/><y/></a>"
        );
    }

    #[test]
    fn replace_and_rename() {
        let doc = parse("<a><b>old</b></a>").unwrap();
        let repl = parse("<n>new</n>").unwrap().document_element().unwrap();
        let ups = vec![
            Update::Replace {
                target: find(&doc, "b"),
                content: vec![repl],
            },
            Update::Rename {
                target: find(&doc, "a"),
                name: QName::local("r"),
            },
        ];
        let rebuilt = apply_tree_updates(&ups).unwrap();
        assert_eq!(rebuilt[&doc.doc_seq].root().to_xml(), "<r><n>new</n></r>");
    }

    #[test]
    fn replace_value_of_element() {
        let doc = parse("<a><b><c/>junk</b></a>").unwrap();
        let ups = vec![Update::ReplaceValue {
            target: find(&doc, "b"),
            value: "clean".into(),
        }];
        let rebuilt = apply_tree_updates(&ups).unwrap();
        assert_eq!(rebuilt[&doc.doc_seq].root().to_xml(), "<a><b>clean</b></a>");
    }

    #[test]
    fn attribute_updates() {
        let doc = parse("<a p=\"1\" q=\"2\"/>").unwrap();
        let attrs = doc.document_element().unwrap().attributes();
        let ups = vec![
            Update::Delete {
                target: attrs[0].clone(),
            },
            Update::ReplaceValue {
                target: attrs[1].clone(),
                value: "9".into(),
            },
        ];
        let rebuilt = apply_tree_updates(&ups).unwrap();
        assert_eq!(rebuilt[&doc.doc_seq].root().to_xml(), "<a q=\"9\"/>");
    }

    #[test]
    fn conflicting_replaces_rejected() {
        let doc = parse("<a><b/></a>").unwrap();
        let r = parse("<x/>").unwrap().document_element().unwrap();
        let ups = vec![
            Update::Replace {
                target: find(&doc, "b"),
                content: vec![r.clone()],
            },
            Update::Replace {
                target: find(&doc, "b"),
                content: vec![r],
            },
        ];
        assert!(apply_tree_updates(&ups).is_err());
    }

    #[test]
    fn replacing_root_rejected() {
        let doc = parse("<a/>").unwrap();
        let r = parse("<x/>").unwrap().document_element().unwrap();
        let ups = vec![Update::Replace {
            target: doc.root(),
            content: vec![r],
        }];
        assert!(apply_tree_updates(&ups).is_err());
    }

    #[test]
    fn updates_do_not_touch_original() {
        let doc = parse("<a><b/></a>").unwrap();
        let before = doc.root().to_xml();
        let ups = vec![Update::Delete {
            target: find(&doc, "b"),
        }];
        let _ = apply_tree_updates(&ups).unwrap();
        assert_eq!(doc.root().to_xml(), before, "source document is immutable");
    }
}
