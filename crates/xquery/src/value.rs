//! The XQuery data model (XDM) subset: atomic values, items, sequences.

use crate::error::{Error, Result};
use demaq_xml::{NodeRef, QName};
use std::cmp::Ordering;
use std::fmt;

/// Atomic value types. Covers the `xs:` types the Demaq paper uses
/// (`xs:string`, `xs:boolean`, `xs:integer`, plus decimal/double merged into
/// [`Atomic::Double`] with a distinct [`Atomic::Decimal`] tag kept for
/// faithful `instance of`-style behaviour), `xs:dateTime` and
/// `xs:dayTimeDuration` as milliseconds.
#[derive(Debug, Clone)]
pub enum Atomic {
    Str(String),
    Bool(bool),
    Int(i64),
    Decimal(f64),
    Double(f64),
    /// Milliseconds since the epoch of the engine's virtual clock.
    DateTime(i64),
    /// Milliseconds.
    Duration(i64),
    QName(QName),
    /// Untyped atomic data (from atomizing nodes).
    Untyped(String),
}

impl Atomic {
    /// The `xs:` type name (used in error messages and `qs:property` typing).
    pub fn type_name(&self) -> &'static str {
        match self {
            Atomic::Str(_) => "xs:string",
            Atomic::Bool(_) => "xs:boolean",
            Atomic::Int(_) => "xs:integer",
            Atomic::Decimal(_) => "xs:decimal",
            Atomic::Double(_) => "xs:double",
            Atomic::DateTime(_) => "xs:dateTime",
            Atomic::Duration(_) => "xs:dayTimeDuration",
            Atomic::QName(_) => "xs:QName",
            Atomic::Untyped(_) => "xs:untypedAtomic",
        }
    }

    /// Canonical string form (XPath `fn:string`).
    pub fn to_str(&self) -> String {
        match self {
            Atomic::Str(s) | Atomic::Untyped(s) => s.clone(),
            Atomic::Bool(b) => b.to_string(),
            Atomic::Int(i) => i.to_string(),
            Atomic::Decimal(d) | Atomic::Double(d) => format_double(*d),
            Atomic::DateTime(ms) => format_date_time(*ms),
            Atomic::Duration(ms) => format_duration(*ms),
            Atomic::QName(q) => q.lexical(),
        }
    }

    /// Numeric view (casting untyped/strings like XPath `fn:number`); NaN on
    /// failure.
    pub fn to_double(&self) -> f64 {
        match self {
            Atomic::Int(i) => *i as f64,
            Atomic::Decimal(d) | Atomic::Double(d) => *d,
            Atomic::Bool(b) => {
                if *b {
                    1.0
                } else {
                    0.0
                }
            }
            Atomic::Str(s) | Atomic::Untyped(s) => s.trim().parse().unwrap_or(f64::NAN),
            Atomic::DateTime(ms) | Atomic::Duration(ms) => *ms as f64,
            Atomic::QName(_) => f64::NAN,
        }
    }

    /// True if this is any numeric type.
    pub fn is_numeric(&self) -> bool {
        matches!(
            self,
            Atomic::Int(_) | Atomic::Decimal(_) | Atomic::Double(_)
        )
    }

    /// Cast to boolean following `xs:boolean` constructor rules.
    pub fn cast_boolean(&self) -> Result<bool> {
        match self {
            Atomic::Bool(b) => Ok(*b),
            Atomic::Int(i) => Ok(*i != 0),
            Atomic::Decimal(d) | Atomic::Double(d) => Ok(*d != 0.0 && !d.is_nan()),
            Atomic::Str(s) | Atomic::Untyped(s) => match s.trim() {
                "true" | "1" => Ok(true),
                "false" | "0" => Ok(false),
                other => Err(Error::type_error(format!(
                    "cannot cast `{other}` to xs:boolean"
                ))),
            },
            other => Err(Error::type_error(format!(
                "cannot cast {} to xs:boolean",
                other.type_name()
            ))),
        }
    }

    /// Cast to integer following `xs:integer` constructor rules.
    pub fn cast_integer(&self) -> Result<i64> {
        match self {
            Atomic::Int(i) => Ok(*i),
            Atomic::Decimal(d) | Atomic::Double(d) => {
                if d.is_finite() {
                    Ok(*d as i64)
                } else {
                    Err(Error::type_error(
                        "cannot cast non-finite number to xs:integer",
                    ))
                }
            }
            Atomic::Bool(b) => Ok(*b as i64),
            Atomic::Str(s) | Atomic::Untyped(s) => s
                .trim()
                .parse()
                .map_err(|_| Error::type_error(format!("cannot cast `{s}` to xs:integer"))),
            other => Err(Error::type_error(format!(
                "cannot cast {} to xs:integer",
                other.type_name()
            ))),
        }
    }

    /// Value comparison (`eq`-family). Returns `None` for incomparable types.
    pub fn value_cmp(&self, other: &Atomic) -> Option<Ordering> {
        use Atomic::*;
        match (self, other) {
            (Bool(a), Bool(b)) => Some(a.cmp(b)),
            (DateTime(a), DateTime(b)) | (Duration(a), Duration(b)) => Some(a.cmp(b)),
            (QName(a), QName(b)) => Some(a.cmp(b)),
            (a, b) if a.is_numeric() && b.is_numeric() => a.to_double().partial_cmp(&b.to_double()),
            // Untyped compared with anything: cast toward the typed side.
            (Untyped(_), b) if b.is_numeric() => self.to_double().partial_cmp(&b.to_double()),
            (a, Untyped(_)) if a.is_numeric() => a.to_double().partial_cmp(&other.to_double()),
            (Untyped(a) | Str(a), Untyped(b) | Str(b)) => Some(a.as_str().cmp(b.as_str())),
            (Untyped(a), Bool(b)) => Atomic::Str(a.clone()).cast_boolean().ok().map(|v| v.cmp(b)),
            (Bool(a), Untyped(b)) => Atomic::Str(b.clone())
                .cast_boolean()
                .ok()
                .map(|v| a.cmp(&v)),
            (Untyped(a), DateTime(b)) => parse_date_time(a).map(|v| v.cmp(b)),
            (DateTime(a), Untyped(b)) => parse_date_time(b).map(|v| a.cmp(&v)),
            _ => None,
        }
    }
}

/// Render a double the XPath way: integers without a fraction.
pub fn format_double(d: f64) -> String {
    if d.is_nan() {
        "NaN".to_string()
    } else if d.is_infinite() {
        if d > 0.0 {
            "INF".to_string()
        } else {
            "-INF".to_string()
        }
    } else if d == d.trunc() && d.abs() < 1e15 {
        format!("{}", d as i64)
    } else {
        format!("{d}")
    }
}

/// Format epoch-milliseconds as an ISO-8601-ish dateTime (UTC).
pub fn format_date_time(ms: i64) -> String {
    // Civil-from-days algorithm (Howard Hinnant), UTC only.
    let secs = ms.div_euclid(1000);
    let millis = ms.rem_euclid(1000);
    let days = secs.div_euclid(86_400);
    let sod = secs.rem_euclid(86_400);
    let (h, m, s) = (sod / 3600, (sod % 3600) / 60, sod % 60);
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let mth = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if mth <= 2 { y + 1 } else { y };
    if millis == 0 {
        format!("{y:04}-{mth:02}-{d:02}T{h:02}:{m:02}:{s:02}Z")
    } else {
        format!("{y:04}-{mth:02}-{d:02}T{h:02}:{m:02}:{s:02}.{millis:03}Z")
    }
}

/// Parse an ISO-8601 dateTime (UTC / no offset) to epoch milliseconds.
pub fn parse_date_time(s: &str) -> Option<i64> {
    let s = s.trim().trim_end_matches('Z');
    let (date, time) = s.split_once('T')?;
    let mut dp = date.split('-');
    let (y, mth, d): (i64, i64, i64) = (
        dp.next()?.parse().ok()?,
        dp.next()?.parse().ok()?,
        dp.next()?.parse().ok()?,
    );
    if dp.next().is_some() || !(1..=12).contains(&mth) || !(1..=31).contains(&d) {
        return None;
    }
    let mut tp = time.split(':');
    let (h, m): (i64, i64) = (tp.next()?.parse().ok()?, tp.next()?.parse().ok()?);
    let sec_str = tp.next()?;
    if tp.next().is_some() {
        return None;
    }
    let (sec, millis) = match sec_str.split_once('.') {
        Some((s, f)) => {
            let frac: String = f.chars().chain("000".chars()).take(3).collect();
            (s.parse::<i64>().ok()?, frac.parse::<i64>().ok()?)
        }
        None => (sec_str.parse::<i64>().ok()?, 0),
    };
    // Days-from-civil (Howard Hinnant).
    let y2 = if mth <= 2 { y - 1 } else { y };
    let era = y2.div_euclid(400);
    let yoe = y2 - era * 400;
    let mp = if mth > 2 { mth - 3 } else { mth + 9 };
    let doy = (153 * mp + 2) / 5 + d - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    let days = era * 146_097 + doe - 719_468;
    Some(((days * 86_400 + h * 3600 + m * 60 + sec) * 1000) + millis)
}

/// Format milliseconds as an `xs:dayTimeDuration` lexical form.
pub fn format_duration(ms: i64) -> String {
    let neg = ms < 0;
    let mut rest = ms.unsigned_abs();
    let millis = rest % 1000;
    rest /= 1000;
    let (d, h, m, s) = (
        rest / 86_400,
        (rest % 86_400) / 3600,
        (rest % 3600) / 60,
        rest % 60,
    );
    let mut out = String::new();
    if neg {
        out.push('-');
    }
    out.push('P');
    if d > 0 {
        out.push_str(&format!("{d}D"));
    }
    out.push('T');
    if h > 0 {
        out.push_str(&format!("{h}H"));
    }
    if m > 0 {
        out.push_str(&format!("{m}M"));
    }
    if millis > 0 {
        out.push_str(&format!("{s}.{millis:03}S"));
    } else if s > 0 || (d == 0 && h == 0 && m == 0) {
        out.push_str(&format!("{s}S"));
    } else if out.ends_with('T') {
        out.pop();
    }
    out
}

/// Parse an `xs:dayTimeDuration` (`PnDTnHnMn.nS`) to milliseconds.
pub fn parse_duration(s: &str) -> Option<i64> {
    let s = s.trim();
    let (neg, s) = match s.strip_prefix('-') {
        Some(r) => (true, r),
        None => (false, s),
    };
    let s = s.strip_prefix('P')?;
    let (day_part, time_part) = match s.split_once('T') {
        Some((d, t)) => (d, Some(t)),
        None => (s, None),
    };
    let mut total: i64 = 0;
    if !day_part.is_empty() {
        let d = day_part.strip_suffix('D')?;
        total += d.parse::<i64>().ok()? * 86_400_000;
    }
    if let Some(mut t) = time_part {
        for (unit, factor) in [('H', 3_600_000i64), ('M', 60_000)] {
            if let Some(idx) = t.find(unit) {
                total += t[..idx].parse::<i64>().ok()? * factor;
                t = &t[idx + 1..];
            }
        }
        if let Some(idx) = t.find('S') {
            let secs: f64 = t[..idx].parse().ok()?;
            total += (secs * 1000.0).round() as i64;
            t = &t[idx + 1..];
        }
        if !t.is_empty() {
            return None;
        }
    }
    Some(if neg { -total } else { total })
}

/// A single XDM item: a node or an atomic value.
#[derive(Debug, Clone)]
pub enum Item {
    Node(NodeRef),
    Atomic(Atomic),
}

impl Item {
    /// Atomize: nodes become untyped atomics of their string value.
    pub fn atomize(&self) -> Atomic {
        match self {
            Item::Node(n) => Atomic::Untyped(n.string_value()),
            Item::Atomic(a) => a.clone(),
        }
    }

    /// String value of this item.
    pub fn string_value(&self) -> String {
        match self {
            Item::Node(n) => n.string_value(),
            Item::Atomic(a) => a.to_str(),
        }
    }

    /// Node accessor.
    pub fn as_node(&self) -> Option<&NodeRef> {
        match self {
            Item::Node(n) => Some(n),
            Item::Atomic(_) => None,
        }
    }
}

impl From<Atomic> for Item {
    fn from(a: Atomic) -> Self {
        Item::Atomic(a)
    }
}
impl From<NodeRef> for Item {
    fn from(n: NodeRef) -> Self {
        Item::Node(n)
    }
}

/// A (possibly empty) ordered sequence of items — the universal XQuery value.
#[derive(Debug, Clone, Default)]
pub struct Sequence(pub Vec<Item>);

impl Sequence {
    /// The empty sequence.
    pub fn empty() -> Self {
        Sequence(Vec::new())
    }

    /// A singleton sequence.
    pub fn one(item: impl Into<Item>) -> Self {
        Sequence(vec![item.into()])
    }

    /// A singleton boolean.
    pub fn bool(b: bool) -> Self {
        Sequence::one(Atomic::Bool(b))
    }

    /// A singleton integer.
    pub fn int(i: i64) -> Self {
        Sequence::one(Atomic::Int(i))
    }

    /// A singleton string.
    pub fn str(s: impl Into<String>) -> Self {
        Sequence::one(Atomic::Str(s.into()))
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    pub fn iter(&self) -> std::slice::Iter<'_, Item> {
        self.0.iter()
    }

    /// Effective boolean value (XPath 2.0 `fn:boolean` rules).
    pub fn effective_boolean(&self) -> Result<bool> {
        match self.0.as_slice() {
            [] => Ok(false),
            [Item::Node(_), ..] => Ok(true),
            [Item::Atomic(a)] => Ok(match a {
                Atomic::Bool(b) => *b,
                Atomic::Str(s) | Atomic::Untyped(s) => !s.is_empty(),
                Atomic::Int(i) => *i != 0,
                Atomic::Decimal(d) | Atomic::Double(d) => *d != 0.0 && !d.is_nan(),
                other => {
                    return Err(Error::type_error(format!(
                        "no effective boolean value for {}",
                        other.type_name()
                    )))
                }
            }),
            _ => Err(Error::type_error(
                "effective boolean value of a multi-item atomic sequence",
            )),
        }
    }

    /// Atomize the whole sequence.
    pub fn atomized(&self) -> Vec<Atomic> {
        self.0.iter().map(Item::atomize).collect()
    }

    /// Exactly-one-item accessor.
    pub fn exactly_one(&self) -> Result<&Item> {
        match self.0.as_slice() {
            [x] => Ok(x),
            other => Err(Error::type_error(format!(
                "expected exactly one item, got {}",
                other.len()
            ))),
        }
    }

    /// The string value of a zero-or-one sequence ("" when empty).
    pub fn string_value(&self) -> Result<String> {
        match self.0.as_slice() {
            [] => Ok(String::new()),
            [x] => Ok(x.string_value()),
            other => Err(Error::type_error(format!(
                "fn:string expects at most one item, got {}",
                other.len()
            ))),
        }
    }

    /// Sort into document order and remove duplicate nodes. Errors if the
    /// sequence mixes nodes and atomics (path step results must be nodes).
    pub fn document_order_dedup(mut self) -> Result<Sequence> {
        if self.0.iter().any(|i| matches!(i, Item::Atomic(_))) {
            return Err(Error::type_error("path step result contains atomic values"));
        }
        self.0.sort_by(|a, b| match (a, b) {
            (Item::Node(x), Item::Node(y)) => x.cmp(y),
            _ => Ordering::Equal,
        });
        self.0.dedup_by(|a, b| match (a, b) {
            (Item::Node(x), Item::Node(y)) => x.is_same_node(y),
            _ => false,
        });
        Ok(self)
    }

    /// Concatenate two sequences.
    pub fn concat(mut self, other: Sequence) -> Sequence {
        self.0.extend(other.0);
        self
    }
}

impl fmt::Display for Sequence {
    /// Space-joined string values — handy for tests and examples.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self.0.iter().map(Item::string_value).collect();
        write!(f, "{}", parts.join(" "))
    }
}

impl FromIterator<Item> for Sequence {
    fn from_iter<T: IntoIterator<Item = Item>>(iter: T) -> Self {
        Sequence(iter.into_iter().collect())
    }
}

impl IntoIterator for Sequence {
    type Item = Item;
    type IntoIter = std::vec::IntoIter<Item>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ebv_rules() {
        assert!(!Sequence::empty().effective_boolean().unwrap());
        assert!(Sequence::str("x").effective_boolean().unwrap());
        assert!(!Sequence::str("").effective_boolean().unwrap());
        assert!(Sequence::int(5).effective_boolean().unwrap());
        assert!(!Sequence::int(0).effective_boolean().unwrap());
        assert!(!Sequence::one(Atomic::Double(f64::NAN))
            .effective_boolean()
            .unwrap());
        let doc = demaq_xml::parse("<a/>").unwrap();
        assert!(Sequence::one(doc.root()).effective_boolean().unwrap());
        let multi = Sequence(vec![Atomic::Int(1).into(), Atomic::Int(2).into()]);
        assert!(multi.effective_boolean().is_err());
    }

    #[test]
    fn numeric_casts() {
        assert_eq!(Atomic::Str(" 42 ".into()).cast_integer().unwrap(), 42);
        assert!(Atomic::Str("x".into()).cast_integer().is_err());
        assert_eq!(Atomic::Untyped("3.5".into()).to_double(), 3.5);
        assert!(Atomic::Str("foo".into()).to_double().is_nan());
    }

    #[test]
    fn boolean_casts() {
        assert!(Atomic::Str("true".into()).cast_boolean().unwrap());
        assert!(!Atomic::Str("0".into()).cast_boolean().unwrap());
        assert!(Atomic::Str("yes".into()).cast_boolean().is_err());
    }

    #[test]
    fn value_cmp_promotion() {
        use Atomic::*;
        assert_eq!(Int(2).value_cmp(&Double(2.0)), Some(Ordering::Equal));
        assert_eq!(
            Untyped("10".into()).value_cmp(&Int(9)),
            Some(Ordering::Greater)
        );
        assert_eq!(
            Str("a".into()).value_cmp(&Untyped("b".into())),
            Some(Ordering::Less)
        );
        assert_eq!(Bool(true).value_cmp(&Bool(false)), Some(Ordering::Greater));
        assert_eq!(Str("a".into()).value_cmp(&Int(1)), None);
    }

    #[test]
    fn double_formatting() {
        assert_eq!(format_double(3.0), "3");
        assert_eq!(format_double(3.25), "3.25");
        assert_eq!(format_double(f64::NAN), "NaN");
        assert_eq!(format_double(-0.0), "0");
    }

    #[test]
    fn date_time_roundtrip() {
        for s in [
            "1970-01-01T00:00:00Z",
            "2026-07-05T12:34:56Z",
            "1969-12-31T23:59:59Z",
        ] {
            let ms = parse_date_time(s).unwrap();
            assert_eq!(format_date_time(ms), s, "roundtrip of {s}");
        }
        assert_eq!(parse_date_time("1970-01-01T00:00:00.250Z").unwrap(), 250);
        assert!(parse_date_time("not a date").is_none());
        assert!(parse_date_time("2026-13-01T00:00:00").is_none());
    }

    #[test]
    fn duration_roundtrip() {
        for (s, ms) in [
            ("PT0S", 0i64),
            ("PT5S", 5_000),
            ("PT1M", 60_000),
            ("PT2H", 7_200_000),
            ("P1DT2H3M4S", 93_784_000),
            ("-PT30S", -30_000),
        ] {
            assert_eq!(parse_duration(s), Some(ms), "parse {s}");
        }
        assert_eq!(format_duration(93_784_000), "P1DT2H3M4S");
        assert_eq!(parse_duration(&format_duration(12_345)), Some(12_345));
        assert!(parse_duration("5 seconds").is_none());
    }

    #[test]
    fn document_order_dedup_sorts_and_dedups() {
        let doc = demaq_xml::parse("<a><b/><c/></a>").unwrap();
        let kids = doc.document_element().unwrap().children();
        let seq = Sequence(vec![
            kids[1].clone().into(),
            kids[0].clone().into(),
            kids[1].clone().into(),
        ]);
        let sorted = seq.document_order_dedup().unwrap();
        assert_eq!(sorted.len(), 2);
        assert_eq!(sorted.0[0].as_node().unwrap().name().unwrap().local, "b");
    }
}
