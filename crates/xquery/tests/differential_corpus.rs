//! Randomized differential testing: a grammar-driven corpus of XQuery
//! expressions evaluated by both the reference AST interpreter
//! ([`demaq_xquery::Evaluator`]) and the lowered-plan evaluator
//! ([`demaq_xquery::PlanEvaluator`]). Results must be item-wise identical
//! (atomics by type and lexical form, nodes by serialization); an error in
//! one evaluator must be an error in the other.
//!
//! The generator is deterministic (seeded xorshift), so failures are
//! reproducible; it tracks variable scope so generated `$v` references are
//! always bound by an enclosing `for`/`let`/quantifier, exercising the
//! slot-resolution path of the lowering.

use demaq_xquery::{
    lower, parse_expr, DynamicContext, Evaluator, Item, NoHost, PlanEvaluator, Sequence,
    StaticContext,
};
use std::sync::Arc;

/// Minimal deterministic PRNG (xorshift64*) — no external dependency.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// Random expression generator over the evaluated fragment. `scope` holds
/// the variable names currently bound by enclosing binders.
struct Gen {
    rng: Rng,
    scope: Vec<String>,
    next_var: usize,
}

impl Gen {
    fn new(seed: u64) -> Gen {
        Gen {
            rng: Rng(seed | 1),
            scope: Vec::new(),
            next_var: 0,
        }
    }

    fn fresh_var(&mut self) -> String {
        let v = format!("v{}", self.next_var);
        self.next_var += 1;
        v
    }

    fn atom(&mut self) -> String {
        let choices = 12;
        match self.rng.below(choices) {
            0 => format!("{}", self.rng.below(20)),
            1 => format!("-{}", 1 + self.rng.below(9)),
            2 => format!("{}.{}", self.rng.below(9), 1 + self.rng.below(9)),
            3 => format!("\"s{}\"", self.rng.below(5)),
            4 => "()".into(),
            5 => "true()".into(),
            6 => "false()".into(),
            7 => ".".into(),
            8 => "//item".into(),
            9 => "//item/@n".into(),
            10 => "/order/total".into(),
            _ => match self.scope.len() {
                0 => "//item/text()".into(),
                n => format!("${}", self.scope[self.rng.below(n)]),
            },
        }
    }

    fn expr(&mut self, depth: usize) -> String {
        if depth == 0 {
            return self.atom();
        }
        match self.rng.below(16) {
            0 => {
                let op = ["+", "-", "*", "div", "idiv", "mod"][self.rng.below(6)];
                format!("({} {op} {})", self.expr(depth - 1), self.expr(depth - 1))
            }
            1 => {
                let op = ["=", "!=", "<", "<=", ">", ">="][self.rng.below(6)];
                format!("({} {op} {})", self.expr(depth - 1), self.expr(depth - 1))
            }
            2 => {
                let op = ["eq", "ne", "lt", "le", "gt", "ge"][self.rng.below(6)];
                format!("({} {op} {})", self.expr(depth - 1), self.expr(depth - 1))
            }
            3 => {
                let op = ["and", "or"][self.rng.below(2)];
                format!("({} {op} {})", self.expr(depth - 1), self.expr(depth - 1))
            }
            4 => format!("({}, {})", self.expr(depth - 1), self.expr(depth - 1)),
            5 => format!(
                "({} to {})",
                self.rng.below(6),
                self.rng.below(8)
            ),
            6 => format!(
                "(if ({}) then {} else {})",
                self.expr(depth - 1),
                self.expr(depth - 1),
                self.expr(depth - 1)
            ),
            7 => {
                let v = self.fresh_var();
                let src = self.expr(depth - 1);
                self.scope.push(v.clone());
                let body = self.expr(depth - 1);
                self.scope.pop();
                format!("(for ${v} in {src} return {body})")
            }
            8 => {
                let v = self.fresh_var();
                let val = self.expr(depth - 1);
                self.scope.push(v.clone());
                let body = self.expr(depth - 1);
                self.scope.pop();
                format!("(let ${v} := {val} return {body})")
            }
            9 => {
                let v = self.fresh_var();
                let src = self.expr(depth - 1);
                let q = ["some", "every"][self.rng.below(2)];
                self.scope.push(v.clone());
                let cond = self.expr(depth - 1);
                self.scope.pop();
                format!("({q} ${v} in {src} satisfies {cond})")
            }
            10 => {
                let v = self.fresh_var();
                let src = self.expr(depth - 1);
                let key = ["$", "-$"][self.rng.below(2)];
                let dir = ["ascending", "descending"][self.rng.below(2)];
                self.scope.push(v.clone());
                let body = self.expr(depth - 1);
                self.scope.pop();
                format!("(for ${v} in {src} order by {key}{v} {dir} return {body})")
            }
            11 => {
                let f = ["count", "string", "not", "exists", "empty", "string-length"]
                    [self.rng.below(6)];
                format!("{f}({})", self.expr(depth - 1))
            }
            12 => format!("concat({}, {})", self.expr(depth - 1), self.expr(depth - 1)),
            13 => format!("//item[{}]", self.expr(depth - 1)),
            14 => format!("(//item/{})", ["@n", "text()", "*"][self.rng.below(3)]),
            _ => self.atom(),
        }
    }
}

/// Canonical rendering for comparison: atomics by `type:lexical`, nodes by
/// serialization.
fn canon(s: &Sequence) -> Vec<String> {
    s.0.iter()
        .map(|i| match i {
            Item::Atomic(a) => format!("{}:{}", a.type_name(), a.to_str()),
            Item::Node(n) => demaq_xml::serializer::serialize_node(n),
        })
        .collect()
}

#[test]
fn random_corpus_agrees_with_reference() {
    let doc = demaq_xml::parse(
        "<order status='open'><item n='1'>widget</item>\
         <item n='2'>gadget</item><item n='3'/>\
         <total>42</total></order>",
    )
    .unwrap();
    let ctx = doc.root();
    let sctx = StaticContext::default();
    let dctx = DynamicContext::new(Arc::new(NoHost));

    let mut gen = Gen::new(0x5eed_2026);
    let mut evaluated = 0u32;
    let mut errored = 0u32;
    for i in 0..600 {
        let query = gen.expr(3);
        // The corpus must stay within the parsed fragment: a parse failure
        // here is a generator bug, not an engine divergence.
        let expr = match parse_expr(&query) {
            Ok(e) => e,
            Err(e) => panic!("corpus item {i} failed to parse: `{query}`: {e}"),
        };

        let mut ev = Evaluator::new(&sctx, &dctx);
        let reference = ev.eval_with_context(&expr, ctx.clone());

        let plan = lower(&expr);
        let mut pv = PlanEvaluator::new(&dctx);
        let lowered = pv.eval_with_context(&plan, ctx.clone());

        match (&reference, &lowered) {
            (Ok(a), Ok(b)) => {
                evaluated += 1;
                assert_eq!(
                    canon(a),
                    canon(b),
                    "result divergence on corpus item {i}: `{query}`"
                );
            }
            (Err(_), Err(_)) => errored += 1,
            _ => panic!(
                "error divergence on corpus item {i}: `{query}`\n  reference: {reference:?}\n  lowered: {lowered:?}"
            ),
        }
    }
    // The grammar should produce a healthy mix of successes and dynamic
    // errors; if either side collapses the corpus lost its teeth.
    assert!(evaluated > 200, "only {evaluated} expressions evaluated Ok");
    assert!(errored > 20, "only {errored} expressions raised errors");
}

/// The scope discipline above never leaves a generated variable unbound;
/// genuinely-free variables must still fail identically in both
/// evaluators (the lowering keeps them as by-name dynamic lookups).
#[test]
fn free_variables_fail_identically() {
    let doc = demaq_xml::parse("<r/>").unwrap();
    let sctx = StaticContext::default();
    let dctx = DynamicContext::new(Arc::new(NoHost));
    for query in ["$missing", "1 + $gone", "for $x in 1 to 3 return $y"] {
        let expr = parse_expr(query).unwrap();
        let mut ev = Evaluator::new(&sctx, &dctx);
        let reference = ev.eval_with_context(&expr, doc.root());
        let mut pv = PlanEvaluator::new(&dctx);
        let lowered = pv.eval_with_context(&lower(&expr), doc.root());
        let (re, le) = (reference.unwrap_err(), lowered.unwrap_err());
        assert_eq!(re.to_string(), le.to_string(), "on `{query}`");
    }
}
