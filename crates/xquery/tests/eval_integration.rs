//! End-to-end tests: parse + evaluate full XQuery expressions, including the
//! idioms the Demaq paper's QML listings rely on.

use demaq_xml::{parse, NodeRef, QName};
use demaq_xquery::{
    eval_query, parse_expr, DynamicContext, Evaluator, HostFunctions, Sequence, StaticContext,
    Update,
};
use std::sync::Arc;

fn doc(xml: &str) -> NodeRef {
    parse(xml).unwrap().root()
}

fn q(query: &str, xml: &str) -> String {
    eval_query(query, &doc(xml)).unwrap().to_string()
}

fn q_err(query: &str, xml: &str) -> bool {
    eval_query(query, &doc(xml)).is_err()
}

// ---------------------------------------------------------------- paths ----

#[test]
fn child_paths() {
    assert_eq!(q("/order/id", "<order><id>7</id><id>8</id></order>"), "7 8");
    assert_eq!(q("order/id", "<order><id>7</id></order>"), "7");
    assert_eq!(q("/order/missing", "<order><id>7</id></order>"), "");
}

#[test]
fn descendant_paths() {
    let xml = "<a><b><c>1</c></b><c>2</c></a>";
    assert_eq!(q("//c", xml), "1 2");
    assert_eq!(q("/a//c", xml), "1 2");
    assert_eq!(q("count(//*)", xml), "4");
}

#[test]
fn attribute_axis() {
    let xml = r#"<order id="42" vip="true"><item qty="3"/></order>"#;
    assert_eq!(q("/order/@id", xml), "42");
    assert_eq!(q("//@qty", xml), "3");
    assert_eq!(q("count(/order/@*)", xml), "2");
    assert_eq!(q("string(/order/attribute::vip)", xml), "true");
}

#[test]
fn parent_and_self_axes() {
    let xml = "<a><b><c/></b></a>";
    assert_eq!(q("name(//c/..)", xml), "b");
    assert_eq!(q("name(//c/parent::b)", xml), "b");
    assert_eq!(q("count(//c/ancestor::*)", xml), "2");
    assert_eq!(q("name(//b/self::b)", xml), "b");
    assert_eq!(q("count(//b/self::zzz)", xml), "0");
}

#[test]
fn sibling_axes() {
    let xml = "<r><a/><b/><c/><d/></r>";
    assert_eq!(q("name(//b/following-sibling::*[1])", xml), "c");
    assert_eq!(q("count(//d/preceding-sibling::*)", xml), "3");
}

#[test]
fn kind_tests() {
    let xml = "<a>hi<!--note--><b/><?pi data?></a>";
    assert_eq!(q("string(/a/text())", xml), "hi");
    assert_eq!(q("string(/a/comment())", xml), "note");
    assert_eq!(q("count(/a/node())", xml), "4");
    assert_eq!(q("count(/a/element())", xml), "1");
    assert_eq!(q("count(/a/processing-instruction())", xml), "1");
    assert_eq!(q("count(/a/processing-instruction('pi'))", xml), "1");
    assert_eq!(q("count(/a/processing-instruction('other'))", xml), "0");
}

#[test]
fn wildcard_steps() {
    let xml = "<r><a>1</a><b>2</b></r>";
    assert_eq!(q("/r/*", xml), "1 2");
}

#[test]
fn paths_deduplicate_and_order() {
    // Both //b and /a/b hit the same node: union should dedup.
    let xml = "<a><b>x</b></a>";
    assert_eq!(q("count(//b | /a/b)", xml), "1");
}

// ---------------------------------------------------------- predicates ----

#[test]
fn positional_predicates() {
    let xml = "<r><i>a</i><i>b</i><i>c</i></r>";
    assert_eq!(q("/r/i[1]", xml), "a");
    assert_eq!(q("/r/i[3]", xml), "c");
    assert_eq!(q("/r/i[last()]", xml), "c");
    assert_eq!(q("/r/i[position() > 1]", xml), "b c");
    assert_eq!(q("/r/i[4]", xml), "");
}

#[test]
fn value_predicates() {
    let xml =
        r#"<inv><bill paid="no"><amt>10</amt></bill><bill paid="yes"><amt>99</amt></bill></inv>"#;
    assert_eq!(q("//bill[@paid = 'yes']/amt", xml), "99");
    assert_eq!(q("//bill[amt > 50]/@paid", xml), "yes");
    assert_eq!(q("count(//bill[amt])", xml), "2");
    assert_eq!(q("count(//bill[zzz])", xml), "0");
}

#[test]
fn chained_predicates() {
    let xml = "<r><i x='1'>a</i><i x='1'>b</i><i x='2'>c</i></r>";
    assert_eq!(q("/r/i[@x = '1'][2]", xml), "b");
}

#[test]
fn predicate_on_filter_expr() {
    assert_eq!(q("(1 to 10)[. mod 2 = 0][2]", "<x/>"), "4");
}

// --------------------------------------------------------- comparisons ----

#[test]
fn general_comparisons_are_existential() {
    let xml = "<r><v>1</v><v>5</v></r>";
    assert_eq!(q("//v = 5", xml), "true");
    assert_eq!(q("//v = 3", xml), "false");
    assert_eq!(q("//v > 4", xml), "true");
    assert_eq!(q("//v != 1", xml), "true"); // 5 != 1
    assert_eq!(q("() = 1", xml), "false");
}

#[test]
fn value_comparisons() {
    assert_eq!(q("5 eq 5", "<x/>"), "true");
    assert_eq!(q("'a' lt 'b'", "<x/>"), "true");
    assert_eq!(q("2 ge 3", "<x/>"), "false");
    // Incompatible types error under value comparison…
    assert!(q_err("'a' eq 1", "<x/>"));
    // …but an empty operand yields the empty sequence.
    assert_eq!(q("count(() eq 1)", "<x/>"), "0");
}

#[test]
fn node_comparisons() {
    let xml = "<r><a/><b/></r>";
    assert_eq!(q("(//a)[1] is (//a)[1]", xml), "true");
    assert_eq!(q("(//a)[1] is (//b)[1]", xml), "false");
    assert_eq!(q("(//a)[1] << (//b)[1]", xml), "true");
    assert_eq!(q("(//b)[1] >> (//a)[1]", xml), "true");
}

// ---------------------------------------------------------- arithmetic ----

#[test]
fn integer_arithmetic() {
    assert_eq!(q("1 + 2 * 3", "<x/>"), "7");
    assert_eq!(q("(1 + 2) * 3", "<x/>"), "9");
    assert_eq!(q("7 mod 3", "<x/>"), "1");
    assert_eq!(q("7 idiv 2", "<x/>"), "3");
    assert_eq!(q("-3 + 1", "<x/>"), "-2");
    assert!(q_err("1 idiv 0", "<x/>"));
}

#[test]
fn double_arithmetic_and_untyped_promotion() {
    assert_eq!(q("1 div 2", "<x/>"), "0.5");
    assert_eq!(q("//n + 1", "<r><n>41</n></r>"), "42");
    assert_eq!(q("count(() + 1)", "<x/>"), "0");
}

#[test]
fn range_expression() {
    assert_eq!(q("count(1 to 10)", "<x/>"), "10");
    assert_eq!(q("count(5 to 4)", "<x/>"), "0");
    assert_eq!(q("sum(1 to 4)", "<x/>"), "10");
}

// ---------------------------------------------------------------- flwor ----

#[test]
fn flwor_for_let_return() {
    assert_eq!(q("for $i in 1 to 3 return $i * 10", "<x/>"), "10 20 30");
    assert_eq!(q("let $x := 5 return $x + $x", "<x/>"), "10");
    assert_eq!(
        q("for $i in 1 to 2 let $d := $i * 2 return $d", "<x/>"),
        "2 4"
    );
}

#[test]
fn flwor_where() {
    assert_eq!(
        q("for $i in 1 to 6 where $i mod 2 = 0 return $i", "<x/>"),
        "2 4 6"
    );
}

#[test]
fn flwor_order_by() {
    let xml =
        "<r><p><n>beta</n><v>2</v></p><p><n>alpha</n><v>1</v></p><p><n>gamma</n><v>3</v></p></r>";
    assert_eq!(
        q("for $p in //p order by $p/n return string($p/v)", xml),
        "1 2 3"
    );
    assert_eq!(
        q(
            "for $p in //p order by $p/v descending return string($p/n)",
            xml
        ),
        "gamma beta alpha"
    );
}

#[test]
fn flwor_at_index() {
    assert_eq!(
        q(
            "for $v at $i in ('a','b','c') return concat($i, ':', $v)",
            "<x/>"
        ),
        "1:a 2:b 3:c"
    );
}

#[test]
fn flwor_multiple_for_is_cartesian() {
    assert_eq!(
        q("for $a in (1,2), $b in (10,20) return $a + $b", "<x/>"),
        "11 21 12 22"
    );
}

#[test]
fn nested_flwor_scoping() {
    assert_eq!(
        q("let $x := 1 return (let $x := 2 return $x) + $x", "<x/>"),
        "3"
    );
}

// ----------------------------------------------------------- quantified ----

#[test]
fn quantified_expressions() {
    assert_eq!(q("some $x in (1,2,3) satisfies $x > 2", "<x/>"), "true");
    assert_eq!(q("every $x in (1,2,3) satisfies $x > 0", "<x/>"), "true");
    assert_eq!(q("every $x in (1,2,3) satisfies $x > 1", "<x/>"), "false");
    assert_eq!(q("some $x in () satisfies $x", "<x/>"), "false");
    assert_eq!(q("every $x in () satisfies $x", "<x/>"), "true");
    assert_eq!(
        q("some $x in (1,2), $y in (2,3) satisfies $x = $y", "<x/>"),
        "true"
    );
}

// ---------------------------------------------------------- conditional ----

#[test]
fn if_then_else() {
    assert_eq!(q("if (1 < 2) then 'yes' else 'no'", "<x/>"), "yes");
    assert_eq!(q("if (()) then 'yes' else 'no'", "<x/>"), "no");
    // QML: else branch optional (paper Sec 3.3).
    assert_eq!(q("if (2 < 1) then 'yes'", "<x/>"), "");
    assert_eq!(q("count(if (0) then 1)", "<x/>"), "0");
}

// --------------------------------------------------------- constructors ----

#[test]
fn direct_element_constructor() {
    let out = eval_query(
        "<offer><id>{ //requestID }</id></offer>",
        &doc("<r><requestID>9</requestID></r>"),
    )
    .unwrap();
    let node = out.0[0].as_node().unwrap().clone();
    assert_eq!(
        node.to_xml(),
        "<offer><id><requestID>9</requestID></id></offer>"
    );
}

#[test]
fn constructor_copies_nodes() {
    // Copied nodes are new nodes (XQuery constructor copy semantics).
    let d = doc("<r><a>x</a></r>");
    let out = eval_query("<w>{ //a }</w>", &d).unwrap();
    let w = out.0[0].as_node().unwrap();
    let copied = &w.children()[0];
    let orig = eval_query("//a", &d).unwrap().0[0]
        .as_node()
        .unwrap()
        .clone();
    assert!(copied.deep_equal(&orig));
    assert!(!copied.is_same_node(&orig));
}

#[test]
fn atomics_in_content_are_space_joined() {
    let out = eval_query("<v>{ (1, 2, 3) }</v>", &doc("<x/>")).unwrap();
    assert_eq!(out.0[0].as_node().unwrap().to_xml(), "<v>1 2 3</v>");
}

#[test]
fn attribute_value_templates() {
    let out = eval_query(
        r#"<item price="{ 2 + 3 }" cur="EUR{ '!' }"/>"#,
        &doc("<x/>"),
    )
    .unwrap();
    assert_eq!(
        out.0[0].as_node().unwrap().to_xml(),
        r#"<item price="5" cur="EUR!"/>"#
    );
}

#[test]
fn nested_constructors_and_text() {
    let out = eval_query("<a>literal <b>{ 1+1 }</b> tail</a>", &doc("<x/>")).unwrap();
    assert_eq!(
        out.0[0].as_node().unwrap().to_xml(),
        "<a>literal <b>2</b> tail</a>"
    );
}

#[test]
fn boundary_whitespace_is_stripped() {
    let out = eval_query("<a>\n  <b/>\n</a>", &doc("<x/>")).unwrap();
    assert_eq!(out.0[0].as_node().unwrap().to_xml(), "<a><b/></a>");
}

#[test]
fn curly_escapes() {
    let out = eval_query("<a>{{literal}}</a>", &doc("<x/>")).unwrap();
    assert_eq!(out.0[0].as_node().unwrap().to_xml(), "<a>{literal}</a>");
}

#[test]
fn computed_constructors() {
    let out = eval_query(
        "element order { attribute id { 40 + 2 }, element item { 'acid' } }",
        &doc("<x/>"),
    )
    .unwrap();
    assert_eq!(
        out.0[0].as_node().unwrap().to_xml(),
        r#"<order id="42"><item>acid</item></order>"#
    );
}

#[test]
fn computed_text_and_comment() {
    let out = eval_query("<a>{ text { 'T' }, comment { 'C' } }</a>", &doc("<x/>")).unwrap();
    assert_eq!(out.0[0].as_node().unwrap().to_xml(), "<a>T<!--C--></a>");
}

#[test]
fn constructor_entities() {
    let out = eval_query("<a>1 &lt; 2 &amp; so</a>", &doc("<x/>")).unwrap();
    assert_eq!(out.0[0].as_node().unwrap().string_value(), "1 < 2 & so");
}

// ------------------------------------------------------------- updating ----

fn eval_updates(query: &str, context: &NodeRef) -> (Sequence, Vec<Update>) {
    let expr = parse_expr(query).unwrap();
    let sctx = StaticContext::default();
    let dctx = DynamicContext::default();
    let mut ev = Evaluator::new(&sctx, &dctx);
    let seq = ev.eval_with_context(&expr, context.clone()).unwrap();
    (seq, ev.updates)
}

#[test]
fn do_enqueue_produces_pending_update() {
    let ctx = doc("<offerRequest><requestID>7</requestID></offerRequest>");
    let (seq, ups) = eval_updates(
        "do enqueue <probe>{ //requestID }</probe> into finance",
        &ctx,
    );
    assert!(
        seq.is_empty(),
        "updating expressions return the empty sequence"
    );
    assert_eq!(ups.len(), 1);
    match &ups[0] {
        Update::Enqueue {
            queue,
            message,
            props,
        } => {
            assert_eq!(queue.local, "finance");
            assert!(props.is_empty());
            assert_eq!(
                message.root().to_xml(),
                "<probe><requestID>7</requestID></probe>"
            );
        }
        other => panic!("expected Enqueue, got {other:?}"),
    }
}

#[test]
fn do_enqueue_with_properties() {
    let ctx = doc("<m/>");
    let (_, ups) = eval_updates(
        "do enqueue <a/> into supplier with Sender value 'http://ws.chem.invalid/' with prio value 2",
        &ctx,
    );
    match &ups[0] {
        Update::Enqueue { props, .. } => {
            assert_eq!(props.len(), 2);
            assert_eq!(props[0].0, "Sender");
            assert_eq!(props[0].1.to_str(), "http://ws.chem.invalid/");
            assert_eq!(props[1].1.to_str(), "2");
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn conditional_enqueue_only_in_taken_branch() {
    let ctx = doc("<m><flag>no</flag></m>");
    let (_, ups) = eval_updates(
        "if (//flag = 'yes') then do enqueue <y/> into a else do enqueue <n/> into b",
        &ctx,
    );
    assert_eq!(ups.len(), 1);
    match &ups[0] {
        Update::Enqueue { queue, .. } => assert_eq!(queue.local, "b"),
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn multiple_enqueues_in_sequence_expr() {
    // The comma operator combines pending updates — the paper's Example 3.1
    // forks control flow this way.
    let ctx =
        doc("<offerRequest><requestID>1</requestID><customerID>c</customerID></offerRequest>");
    let (_, ups) = eval_updates(
        "let $ci := <requestCustomerInfo>{//requestID}{//customerID}</requestCustomerInfo>
         return (do enqueue $ci into finance,
                 do enqueue $ci into legal,
                 do enqueue $ci into supplier)",
        &ctx,
    );
    assert_eq!(ups.len(), 3);
    let queues: Vec<String> = ups
        .iter()
        .map(|u| match u {
            Update::Enqueue { queue, .. } => queue.local.clone(),
            _ => unreachable!(),
        })
        .collect();
    assert_eq!(queues, ["finance", "legal", "supplier"]);
}

#[test]
fn flwor_enqueue_per_iteration() {
    let ctx = doc("<r><i>1</i><i>2</i></r>");
    let (_, ups) = eval_updates("for $i in //i return do enqueue <c>{$i}</c> into out", &ctx);
    assert_eq!(ups.len(), 2);
}

#[test]
fn do_reset_variants() {
    let ctx = doc("<m/>");
    let (_, ups) = eval_updates("do reset", &ctx);
    assert!(matches!(
        &ups[0],
        Update::Reset {
            slicing: None,
            key: None
        }
    ));

    let (_, ups) = eval_updates("do reset orders key '42'", &ctx);
    match &ups[0] {
        Update::Reset {
            slicing: Some(s),
            key: Some(k),
        } => {
            assert_eq!(s.local, "orders");
            assert_eq!(k.to_str(), "42");
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn is_updating_classification() {
    assert!(parse_expr("do enqueue <a/> into q").unwrap().is_updating());
    assert!(parse_expr("if (1) then do reset").unwrap().is_updating());
    assert!(!parse_expr("1 + 2").unwrap().is_updating());
    assert!(parse_expr("for $x in //a return do enqueue $x into q")
        .unwrap()
        .is_updating());
}

// -------------------------------------------------------- host functions ----

struct TestHost;
impl HostFunctions for TestHost {
    fn call(
        &self,
        name: &QName,
        args: &[Sequence],
    ) -> Option<Result<Sequence, demaq_xquery::Error>> {
        match (name.prefix.as_deref(), name.local.as_str()) {
            (Some("qs"), "answer") => Some(Ok(Sequence::int(42))),
            (Some("qs"), "echo") => Some(Ok(args[0].clone())),
            _ => None,
        }
    }

    fn collection(&self, name: &str) -> Result<Sequence, demaq_xquery::Error> {
        let d = parse(&format!("<collection-of>{name}</collection-of>")).unwrap();
        Ok(Sequence::one(d.root()))
    }

    fn current_date_time_ms(&self) -> i64 {
        86_400_000 // 1970-01-02T00:00:00Z
    }
}

fn q_host(query: &str, xml: &str) -> String {
    let expr = parse_expr(query).unwrap();
    let sctx = StaticContext::default();
    let dctx = DynamicContext::new(Arc::new(TestHost));
    let mut ev = Evaluator::new(&sctx, &dctx);
    ev.eval_with_context(&expr, doc(xml)).unwrap().to_string()
}

#[test]
fn extension_functions_via_host() {
    assert_eq!(q_host("qs:answer() + 1", "<x/>"), "43");
    assert_eq!(q_host("qs:echo('hello')", "<x/>"), "hello");
}

#[test]
fn collection_via_host() {
    assert_eq!(q_host("string(collection('crm'))", "<x/>"), "crm");
}

#[test]
fn current_date_time_via_host() {
    assert_eq!(
        q_host("string(current-dateTime())", "<x/>"),
        "1970-01-02T00:00:00Z"
    );
}

#[test]
fn unknown_extension_function_errors() {
    let expr = parse_expr("qs:nonexistent()").unwrap();
    let sctx = StaticContext::default();
    let dctx = DynamicContext::new(Arc::new(TestHost));
    let mut ev = Evaluator::new(&sctx, &dctx);
    assert!(ev.eval_with_context(&expr, doc("<x/>")).is_err());
}

// ------------------------------------------------------ variables & misc ----

#[test]
fn external_variables() {
    let expr = parse_expr("$n * 2").unwrap();
    let sctx = StaticContext::default();
    let mut dctx = DynamicContext::default();
    dctx.bind("n", Sequence::int(21));
    let mut ev = Evaluator::new(&sctx, &dctx);
    assert_eq!(
        ev.eval_with_context(&expr, doc("<x/>"))
            .unwrap()
            .to_string(),
        "42"
    );
}

#[test]
fn undefined_variable_errors() {
    assert!(q_err("$missing", "<x/>"));
}

#[test]
fn cast_expressions() {
    assert_eq!(q("'42' cast as xs:integer", "<x/>"), "42");
    assert_eq!(q("1 instance of xs:integer", "<x/>"), "true");
    assert_eq!(q("'x' instance of xs:integer", "<x/>"), "false");
    assert!(q_err("'nope' cast as xs:integer", "<x/>"));
}

#[test]
fn set_operations() {
    let xml = "<r><a/><b/><c/></r>";
    assert_eq!(q("count(//a | //b)", xml), "2");
    assert_eq!(q("count((//a, //b) intersect //a)", xml), "1");
    assert_eq!(q("count(/r/* except //b)", xml), "2");
}

#[test]
fn comments_in_queries() {
    assert_eq!(q("1 + (: this is ignored (: nested :) :) 2", "<x/>"), "3");
}

#[test]
fn date_time_comparison_and_arithmetic() {
    assert_eq!(
        q(
            "xs:dateTime('2026-01-02T00:00:00Z') gt xs:dateTime('2026-01-01T00:00:00Z')",
            "<x/>"
        ),
        "true"
    );
    assert_eq!(
        q(
            "string(xs:dateTime('2026-01-01T00:00:00Z') + xs:dayTimeDuration('P1D'))",
            "<x/>"
        ),
        "2026-01-02T00:00:00Z"
    );
    assert_eq!(
        q(
            "string(xs:dateTime('2026-01-02T00:00:00Z') - xs:dateTime('2026-01-01T12:00:00Z'))",
            "<x/>"
        ),
        "PT12H"
    );
}

// --------------------------------------------------- paper-shaped queries ----

#[test]
fn example_3_1_shape() {
    // The credit-check message construction from Fig. 5.
    let ctx = doc(
        "<offerRequest><requestID>r1</requestID><customerID>c9</customerID>\
         <items><item>solvent</item></items></offerRequest>",
    );
    let (_, ups) = eval_updates(
        "if (//offerRequest) then
           let $customerInfo :=
             <requestCustomerInfo>
               {//requestID} {//customerID}
             </requestCustomerInfo>
           return (do enqueue $customerInfo into finance,
                   do enqueue $customerInfo into legal)",
        &ctx,
    );
    assert_eq!(ups.len(), 2);
    match &ups[0] {
        Update::Enqueue { message, .. } => {
            assert_eq!(
                message.root().to_xml(),
                "<requestCustomerInfo><requestID>r1</requestID><customerID>c9</customerID></requestCustomerInfo>"
            );
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn example_3_2_shape() {
    // Fig. 6 pattern: correlate current message against another queue's
    // messages (the queue is modelled here by an external variable).
    let invoices =
        parse("<invoices><invoice><customerID>c9</customerID><unpaid/></invoice></invoices>")
            .unwrap();
    // Inside the predicate the context item switches to the inspected queue
    // content, so the triggering message must be reached through a binding —
    // exactly why the paper's Fig. 6 uses qs:message() there.
    let expr = parse_expr(
        "if ($invoices[//customerID = $msg/requestCustomerInfo/customerID]) then <refuse/> else <accept/>",
    )
    .unwrap();
    let sctx = StaticContext::default();
    let mut dctx = DynamicContext::default();
    dctx.bind("invoices", Sequence::one(invoices.root()));
    let ctx = doc("<requestCustomerInfo><customerID>c9</customerID></requestCustomerInfo>");
    dctx.bind("msg", Sequence::one(ctx.clone()));
    let mut ev = Evaluator::new(&sctx, &dctx);
    let out = ev.eval_with_context(&expr, ctx).unwrap();
    assert_eq!(out.0[0].as_node().unwrap().to_xml(), "<refuse/>");
}

#[test]
fn deeply_nested_expression_is_rejected_not_stack_overflow() {
    let mut query = String::new();
    for _ in 0..2000 {
        query.push('(');
    }
    query.push('1');
    for _ in 0..2000 {
        query.push(')');
    }
    // Either a parse error or a depth error is fine; a crash is not.
    let d = doc("<x/>");
    let _ = eval_query(&query, &d);
}
