//! Property-based tests for XQuery evaluation invariants.

use demaq_xquery::value::{format_date_time, format_duration, parse_date_time, parse_duration};
use demaq_xquery::{eval_query, parse_expr, Atomic, Sequence};
use proptest::prelude::*;

fn ctx() -> demaq_xml::NodeRef {
    demaq_xml::parse("<x/>").unwrap().root()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    // ---- temporal codecs ---------------------------------------------------

    #[test]
    fn date_time_roundtrip(ms in -62_000_000_000_000i64..253_000_000_000_000i64) {
        // Any representable instant formats and re-parses to itself.
        let s = format_date_time(ms);
        prop_assert_eq!(parse_date_time(&s), Some(ms), "lexical {}", s);
    }

    #[test]
    fn duration_roundtrip(ms in -10_000_000_000i64..10_000_000_000i64) {
        let s = format_duration(ms);
        prop_assert_eq!(parse_duration(&s), Some(ms), "lexical {}", s);
    }

    // ---- arithmetic --------------------------------------------------------

    #[test]
    fn integer_addition_matches_rust(a in -100_000i64..100_000, b in -100_000i64..100_000) {
        let out = eval_query(&format!("{a} + {b}"), &ctx()).unwrap().to_string();
        prop_assert_eq!(out, (a + b).to_string());
    }

    #[test]
    fn multiplication_and_precedence(a in -500i64..500, b in -500i64..500, c in -500i64..500) {
        let out = eval_query(&format!("{a} + {b} * {c}"), &ctx()).unwrap().to_string();
        prop_assert_eq!(out, (a + b * c).to_string());
    }

    #[test]
    fn idiv_mod_identity(a in -10_000i64..10_000, b in 1i64..500) {
        // a = (a idiv b) * b + (a mod b)
        let out = eval_query(&format!("({a} idiv {b}) * {b} + ({a} mod {b})"), &ctx())
            .unwrap()
            .to_string();
        prop_assert_eq!(out, a.to_string());
    }

    // ---- sequences -----------------------------------------------------------

    #[test]
    fn count_of_range(a in 1i64..500, len in 0i64..500) {
        let b = a + len - 1;
        let out = eval_query(&format!("count({a} to {b})"), &ctx()).unwrap().to_string();
        prop_assert_eq!(out, len.max(0).to_string());
    }

    #[test]
    fn reverse_is_involutive(items in proptest::collection::vec(-1000i64..1000, 0..12)) {
        let lit = items.iter().map(|i| i.to_string()).collect::<Vec<_>>().join(",");
        let q = format!("deep-equal(reverse(reverse(({lit}))), ({lit}))");
        prop_assert_eq!(eval_query(&q, &ctx()).unwrap().to_string(), "true");
    }

    #[test]
    fn distinct_values_is_idempotent(items in proptest::collection::vec(0i64..20, 0..16)) {
        let lit = items.iter().map(|i| i.to_string()).collect::<Vec<_>>().join(",");
        let q = format!(
            "deep-equal(distinct-values(distinct-values(({lit}))), distinct-values(({lit})))"
        );
        prop_assert_eq!(eval_query(&q, &ctx()).unwrap().to_string(), "true");
        // And matches a Rust-side dedup (order of first occurrence).
        let mut seen = Vec::new();
        for i in &items {
            if !seen.contains(i) {
                seen.push(*i);
            }
        }
        let got = eval_query(&format!("distinct-values(({lit}))"), &ctx()).unwrap().to_string();
        let want = seen.iter().map(|i| i.to_string()).collect::<Vec<_>>().join(" ");
        prop_assert_eq!(got, want);
    }

    #[test]
    fn sum_matches_rust(items in proptest::collection::vec(-10_000i64..10_000, 0..16)) {
        let lit = items.iter().map(|i| i.to_string()).collect::<Vec<_>>().join(",");
        let got = eval_query(&format!("sum(({lit}))"), &ctx()).unwrap().to_string();
        prop_assert_eq!(got, items.iter().sum::<i64>().to_string());
    }

    #[test]
    fn flwor_filter_matches_rust(items in proptest::collection::vec(0i64..100, 0..16), limit in 0i64..100) {
        let lit = items.iter().map(|i| i.to_string()).collect::<Vec<_>>().join(",");
        let got = eval_query(
            &format!("for $x in ({lit}) where $x < {limit} return $x"),
            &ctx(),
        )
        .unwrap()
        .to_string();
        let want = items
            .iter()
            .filter(|&&x| x < limit)
            .map(|x| x.to_string())
            .collect::<Vec<_>>()
            .join(" ");
        prop_assert_eq!(got, want);
    }

    #[test]
    fn order_by_sorts(items in proptest::collection::vec(-1000i64..1000, 0..16)) {
        let lit = items.iter().map(|i| i.to_string()).collect::<Vec<_>>().join(",");
        let got = eval_query(&format!("for $x in ({lit}) order by $x return $x"), &ctx())
            .unwrap()
            .to_string();
        let mut sorted = items.clone();
        sorted.sort();
        let want = sorted.iter().map(|x| x.to_string()).collect::<Vec<_>>().join(" ");
        prop_assert_eq!(got, want);
    }

    // ---- strings ---------------------------------------------------------------

    #[test]
    fn concat_substring_consistency(a in "[a-z]{0,8}", b in "[a-z]{1,8}") {
        let q = format!("substring(concat('{a}', '{b}'), {})", a.chars().count() + 1);
        let got = eval_query(&q, &ctx()).unwrap().to_string();
        prop_assert_eq!(got, b);
    }

    #[test]
    fn string_length_matches_chars(s in "[a-zA-Z0-9 äöüß]{0,20}") {
        let got = eval_query(&format!("string-length('{s}')"), &ctx()).unwrap().to_string();
        prop_assert_eq!(got, s.chars().count().to_string());
    }

    // ---- paths over generated documents --------------------------------------------

    #[test]
    fn count_descendants_matches(n in 0usize..30) {
        let body: String = (0..n).map(|i| format!("<item n='{i}'/>")).collect();
        let doc = demaq_xml::parse(&format!("<r>{body}</r>")).unwrap();
        let got = eval_query("count(//item)", &doc.root()).unwrap().to_string();
        prop_assert_eq!(got, n.to_string());
        // Positional access agrees with construction order.
        if n > 0 {
            let q = format!("string(//item[{n}]/@n)");
            prop_assert_eq!(eval_query(&q, &doc.root()).unwrap().to_string(), (n - 1).to_string());
        }
    }

    #[test]
    fn general_comparison_is_existential(values in proptest::collection::vec(0i64..50, 1..10), probe in 0i64..50) {
        let body: String = values.iter().map(|v| format!("<v>{v}</v>")).collect();
        let doc = demaq_xml::parse(&format!("<r>{body}</r>")).unwrap();
        let got = eval_query(&format!("//v = {probe}"), &doc.root()).unwrap().to_string();
        prop_assert_eq!(got, values.contains(&probe).to_string());
    }

    // ---- parser robustness ---------------------------------------------------------

    #[test]
    fn parser_never_panics(input in ".{0,80}") {
        let _ = parse_expr(&input);
    }

    #[test]
    fn parser_never_panics_on_token_soup(
        parts in proptest::collection::vec(
            prop_oneof![
                Just("for".to_string()), Just("$x".to_string()), Just("in".to_string()),
                Just("return".to_string()), Just("if".to_string()), Just("then".to_string()),
                Just("else".to_string()), Just("(".to_string()), Just(")".to_string()),
                Just("//a".to_string()), Just("[".to_string()), Just("]".to_string()),
                Just("do enqueue".to_string()), Just("into q".to_string()),
                Just("<a>".to_string()), Just("</a>".to_string()), Just("{".to_string()),
                Just("}".to_string()), Just("1".to_string()), Just("'s'".to_string()),
                Just("+".to_string()), Just("and".to_string()),
            ],
            0..14,
        )
    ) {
        let soup = parts.join(" ");
        if let Ok(expr) = parse_expr(&soup) {
            // Whatever parses must also evaluate or error cleanly.
            let sctx = demaq_xquery::StaticContext::default();
            let dctx = demaq_xquery::DynamicContext::default();
            let mut ev = demaq_xquery::Evaluator::new(&sctx, &dctx);
            let _ = ev.eval_with_context(&expr, ctx());
        }
    }

    // ---- EBV / atomics ------------------------------------------------------------------

    #[test]
    fn ebv_of_nonempty_string_is_true(s in "[a-z]{1,10}") {
        prop_assert!(Sequence::one(Atomic::Str(s)).effective_boolean().unwrap());
    }

    #[test]
    fn cast_integer_roundtrip(i in -1_000_000i64..1_000_000) {
        let a = Atomic::Str(i.to_string());
        prop_assert_eq!(a.cast_integer().unwrap(), i);
    }
}
