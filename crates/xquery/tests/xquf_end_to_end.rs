//! XQuery Update Facility end to end: parse `do …` expressions, evaluate
//! them into pending update lists, apply copy-on-write, verify snapshot
//! semantics (paper Sec. 3.2: "pending update list of update primitives
//! that are applied after the entire statement has been evaluated").

use demaq_xml::{parse, NodeRef};
use demaq_xquery::{apply_tree_updates, parse_expr, DynamicContext, Evaluator, StaticContext};
use std::sync::Arc;

fn run_updates(query: &str, xml: &str) -> (NodeRef, String) {
    let doc = parse(xml).unwrap();
    let expr = parse_expr(query).unwrap();
    let sctx = StaticContext::default();
    let dctx = DynamicContext::default();
    let mut ev = Evaluator::new(&sctx, &dctx);
    ev.eval_with_context(&expr, doc.root()).unwrap();
    let rebuilt = apply_tree_updates(&ev.updates).unwrap();
    let new_doc = rebuilt
        .get(&doc.doc_seq)
        .map(Arc::clone)
        .unwrap_or_else(|| doc.clone());
    let xml_out = new_doc.root().to_xml();
    (doc.root(), xml_out)
}

#[test]
fn do_insert_into() {
    let (_orig, out) = run_updates("do insert <new/> into /order", "<order><old/></order>");
    assert_eq!(out, "<order><old/><new/></order>");
}

#[test]
fn do_insert_as_first() {
    let (_o, out) = run_updates(
        "do insert <new/> as first into /order",
        "<order><old/></order>",
    );
    assert_eq!(out, "<order><new/><old/></order>");
}

#[test]
fn do_insert_before_and_after() {
    let (_o, out) = run_updates(
        "(do insert <a/> before /r/mid, do insert <z/> after /r/mid)",
        "<r><mid/></r>",
    );
    assert_eq!(out, "<r><a/><mid/><z/></r>");
}

#[test]
fn do_delete_by_predicate() {
    let (_o, out) = run_updates(
        "do delete //item[@obsolete = 'yes']",
        "<cat><item obsolete='yes'/><item/><item obsolete='yes'/></cat>",
    );
    assert_eq!(out, "<cat><item/></cat>");
}

#[test]
fn do_replace_node() {
    let (_o, out) = run_updates(
        "do replace /doc/price with <price currency='EUR'>42</price>",
        "<doc><price>10</price></doc>",
    );
    assert_eq!(out, r#"<doc><price currency="EUR">42</price></doc>"#);
}

#[test]
fn do_replace_value_of() {
    let (_o, out) = run_updates(
        "do replace value of /doc/price with 10 * 5",
        "<doc><price>10</price></doc>",
    );
    assert_eq!(out, "<doc><price>50</price></doc>");
}

#[test]
fn do_rename() {
    let (_o, out) = run_updates("do rename /a/b as 'c'", "<a><b>t</b></a>");
    assert_eq!(out, "<a><c>t</c></a>");
}

#[test]
fn conditional_updates_only_taken_branch() {
    let (_o, out) = run_updates(
        "if (//flag = 'on') then do delete //secret else do delete //public",
        "<r><flag>on</flag><secret/><public/></r>",
    );
    assert_eq!(out, "<r><flag>on</flag><public/></r>");
}

#[test]
fn flwor_generates_one_update_per_binding() {
    let (_o, out) = run_updates(
        "for $i in //item where number($i/@v) > 1 return do rename $i as 'big'",
        "<r><item v='1'/><item v='2'/><item v='3'/></r>",
    );
    assert_eq!(out, "<r><item v=\"1\"/><big v=\"2\"/><big v=\"3\"/></r>");
}

#[test]
fn snapshot_semantics_source_unchanged() {
    // The source document must be untouched — updates build a new tree.
    let doc = parse("<a><b/></a>").unwrap();
    let expr = parse_expr("do delete /a/b").unwrap();
    let sctx = StaticContext::default();
    let dctx = DynamicContext::default();
    let mut ev = Evaluator::new(&sctx, &dctx);
    ev.eval_with_context(&expr, doc.root()).unwrap();
    let rebuilt = apply_tree_updates(&ev.updates).unwrap();
    assert_eq!(doc.root().to_xml(), "<a><b/></a>", "source immutable");
    assert_eq!(rebuilt[&doc.doc_seq].root().to_xml(), "<a/>");
}

#[test]
fn updates_across_multiple_documents() {
    let d1 = parse("<a><x/></a>").unwrap();
    let d2 = parse("<b><y/></b>").unwrap();
    let sctx = StaticContext::default();
    let mut dctx = DynamicContext::default();
    dctx.bind("other", demaq_xquery::Sequence::one(d2.root()));
    let expr = parse_expr("(do delete /a/x, do delete $other/b/y)").unwrap();
    let mut ev = Evaluator::new(&sctx, &dctx);
    ev.eval_with_context(&expr, d1.root()).unwrap();
    let rebuilt = apply_tree_updates(&ev.updates).unwrap();
    assert_eq!(rebuilt[&d1.doc_seq].root().to_xml(), "<a/>");
    assert_eq!(rebuilt[&d2.doc_seq].root().to_xml(), "<b/>");
}

#[test]
fn mixing_queue_and_tree_updates() {
    // Queue primitives coexist with tree updates on the same list; the
    // tree applier ignores the queue entries.
    let doc = parse("<r><kill/></r>").unwrap();
    let expr = parse_expr("(do enqueue <m/> into q, do delete //kill)").unwrap();
    let sctx = StaticContext::default();
    let dctx = DynamicContext::default();
    let mut ev = Evaluator::new(&sctx, &dctx);
    ev.eval_with_context(&expr, doc.root()).unwrap();
    assert_eq!(ev.updates.len(), 2);
    assert!(ev.updates.iter().any(|u| u.is_queue_update()));
    let rebuilt = apply_tree_updates(&ev.updates).unwrap();
    assert_eq!(rebuilt[&doc.doc_seq].root().to_xml(), "<r/>");
}
