//! Event notification with RSS/Atom-style feeds — one of the "Active Web"
//! protocol families the paper's introduction motivates ("event
//! notification using RSS/Atom feeds").
//!
//! A Demaq node aggregates entries from several feeds:
//! * entries arrive on an incoming gateway,
//! * a slicing groups entries per feed (dedup by entry id within a feed's
//!   slice lifetime),
//! * subscribers matching a category get immediate notifications through
//!   an outgoing gateway,
//! * a periodic digest (echo-queue timer) summarizes each feed and resets
//!   its slice, so old entries get garbage-collected.
//!
//! ```text
//! cargo run --example newsfeed
//! ```

use demaq::Server;
use demaq_net::{Clock, Envelope, Network};
use demaq_store::store::SyncPolicy;
use std::sync::{Arc, Mutex};

const PROGRAM: &str = r#"
    create queue entries kind incomingGateway mode persistent endpoint "urn:aggregator"
    create queue digests kind basic mode persistent
    create queue subscribers kind outgoingGateway mode persistent endpoint "urn:subscriber-hub"
    create queue echoQueue kind echo mode persistent
    create queue feedErrors kind basic mode persistent
    set errorqueue feedErrors

    create property feed as xs:string fixed queue entries value //entry/@feed
    create property entryID as xs:string fixed queue entries value //entry/@id
    create slicing byFeed on feed

    (: Immediate notification for breaking news. Upstream feeds redeliver
       entries, so dedup against the marker queue: the first processed copy
       records its entry id, later copies see the marker and stay quiet. :)
    create queue notified kind basic mode persistent
    create rule notifyBreaking for byFeed
      if (qs:message()/entry[@category = "breaking"]
          and not(qs:queue("notified")[/seen = qs:message()/entry/@id])) then
        (do enqueue <notification>
           <feed>{qs:slicekey()}</feed>
           {qs:message()/entry/title}
         </notification> into subscribers,
         do enqueue <seen>{string(qs:message()/entry/@id)}</seen> into notified)

    (: Kick off the digest timer once per window: arm it only when no
       digestDue for this feed is already parked on the echo queue. :)
    create rule armDigestTimer for byFeed
      if (not(qs:queue("echoQueue")[/digestDue/feed = qs:slicekey()])) then
        do enqueue <digestDue><feed>{qs:slicekey()}</feed></digestDue> into echoQueue
          with delay value "PT1H"
          with target value "digests"

    (: When the timer fires, summarize the window and reset the slice so the
       next window starts fresh and old entries become collectable. :)
    create rule buildDigest for digests
      if (//digestDue) then
        let $feed := string(//digestDue/feed)
        let $window := qs:queue("entries")[/entry/@feed = $feed]
        return (
          do enqueue <digest>
            <feed>{$feed}</feed>
            <count>{count(distinct-values($window/entry/@id))}</count>
            {for $t in distinct-values($window/entry/title) order by $t
             return <title>{$t}</title>}
          </digest> into subscribers,
          do reset byFeed key $feed)
"#;

fn entry(feed: &str, id: u32, category: &str, title: &str) -> String {
    format!("<entry feed='{feed}' id='{feed}-{id}' category='{category}'><title>{title}</title></entry>")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let clock = Clock::virtual_at(0);
    let net = Arc::new(Network::new(clock.clone(), 11));
    let hub_log = Arc::new(Mutex::new(Vec::<String>::new()));
    let hl = Arc::clone(&hub_log);
    net.register(
        "urn:subscriber-hub",
        Arc::new(move |env: Envelope| hl.lock().unwrap().push(env.body)),
    );

    let server = Server::builder()
        .program(PROGRAM)
        .in_memory()
        .sync_policy(SyncPolicy::Batch)
        .network(Arc::clone(&net))
        .server_addr("urn:aggregator")
        .build()?;

    // Feed traffic: two feeds, one breaking story (delivered twice by the
    // upstream — the duplicate is suppressed), assorted normal entries.
    let traffic = [
        entry("reuters", 1, "breaking", "Market halts"),
        entry("reuters", 1, "breaking", "Market halts"), // upstream duplicate
        entry("reuters", 2, "business", "Earnings roundup"),
        entry("heise", 1, "tech", "New kernel released"),
        entry("heise", 2, "breaking", "Zero-day disclosed"),
        entry("reuters", 3, "business", "Commodities close"),
    ];
    for e in &traffic {
        net.send(Envelope::new("urn:aggregator", "urn:feed-src", e.clone()))?;
    }
    server.run_until_idle()?; // also fast-forwards past the 1h digest timers

    let hub = hub_log.lock().unwrap().clone();
    println!("subscriber hub received {} messages:", hub.len());
    for m in &hub {
        println!("  {m}");
    }

    let notifications: Vec<&String> = hub
        .iter()
        .filter(|m| m.starts_with("<notification>"))
        .collect();
    let digests: Vec<&String> = hub.iter().filter(|m| m.starts_with("<digest>")).collect();
    assert_eq!(
        notifications.len(),
        2,
        "one breaking notification per story (dup suppressed)"
    );
    assert_eq!(digests.len(), 2, "one digest per feed window");
    let reuters_digest = digests.iter().find(|d| d.contains("reuters")).unwrap();
    assert!(
        reuters_digest.contains("<count>3</count>"),
        "{reuters_digest}"
    );

    // After the digests, slices were reset: all processed entries purge.
    let purged = server.maintenance()?;
    println!("\nretention GC purged {purged} messages after the digest reset");
    assert!(server.queue_bodies("entries")?.is_empty());

    let stats = server.stats();
    println!(
        "stats: processed={} rules evaluated={} timers fired={}",
        stats.processed, stats.rules_evaluated, stats.timers_fired
    );

    // demaq-obs summary: latency quantiles + per-queue throughput.
    let obs = server.metrics();
    let eval = obs.registry.histogram("demaq_engine_rule_eval_ns");
    let commit = obs.registry.histogram("demaq_engine_txn_commit_ns");
    println!("\n-- metrics (demaq-obs) --");
    println!(
        "rule eval: n={} p50={}ns p99={}ns | txn commit: n={} p50={}ns p99={}ns",
        eval.count(),
        eval.p50(),
        eval.p99(),
        commit.count(),
        commit.p50(),
        commit.p99()
    );
    for line in server
        .metrics_text()
        .lines()
        .filter(|l| l.starts_with("demaq_engine_processed_total{"))
    {
        println!("{line}");
    }
    Ok(())
}
