//! Throughput smoke check: 10k messages through a 4-rule pipeline,
//! `run_until_idle`, wall-clock msg/s — first with the default
//! observability configuration, then with event tracing disabled. Used
//! to bound the observability overhead (DESIGN.md §6) — run with
//! `--release`.

use demaq::Server;
use demaq_store::store::SyncPolicy;
use std::time::Instant;

const MESSAGES: usize = 10_000;
const RULES: usize = 4;

fn build_server() -> Result<Server, Box<dyn std::error::Error>> {
    let mut program = String::from(
        "create queue inbox kind basic mode persistent\n\
         create queue outbox kind basic mode persistent\n",
    );
    for r in 0..RULES {
        program.push_str(&format!(
            "create rule r{r} for inbox if (//kind{r}) then \
             do enqueue <out>{{//kind{r}/@n}}</out> into outbox\n"
        ));
    }
    Ok(Server::builder()
        .program(&program)
        .in_memory()
        .sync_policy(SyncPolicy::Batch)
        .build()?)
}

fn run(server: &Server) -> Result<f64, Box<dyn std::error::Error>> {
    let started = Instant::now();
    for i in 0..MESSAGES {
        let k = i % RULES;
        server.enqueue_external("inbox", &format!("<m><kind{k} n='{i}'/></m>"))?;
    }
    server.run_until_idle()?;
    let secs = started.elapsed().as_secs_f64();
    Ok(server.stats().processed as f64 / secs)
}

/// Best-of-N on fresh servers: the max filters out scheduler noise on
/// busy machines, which dwarfs the effect being measured.
fn best_rate(trace: bool) -> Result<f64, Box<dyn std::error::Error>> {
    let mut best = 0f64;
    for _ in 0..5 {
        let server = build_server()?;
        server.metrics().tracer.set_enabled(trace);
        best = best.max(run(&server)?);
    }
    Ok(best)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "tracing on (default): best {:.0} msg/s over 5 runs of {MESSAGES}",
        best_rate(true)?
    );
    println!(
        "tracing off         : best {:.0} msg/s over 5 runs of {MESSAGES}",
        best_rate(false)?
    );
    Ok(())
}
