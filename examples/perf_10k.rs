//! Throughput smoke check: 10k messages through a 4-rule pipeline,
//! `run_until_idle`, wall-clock msg/s — first with the default
//! observability configuration, then with event tracing disabled. Used
//! to bound the observability overhead (DESIGN.md §6) — run with
//! `--release`.
//!
//! Also guards the analysis pass (DESIGN.md §5.10): whole-application
//! analysis of the pipeline must stay well under 10 ms so it can run
//! unconditionally at every deploy, and the analysis-derived lock order
//! must drain a deadlock-prone cross-enqueue app on 4 threads without a
//! single deadlock retry.

use demaq::Server;
use demaq_analysis::LintConfig;
use demaq_store::store::SyncPolicy;
use demaq_store::LockGranularity;
use std::time::Instant;

const MESSAGES: usize = 10_000;
const RULES: usize = 4;

fn pipeline_program() -> String {
    let mut program = String::from(
        "create queue inbox kind basic mode persistent\n\
         create queue outbox kind basic mode persistent\n",
    );
    for r in 0..RULES {
        program.push_str(&format!(
            "create rule r{r} for inbox if (//kind{r}) then \
             do enqueue <out>{{//kind{r}/@n}}</out> into outbox\n"
        ));
    }
    program
}

fn build_server() -> Result<Server, Box<dyn std::error::Error>> {
    Ok(Server::builder()
        .program(&pipeline_program())
        .in_memory()
        .sync_policy(SyncPolicy::Batch)
        .build()?)
}

fn run(server: &Server) -> Result<f64, Box<dyn std::error::Error>> {
    let started = Instant::now();
    for i in 0..MESSAGES {
        let k = i % RULES;
        server.enqueue_external("inbox", &format!("<m><kind{k} n='{i}'/></m>"))?;
    }
    server.run_until_idle()?;
    let secs = started.elapsed().as_secs_f64();
    Ok(server.stats().processed as f64 / secs)
}

/// Best-of-N on fresh servers: the max filters out scheduler noise on
/// busy machines, which dwarfs the effect being measured.
fn best_rate(trace: bool) -> Result<f64, Box<dyn std::error::Error>> {
    let mut best = 0f64;
    for _ in 0..5 {
        let server = build_server()?;
        server.metrics().tracer.set_enabled(trace);
        best = best.max(run(&server)?);
    }
    Ok(best)
}

/// Time the whole-application analysis pass on its own (parse excluded):
/// it runs inside every `build()`, so it must be deploy-budget cheap.
fn analysis_budget() -> Result<(), Box<dyn std::error::Error>> {
    let spec = demaq_qdl::parse_program(&pipeline_program())?;
    let config = LintConfig::new();
    // Warm up, then take the best of 10: the guard bounds the cost of the
    // pass itself, not scheduler noise.
    demaq_analysis::analyze_spec(&spec, &config);
    let mut best = f64::INFINITY;
    for _ in 0..10 {
        let started = Instant::now();
        let a = demaq_analysis::analyze_spec(&spec, &config);
        best = best.min(started.elapsed().as_secs_f64() * 1e3);
        assert!(a.diagnostics.is_empty(), "pipeline must analyze clean");
    }
    println!("analysis pass       : best {best:.3} ms over 10 runs");
    if !cfg!(debug_assertions) {
        assert!(best < 10.0, "analysis must stay under 10 ms, got {best:.3}");
    }
    Ok(())
}

/// Drain a deadlock-prone cross-enqueue app on 4 threads. The
/// analysis-derived global lock order makes workers acquire `a` and `b`
/// in rank order, so the deadlock detector must never fire.
fn cross_enqueue_drain() -> Result<(), Box<dyn std::error::Error>> {
    let s = Server::builder()
        .program(
            "create queue a kind basic mode persistent\n\
             create queue b kind basic mode persistent\n\
             create queue done kind basic mode persistent\n\
             create rule ab for a if (//ping) then do enqueue <t/> into done\n\
             create rule ab2 for a if (//hop) then do enqueue <ping/> into b\n\
             create rule ba for b if (//ping) then do enqueue <t/> into done\n\
             create rule ba2 for b if (//hop) then do enqueue <ping/> into a\n",
        )
        .in_memory()
        .sync_policy(SyncPolicy::Batch)
        .lock_granularity(LockGranularity::Queue)
        .build()?;
    for i in 0..2000 {
        s.enqueue_external(if i % 2 == 0 { "a" } else { "b" }, "<hop/>")?;
    }
    let started = Instant::now();
    s.process_all_parallel(4)?;
    s.process_all_parallel(4)?;
    let secs = started.elapsed().as_secs_f64();
    let stats = s.stats();
    println!(
        "4-thread cross drain: {:.0} msg/s, {} deadlock retries",
        stats.processed as f64 / secs,
        stats.deadlock_retries
    );
    assert_eq!(
        stats.deadlock_retries, 0,
        "analysis lock order must avoid deadlocks entirely"
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "tracing on (default): best {:.0} msg/s over 5 runs of {MESSAGES}",
        best_rate(true)?
    );
    println!(
        "tracing off         : best {:.0} msg/s over 5 runs of {MESSAGES}",
        best_rate(false)?
    );
    analysis_budget()?;
    cross_enqueue_drain()?;
    Ok(())
}
