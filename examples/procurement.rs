//! The paper's running example end-to-end: the distributed procurement
//! scenario from the chemical industry (Fig. 3 workflow, Fig. 4 message
//! flow), including
//!
//! * receive offer request → three parallel checks (credit rating, export
//!   restrictions, plant capacity via the supplier's Web Service),
//! * join of the parallel control flows through a slicing (Example 3.3),
//! * offer / refusal to the customer,
//! * order confirmation, invoice, grace period via an echo queue, and a
//!   payment reminder (Example 3.4),
//! * error handling with a dead customer link compensated by postal mail
//!   (Example 3.5),
//! * slice resets + retention GC cleaning up completed requests (Fig. 8).
//!
//! The supplier Web Service and the customer endpoint are simulated nodes
//! on the in-process network.
//!
//! ```text
//! cargo run --example procurement
//! ```

use demaq::Server;
use demaq_net::{Clock, Envelope, Network};
use demaq_store::store::SyncPolicy;
use std::sync::Arc;
use std::sync::Mutex;

const SUPPLIER_WSDL: &str = r#"
<definitions service="supplier">
  <port name="CapacityRequestPort">
    <operation name="checkCapacity" input="plantCapacityInfo" output="capacityResult"/>
  </port>
</definitions>"#;

const PROGRAM: &str = r#"
    (: ---- queue infrastructure (QDL, paper Sec. 2) -------------------- :)
    create queue crm kind basic mode persistent
    create queue finance kind basic mode persistent
    create queue legal kind basic mode persistent
    create queue invoices kind basic mode persistent
    create queue crmErrors kind basic mode persistent
    create queue deadLetter kind basic mode persistent

    create queue supplier kind outgoingGateway mode persistent
        interface supplier.wsdl port CapacityRequestPort
        using WS-ReliableMessaging policy wsrmpol.xml
        endpoint "urn:supplier-ws"
    create queue supplierReplies kind incomingGateway mode persistent
        endpoint "urn:procurement-node"
    create queue customer kind outgoingGateway mode persistent
        endpoint "urn:customer"
    create queue postalService kind outgoingGateway mode persistent
        endpoint "urn:postal"
    create queue echoQueue kind echo mode persistent

    (: ---- properties & slicings (Sec. 2.2 / 2.3) ----------------------- :)
    create property requestID as xs:string fixed
        queue crm, customer, supplierReplies, finance, legal value //requestID
    create slicing requestMsgs on requestID

    (: ---- Example 3.1: fork the three checks --------------------------- :)
    create rule newOfferRequest for crm
      if (//offerRequest) then
        let $customerInfo :=
          <requestCustomerInfo>{//requestID} {//customerID}</requestCustomerInfo>
        let $exportRestrictionInfo :=
          <requestRestrictionInfo>{//requestID} {//items}</requestRestrictionInfo>
        let $plantCapacityInfo :=
          <plantCapacityInfo>{//requestID} {//items}</plantCapacityInfo>
        return (do enqueue $customerInfo into finance,
                do enqueue $exportRestrictionInfo into legal,
                do enqueue $plantCapacityInfo into supplier
                  with Sender value "urn:procurement-node")

    (: ---- Example 3.2: credit rating against the invoices queue -------- :)
    create rule checkCreditRating for finance
      if (//requestCustomerInfo) then
        let $result :=
          <customerInfoResult> {//requestID} {//customerID}
            {let $invoices := qs:queue("invoices")
             return
               if ($invoices[//customerID = qs:message()//customerID])
               then <refuse/> (: unpaid bills! :)
               else <accept/>}
          </customerInfoResult>
        return do enqueue $result into crm

    (: ---- export restriction screening --------------------------------- :)
    create rule checkExportRestrictions for legal
      if (//requestRestrictionInfo) then
        let $restricted := //item[text() = "yellowcake"]
        let $result :=
          <restrictionsResult> {//requestID}
            {for $r in $restricted return <restrictedItem>{$r/text()}</restrictedItem>}
          </restrictionsResult>
        return do enqueue $result into crm

    (: ---- supplier replies come back through the incoming gateway ------ :)
    create rule relaySupplierReply for supplierReplies
      if (//capacityResult) then
        do enqueue <capacityResult>{//requestID}
          {if (//accept) then <accept/> else <reject/>}</capacityResult> into crm

    (: ---- Example 3.3: join the parallel checks ------------------------- :)
    create rule joinOrder for requestMsgs
      if (qs:slice()[/customerInfoResult] and
          qs:slice()[/restrictionsResult] and
          qs:slice()[/capacityResult] and
          not(qs:slice()[/offer or /refusal])) then
        if (qs:slice()[/customerInfoResult/accept] and
            not(qs:slice()[/restrictionsResult//restrictedItem])
            and qs:slice()[/capacityResult//accept]) then
          let $pricelist := collection("crm")[/pricelist]
          return do enqueue <offer>{//requestID}{$pricelist//price}</offer> into customer
        else (: problems :)
          do enqueue <refusal>{//requestID}</refusal> into customer

    (: ---- Fig. 8: release completed requests ----------------------------- :)
    create rule cleanupRequest for requestMsgs
      if (qs:slice()/offer or qs:slice()/refusal) then
        do reset

    (: ---- Example 3.4: invoice grace period & reminder ------------------- :)
    create property messageRequestID as xs:string fixed
        queue invoices value //requestID
    create slicing invoiceRetention on messageRequestID
    create rule sendInvoice for invoices
      if (//invoice) then
        do enqueue <timeoutNotification>{//requestID}</timeoutNotification> into echoQueue
          with delay value "P7D"
          with target value "finance"
    create rule checkPayment for finance
      if (//timeoutNotification) then
        let $mRID := string(qs:message()//requestID)
        let $payments := qs:queue("finance")[/paymentConfirmation]
        return
          if (not($payments[//requestID = $mRID])) then
            do enqueue <reminder><requestID>{$mRID}</requestID></reminder> into customer
          else (: paid: the invoice needs no further retention — release its
                  slice, Fig. 8 style (and satisfy the analyzer's DQ012) :)
            do reset invoiceRetention key $mRID

    (: ---- Example 3.5: compensate dead customer links -------------------- :)
    create rule deadLink for crmErrors
      errorqueue deadLetter
      if (/error/disconnectedTransport) then
        do enqueue <sendMessage><address>postal-address-on-file</address>
          {/error/initialMessage/*}</sendMessage> into postalService

    (: errors of the whole crm pipeline land in crmErrors :)
    set errorqueue crmErrors
"#;

/// The supplier's Web Service: accepts plantCapacityInfo, replies with a
/// capacityResult (capacity is available unless the request mentions
/// "unobtainium").
fn spawn_supplier_service(net: &Arc<Network>) {
    let net2 = Arc::clone(net);
    // The gateway uses WS-ReliableMessaging, so the service side must speak
    // the ack protocol: wrap the handler in `reliable_receiver`.
    let handler: demaq_net::DeliveryHandler = Arc::new(move |env: Envelope| {
        let doc = demaq_xml::parse(&env.body).expect("well-formed request");
        let rid = demaq_xquery::eval_query("string(//requestID)", &doc.root())
            .map(|s| s.to_string())
            .unwrap_or_default();
        let impossible = env.body.contains("unobtainium");
        let verdict = if impossible { "<reject/>" } else { "<accept/>" };
        let reply_to = env
            .header("Sender")
            .unwrap_or("urn:procurement-node")
            .to_string();
        let body =
            format!("<capacityResult><requestID>{rid}</requestID>{verdict}</capacityResult>");
        let _ = net2.send(Envelope::new(reply_to, "urn:supplier-ws", body));
    });
    net.register(
        "urn:supplier-ws",
        demaq_net::reliable::reliable_receiver(Arc::clone(net), handler),
    );
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let clock = Clock::virtual_at(1_750_000_000_000); // mid-2025ish epoch ms
    let net = Arc::new(Network::new(clock.clone(), 4242));
    spawn_supplier_service(&net);

    // The customer endpoint logs what it receives.
    let customer_log = Arc::new(Mutex::new(Vec::<String>::new()));
    let cl = Arc::clone(&customer_log);
    net.register(
        "urn:customer",
        Arc::new(move |env| cl.lock().unwrap().push(env.body)),
    );
    let postal_log = Arc::new(Mutex::new(Vec::<String>::new()));
    let pl = Arc::clone(&postal_log);
    net.register(
        "urn:postal",
        Arc::new(move |env| pl.lock().unwrap().push(env.body)),
    );

    let pricelist = demaq_xml::parse("<pricelist><price currency='EUR'>950</price></pricelist>")?;
    let server = Server::builder()
        .program(PROGRAM)
        .wsdl_file("supplier.wsdl", SUPPLIER_WSDL)
        .in_memory()
        .sync_policy(SyncPolicy::Batch)
        .network(Arc::clone(&net))
        .collection("crm", vec![pricelist])
        .server_addr("urn:procurement-node")
        .build()?;

    // Customer c9 has an unpaid bill on file.
    server.enqueue_external(
        "invoices",
        "<oldInvoice><customerID>c9</customerID></oldInvoice>",
    )?;
    server.run_until_idle()?;

    println!("== Scenario 1: clean request -> offer =============================");
    server.enqueue_external(
        "crm",
        "<offerRequest><requestID>R-100</requestID><customerID>c1</customerID>\
         <items><item>solvent</item><item>catalyst</item></items></offerRequest>",
    )?;
    server.run_until_idle()?;
    println!(
        "customer received: {:?}",
        customer_log.lock().unwrap().last()
    );
    assert!(customer_log
        .lock()
        .unwrap()
        .last()
        .unwrap()
        .starts_with("<offer>"));

    println!("\n== Scenario 2: bad credit -> refusal ==============================");
    server.enqueue_external(
        "crm",
        "<offerRequest><requestID>R-101</requestID><customerID>c9</customerID>\
         <items><item>solvent</item></items></offerRequest>",
    )?;
    server.run_until_idle()?;
    println!(
        "customer received: {:?}",
        customer_log.lock().unwrap().last()
    );
    assert!(customer_log
        .lock()
        .unwrap()
        .last()
        .unwrap()
        .starts_with("<refusal>"));

    println!("\n== Scenario 3: restricted item -> refusal =========================");
    server.enqueue_external(
        "crm",
        "<offerRequest><requestID>R-102</requestID><customerID>c2</customerID>\
         <items><item>yellowcake</item></items></offerRequest>",
    )?;
    server.run_until_idle()?;
    assert!(customer_log
        .lock()
        .unwrap()
        .last()
        .unwrap()
        .starts_with("<refusal>"));
    println!(
        "customer received: {:?}",
        customer_log.lock().unwrap().last()
    );

    println!("\n== Scenario 4: invoice, grace period, reminder ====================");
    server.enqueue_external(
        "invoices",
        "<invoice><requestID>R-100</requestID><amount>950</amount></invoice>",
    )?;
    server.run_until_idle()?; // fast-forwards the 7-day grace period
    let reminder = customer_log.lock().unwrap().last().cloned().unwrap();
    println!("customer received: {reminder:?}");
    assert!(reminder.contains("<reminder>"));

    println!("\n== Scenario 5: dead link -> postal compensation ===================");
    net.disconnect("urn:customer");
    server.enqueue_external(
        "crm",
        "<offerRequest><requestID>R-103</requestID><customerID>c3</customerID>\
         <items><item>solvent</item></items></offerRequest>",
    )?;
    server.run_until_idle()?;
    let mail = postal_log
        .lock()
        .unwrap()
        .last()
        .cloned()
        .expect("postal compensation sent");
    println!("postal service received: {mail:?}");
    assert!(mail.contains("<offer>"));
    net.reconnect("urn:customer");

    println!("\n== Maintenance: retention GC + checkpoint =========================");
    let before = server.store().message_count();
    let purged = server.maintenance()?;
    println!(
        "purged {purged} of {before} messages (completed requests were released by cleanupRequest)"
    );

    let stats = server.stats();
    println!(
        "\nstats: processed={} enqueued={} rules={} (skipped {}) errors routed={} timers={} retransmissions={}",
        stats.processed,
        stats.enqueued,
        stats.rules_evaluated,
        stats.rules_skipped_by_filter,
        stats.errors_routed,
        stats.timers_fired,
        server.network().stats().0,
    );

    // demaq-obs summary: latency quantiles + per-queue throughput.
    let obs = server.metrics();
    let eval = obs.registry.histogram("demaq_engine_rule_eval_ns");
    let commit = obs.registry.histogram("demaq_engine_txn_commit_ns");
    println!("\n-- metrics (demaq-obs) --");
    println!(
        "rule eval: n={} p50={}ns p99={}ns | txn commit: n={} p50={}ns p99={}ns",
        eval.count(),
        eval.p50(),
        eval.p99(),
        commit.count(),
        commit.p50(),
        commit.p99()
    );
    for line in server
        .metrics_text()
        .lines()
        .filter(|l| l.starts_with("demaq_engine_processed_total{"))
    {
        println!("{line}");
    }
    Ok(())
}
