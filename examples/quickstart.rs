//! Quickstart: the smallest useful Demaq application.
//!
//! Declares two queues and one declarative rule, injects a message, runs
//! the engine to quiescence, and inspects the result.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use demaq::Server;
use demaq_store::store::SyncPolicy;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A Demaq application is just queues + rules (paper Sec. 1: "the
    // behavior of any node can be completely specified by enumerating its
    // queues and associated rules").
    let program = r#"
        create queue orders kind basic mode persistent
        create queue confirmations kind basic mode persistent
        create queue rejections kind basic mode persistent

        (: Orders above 1000 units are rejected, the rest confirmed. :)
        create rule triage for orders
          if (//order) then
            if (//order/quantity <= 1000) then
              do enqueue <confirmation>
                           {//order/id}
                           <status>accepted</status>
                         </confirmation> into confirmations
            else
              do enqueue <rejection>{//order/id}</rejection> into rejections
    "#;

    let server = Server::builder()
        .program(program)
        .in_memory()
        .sync_policy(SyncPolicy::Batch)
        .build()?;

    server.enqueue_external(
        "orders",
        "<order><id>A-1</id><quantity>250</quantity></order>",
    )?;
    server.enqueue_external(
        "orders",
        "<order><id>A-2</id><quantity>8000</quantity></order>",
    )?;
    server.enqueue_external(
        "orders",
        "<order><id>A-3</id><quantity>1000</quantity></order>",
    )?;

    let processed = server.run_until_idle()?;
    println!("processed {processed} messages\n");

    println!("confirmations:");
    for body in server.queue_bodies("confirmations")? {
        println!("  {body}");
    }
    println!("rejections:");
    for body in server.queue_bodies("rejections")? {
        println!("  {body}");
    }

    let stats = server.stats();
    println!(
        "\nstats: processed={} enqueued={} rules evaluated={}",
        stats.processed, stats.enqueued, stats.rules_evaluated
    );

    assert_eq!(server.queue_bodies("confirmations")?.len(), 2);
    assert_eq!(server.queue_bodies("rejections")?.len(), 1);

    // demaq-obs summary: latency quantiles + per-queue throughput.
    let obs = server.metrics();
    let eval = obs.registry.histogram("demaq_engine_rule_eval_ns");
    let commit = obs.registry.histogram("demaq_engine_txn_commit_ns");
    println!("\n-- metrics (demaq-obs) --");
    println!(
        "rule eval: n={} p50={}ns p99={}ns | txn commit: n={} p50={}ns p99={}ns",
        eval.count(),
        eval.p50(),
        eval.p99(),
        commit.count(),
        commit.p50(),
        commit.p99()
    );
    for line in server
        .metrics_text()
        .lines()
        .filter(|l| l.starts_with("demaq_engine_processed_total{"))
    {
        println!("{line}");
    }
    Ok(())
}
