//! IoT telemetry fan-in with per-device windowed aggregates — the
//! "sensor networks" application family from the paper's introduction,
//! exercising the incremental aggregate registry (ISSUE 9) end to end.
//!
//! Thousands of readings fan into one queue; a slicing partitions them
//! per device, and two slicing rules aggregate over each device's slice
//! on *every* arrival:
//! * `rollover` — when the device's window fills (`count(qs:slice())`),
//!   emit a `<window>` report with `sum`/`min`/`max` over the window and
//!   reset the slice, so the processed readings become collectable;
//! * `spike` — flag any reading more than twice the window's running
//!   mean (`count` + `sum`, no stored state).
//!
//! With the aggregate registry (the default), each arrival extends the
//! device's materialized cells by exactly one member instead of
//! rescanning the slice, so the whole soak stays flat per message; the
//! example asserts real registry traffic (`hits`/`deltas` counters) and
//! behaves as a miniature soak test: ~1.5k messages, six window
//! generations per device, GC after every generation.
//!
//! ```text
//! cargo run --example telemetry
//! ```

use demaq::Server;
use demaq_store::store::SyncPolicy;

const DEVICES: usize = 16;
const READINGS_PER_DEVICE: usize = 96;
const WINDOW: usize = 16;

const PROGRAM: &str = r#"
    create queue readings kind basic mode persistent
    create queue reports kind basic mode persistent
    create queue alerts kind basic mode persistent

    create property device as xs:string fixed queue readings value //reading/@dev
    create slicing byDevice on device

    (: A full window: summarize it and reset so the next one starts
       empty and the summarized readings can be garbage-collected. :)
    create rule rollover for byDevice
      if (count(qs:slice()) >= 16) then
        (do enqueue <window dev="{qs:slicekey()}"
                            n="{count(qs:slice())}"
                            total="{sum(qs:slice()//v)}"
                            lo="{min(qs:slice()//v)}"
                            hi="{max(qs:slice()//v)}"/> into reports,
         do reset)

    (: Spike detection against the window's running mean, expressed
       multiplicatively (v > 2 * sum/count) to stay in integer land. :)
    create rule spike for byDevice
      if (count(qs:slice()) >= 4 and
          qs:message()//v * count(qs:slice()) > 2 * sum(qs:slice()//v)) then
        do enqueue <spike dev="{qs:slicekey()}" v="{qs:message()//v/text()}"/> into alerts
"#;

/// Deterministic reading stream: device `i % DEVICES`, values wobbling
/// around 15, with every 37th reading a 100-unit spike.
fn reading(i: usize) -> String {
    let dev = i % DEVICES;
    let v = if i % 37 == 36 { 100 } else { 10 + (i * 7) % 11 };
    format!("<reading dev='d{dev}'><v>{v}</v></reading>")
}

fn counter(server: &Server, name: &str) -> u64 {
    server.metrics().registry.counter_total(name)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let server = Server::builder()
        .program(PROGRAM)
        .in_memory()
        .sync_policy(SyncPolicy::Batch)
        .build()?;

    let total = DEVICES * READINGS_PER_DEVICE;
    let mut purged = 0usize;
    let mut reports: Vec<String> = Vec::new();
    let mut alerts: Vec<String> = Vec::new();
    for i in 0..total {
        server.enqueue_external("readings", &reading(i))?;
        // Drain in bursts so arrivals pile up like a real fan-in. The
        // egress queues have no rules, so their messages count as
        // processed and nothing retains them — harvest them *before*
        // maintenance, which GCs them along with the reset windows.
        if i % 64 == 63 {
            server.run_until_idle()?;
            reports.extend(server.queue_bodies("reports")?);
            alerts.extend(server.queue_bodies("alerts")?);
            purged += server.maintenance()?;
        }
    }
    server.run_until_idle()?;
    reports.extend(server.queue_bodies("reports")?);
    alerts.extend(server.queue_bodies("alerts")?);
    purged += server.maintenance()?;
    let expected_windows = total / WINDOW;
    println!(
        "telemetry: {total} readings from {DEVICES} devices → {} window reports, \
         {} spike alerts, {purged} messages purged by retention GC",
        reports.len(),
        alerts.len()
    );
    for r in reports.iter().take(3) {
        println!("  {r}");
    }

    assert_eq!(
        reports.len(),
        expected_windows,
        "every full window must produce exactly one report"
    );
    assert!(
        reports.iter().all(|r| r.contains(&format!("n=\"{WINDOW}\""))),
        "windows roll over at exactly {WINDOW} members"
    );
    assert!(!alerts.is_empty(), "the 100-unit spikes must be flagged");
    assert!(
        purged > total / 2,
        "reset windows must be garbage-collected, purged only {purged}"
    );

    // The whole point: the registry — not a rescan — answered the
    // per-arrival aggregate reads. `count(qs:slice())` is membership-only
    // (hits); the stepped `sum`/`min`/`max` cells grow by delta.
    let hits = counter(&server, "demaq_core_agg_hits_total");
    let deltas = counter(&server, "demaq_core_agg_deltas_total");
    let rebuilds = counter(&server, "demaq_core_agg_rebuilds_total");
    println!("aggregate registry: hits={hits} deltas={deltas} rebuilds={rebuilds}");
    assert!(hits > 0, "aggregate reads never hit the registry");
    assert!(deltas > 0, "append-only growth never took the delta path");
    assert!(
        deltas >= rebuilds,
        "steady-state growth should be delta-dominated (deltas={deltas}, rebuilds={rebuilds})"
    );

    let stats = server.stats();
    println!(
        "stats: processed={} rules_evaluated={} errors_routed={}",
        stats.processed, stats.rules_evaluated, stats.errors_routed
    );
    assert_eq!(stats.errors_routed, 0, "soak must stay error-free");
    Ok(())
}
