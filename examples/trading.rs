//! Securities trading with XML messages — the paper's introduction cites
//! "industry sectors as diverse as securities trading … have successfully
//! introduced XML messaging" (FIX protocol).
//!
//! A Demaq node implements a tiny order-alert desk:
//! * price ticks and standing limit orders arrive in queues,
//! * a slicing per symbol correlates ticks with the symbol's open orders,
//! * when a tick crosses an order's limit, an execution report goes out and
//!   the order's slice lifetime ends (so its messages can be collected),
//! * stale ticks are ignored; an audit trail retains all executions via a
//!   second, per-day slicing until an end-of-day close-out releases the day
//!   (multiple independent retention criteria, Sec. 2.3.3).
//!
//! ```text
//! cargo run --example trading
//! ```

use demaq::Server;
use demaq_store::store::SyncPolicy;

const PROGRAM: &str = r#"
    create queue orders kind basic mode persistent
    create queue ticks kind basic mode transient   (: market data is lossy by nature :)
    create queue executions kind basic mode persistent
    create queue deskErrors kind basic mode persistent
    set errorqueue deskErrors

    (: Correlate per symbol. :)
    create property symbol as xs:string fixed
        queue orders value //@symbol
        queue ticks value //@symbol
        queue executions value //@symbol
    create slicing bySymbol on symbol

    (: Audit: every execution is retained per trading day. :)
    create queue dayClose kind basic mode persistent
    create property tradingDay as xs:string fixed
        queue executions, dayClose value //@day
    create slicing auditByDay on tradingDay

    (: The day's audit trail is released only by an explicit end-of-day
       close-out message — per-day slicing exists exactly so whole days
       can be archived and let go (Sec. 2.3.3). :)
    create rule archiveDay for auditByDay
      if (qs:message()/dayClose) then
        do reset

    (: A tick executes every open buy-limit order whose limit it crosses
       (price <= limit) and that has not executed yet. :)
    create rule matchTick for bySymbol
      if (qs:message()/tick) then
        let $price := number(qs:message()/tick/@price)
        let $day := string(qs:message()/tick/@day)
        for $order in qs:slice()[/order]/order
        where $price <= number($order/@limit)
          and not(qs:queue("executions")[/execution/@orderID = $order/@id])
        return
          do enqueue <execution day="{$day}"
                       orderID="{string($order/@id)}"
                       symbol="{string($order/@symbol)}"
                       qty="{string($order/@qty)}"
                       price="{$price}"/> into executions

    (: Once every order of a symbol has executed, end the slice lifetime —
       the symbol's worked-off orders and stale ticks become collectable. :)
    create rule retireSymbol for bySymbol
      if (qs:message()/execution) then
        if (every $order in qs:slice()[/order]/order satisfies
              qs:queue("executions")[/execution/@orderID = $order/@id]) then
          do reset bySymbol key qs:slicekey()
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let server = Server::builder()
        .program(PROGRAM)
        .in_memory()
        .sync_policy(SyncPolicy::Batch)
        .build()?;

    // Standing buy-limit orders.
    server.enqueue_external(
        "orders",
        r#"<order id="O-1" symbol="ACME" qty="100" limit="50"/>"#,
    )?;
    server.enqueue_external(
        "orders",
        r#"<order id="O-2" symbol="ACME" qty="20" limit="45"/>"#,
    )?;
    server.enqueue_external(
        "orders",
        r#"<order id="O-3" symbol="INIT" qty="10" limit="99"/>"#,
    )?;
    server.run_until_idle()?;

    // Market data: ACME drifts down through the limits.
    for (price, day) in [(52.0, "D1"), (49.5, "D1"), (46.0, "D2"), (44.0, "D2")] {
        server.enqueue_external(
            "ticks",
            &format!(r#"<tick symbol="ACME" price="{price}" day="{day}"/>"#),
        )?;
        server.run_until_idle()?;
    }

    let executions = server.queue_bodies("executions")?;
    println!("executions ({}):", executions.len());
    for e in &executions {
        println!("  {e}");
    }
    assert_eq!(executions.len(), 2);
    assert!(
        executions[0].contains(r#"orderID="O-1""#) && executions[0].contains(r#"price="49.5""#)
    );
    assert!(executions[1].contains(r#"orderID="O-2""#) && executions[1].contains(r#"price="44""#));

    // retireSymbol reset the ACME slice once both orders executed; the
    // INIT order never executed and stays retained.
    let purged = server.gc()?;
    println!("\nGC purged {purged} messages (worked-off ACME orders and processed ticks)");
    let remaining_orders = server.queue_bodies("orders")?;
    assert_eq!(
        remaining_orders.len(),
        1,
        "only the unexecuted INIT order remains"
    );
    assert!(remaining_orders[0].contains("O-3"));

    // The audit slicing retains every execution independently.
    let audit_d1 = server
        .store()
        .slice_members("auditByDay", &demaq_store::PropValue::Str("D1".into()));
    let audit_d2 = server
        .store()
        .slice_members("auditByDay", &demaq_store::PropValue::Str("D2".into()));
    println!(
        "audit: D1={} D2={} executions retained",
        audit_d1.len(),
        audit_d2.len()
    );
    assert_eq!((audit_d1.len(), audit_d2.len()), (1, 1));
    assert_eq!(
        server.queue_bodies("executions")?.len(),
        2,
        "audit retention held"
    );

    let stats = server.stats();
    println!(
        "stats: processed={} rules evaluated={} errors routed={}",
        stats.processed, stats.rules_evaluated, stats.errors_routed
    );

    // demaq-obs summary: latency quantiles + per-queue throughput.
    let obs = server.metrics();
    let eval = obs.registry.histogram("demaq_engine_rule_eval_ns");
    let commit = obs.registry.histogram("demaq_engine_txn_commit_ns");
    println!("\n-- metrics (demaq-obs) --");
    println!(
        "rule eval: n={} p50={}ns p99={}ns | txn commit: n={} p50={}ns p99={}ns",
        eval.count(),
        eval.p50(),
        eval.p99(),
        commit.count(),
        commit.p50(),
        commit.p99()
    );
    for line in server
        .metrics_text()
        .lines()
        .filter(|l| l.starts_with("demaq_engine_processed_total{"))
    {
        println!("{line}");
    }
    Ok(())
}
