#!/usr/bin/env bash
# Repo CI gate: build, test, lint. Runs fully offline — every external
# dependency is a vendored path crate, so --offline never hits the net.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "== build (release) =="
cargo build --release --offline --workspace

echo "== test =="
cargo test -q --offline --workspace

echo "== clippy =="
# --no-deps keeps the vendored shims out of the lint gate; warnings in
# first-party crates are errors.
if cargo clippy --version >/dev/null 2>&1; then
    cargo clippy --offline --workspace --no-deps -- -D warnings
else
    echo "clippy not installed; skipping lint" >&2
fi

echo "== ci ok =="
