#!/usr/bin/env bash
# Repo CI gate: build, test, lint. Runs fully offline — every external
# dependency is a vendored path crate, so --offline never hits the net.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "== build (release) =="
cargo build --release --offline --workspace

echo "== test =="
cargo test -q --offline --workspace

echo "== demaq-lint: whole-application analysis =="
LINT=target/release/demaq-lint
# Every shipped program must analyze clean (exit 0)…
"$LINT" --format json examples/*.rs tests/paper_listings.rs tests/slicing_fig2.rs \
    | tee target/lint.json | tail -c 120; echo
# …and the seeded-defect fixture must be caught (exit nonzero).
if "$LINT" --format json scripts/lint/seeded_defect.qdl > /dev/null; then
    echo "lint gate failed open: seeded defects were not detected" >&2
    exit 1
fi
echo "lint: repo programs clean, seeded defects detected"

echo "== crash-recovery suite (100 randomized kill points) =="
DEMAQ_CRASH_ITERS=100 cargo test --offline -p demaq-store --test crash_recovery -- --nocapture

echo "== bench smoke: E9 group commit =="
# Shrunk sizes; dumps the batch-size histogram + sync counters. Cargo runs
# benches with the package dir as CWD, so mirror the exposition file into
# the workspace-level target/metrics/.
DEMAQ_E9_SMOKE=1 cargo bench --offline -p demaq-bench --bench e9_group_commit
mkdir -p target/metrics
cp -f crates/bench/target/metrics/e9_group_commit.prom target/metrics/ 2>/dev/null || true

echo "== bench smoke: E10 document/slice-sequence cache =="
# Asserts linear parse shape and live hit traffic internally; the gate
# below re-checks the exposition so a silently-disabled cache fails CI.
DEMAQ_E10_SMOKE=1 cargo bench --offline -p demaq-bench --bench e10_doc_cache
cp -f crates/bench/target/metrics/e10_doc_cache.prom \
      crates/bench/target/metrics/e10_doc_cache_uncached.prom target/metrics/ 2>/dev/null || true
# The slice-sequence cache serves an append-only slice via the
# incremental-extend path, so count appends alongside same-version hits.
awk '$1 == "demaq_core_doc_cache_hits_total" { hits = $2 }
     $1 == "demaq_core_slice_seq_hits_total" { seq += $2 }
     $1 == "demaq_core_slice_seq_appends_total" { seq += $2 }
     END { if (hits + 0 <= 0 || seq + 0 <= 0) {
               print "e10: cache hit counters are zero (doc=" hits ", seq=" seq ")"; exit 1 }
           print "e10: doc_cache_hits=" hits " slice_seq_hits+appends=" seq }' \
    target/metrics/e10_doc_cache.prom

echo "== bench smoke: E11 lowered execution plans =="
# Asserts lowered >= reference rule-eval throughput internally (the 1.5x
# floor runs in the full bench; smoke only gates "not slower") and that
# plans were lowered and existence tests short-circuited.
DEMAQ_E11_SMOKE=1 cargo bench --offline -p demaq-bench --bench e11_lowered_plans
cp -f crates/bench/target/metrics/e11_lowered_plans.prom \
      crates/bench/target/metrics/e11_lowered_plans_reference.prom target/metrics/ 2>/dev/null || true
awk '$1 == "demaq_xquery_plans_lowered_total" { plans = $2 }
     $1 == "demaq_xquery_ebv_short_circuits_total" { ebv = $2 }
     $1 == "demaq_xquery_interned_symbols" { syms = $2 }
     END { if (plans + 0 <= 0 || ebv + 0 <= 0 || syms + 0 <= 0) {
               print "e11: lowered-plan counters are zero (plans=" plans ", ebv=" ebv ", syms=" syms ")"; exit 1 }
           print "e11: plans_lowered=" plans " ebv_short_circuits=" ebv " interned_symbols=" syms }' \
    target/metrics/e11_lowered_plans.prom

echo "== bench smoke: E12 sustained drain (4 workers, fsync-always) =="
# Composed hot path under full durability; asserts lineage coverage and
# per-rule attribution internally, and 4 workers must finish the drain.
# Snapshot the committed trajectory entry first — the smoke run overwrites
# BENCH_E12.json in place, and the perf gate below compares against the
# committed numbers.
mkdir -p target
cp -f BENCH_E12.json target/e12_baseline.json
DEMAQ_E12_SMOKE=1 cargo bench --offline -p demaq-bench --bench e12_sustained_drain
cp -f crates/bench/target/metrics/e12_sustained_drain.prom target/metrics/ 2>/dev/null || true

echo "== bench smoke: E13 sharded drain scaling (1/2/4 shards) =="
# The sharded runtime must beat the single-WAL baseline by whatever the
# host's fsync parallelism allows: the bench probes N-stream append+fsync
# throughput first and asserts scaling_4v1 against that host-adaptive
# ceiling internally (a fixed 1.8x would be unfalsifiable on a 1-core
# runner and too lax on a real 4-core box). It also asserts zero
# cross-shard forwards (placement keeps the keyed chain shard-local),
# zero payload copies, and zero trace-ring overwrites.
cp -f BENCH_E13.json target/e13_baseline.json
DEMAQ_E13_SMOKE=1 cargo bench --offline -p demaq-bench --bench e13_sharded_drain

echo "== bench smoke: E14 incremental slice aggregates =="
# The aggregate registry must answer every read of the hot slice: the
# bench asserts the delta/rebuild counter shape internally (deltas linear
# in N, rebuilds rare, membership-only count answered as hits), and the
# full-mode run additionally asserts the >=5x end-to-end win over the
# rescan twin at N=1024. The gate below re-checks the exposition so a
# silently-disabled registry fails CI.
cp -f BENCH_E14.json target/e14_baseline.json
DEMAQ_E14_SMOKE=1 cargo bench --offline -p demaq-bench --bench e14_incremental_aggregates
cp -f crates/bench/target/metrics/e14_incremental_aggregates.prom \
      crates/bench/target/metrics/e14_incremental_aggregates_rescan.prom target/metrics/ 2>/dev/null || true
awk '$1 == "demaq_core_agg_hits_total" { hits = $2 }
     $1 == "demaq_core_agg_deltas_total" { deltas = $2 }
     END { if (hits + 0 <= 0 || deltas + 0 <= 0) {
               print "e14: aggregate registry counters are zero (hits=" hits ", deltas=" deltas ")"; exit 1 }
           print "e14: agg_hits=" hits " agg_deltas=" deltas }' \
    target/metrics/e14_incremental_aggregates.prom

echo "== bench smoke: E15 static retention soak =="
# The liveness plan must actually narrow: the soak asserts internally
# that the narrowed twin released members, its resident bytes plateau
# while the full-retention twin keeps growing, and the observable stats
# match. The gate below re-checks the exposition so a silently-disabled
# plan (narrowing gated off, plan never lowered) fails CI.
cp -f BENCH_E15.json target/e15_baseline.json
DEMAQ_E15_SMOKE=1 cargo bench --offline -p demaq-bench --bench e15_retention_soak
cp -f crates/bench/target/metrics/e15_retention_soak.prom \
      crates/bench/target/metrics/e15_retention_soak_full.prom target/metrics/ 2>/dev/null || true
awk '$1 == "demaq_engine_retention_released_total" { released = $2 }
     $1 == "demaq_store_resident_payload_bytes" { resident = $2 }
     END { if (released + 0 <= 0) {
               print "e15: retention narrowing released nothing (released=" released ")"; exit 1 }
           print "e15: released=" released " resident_bytes=" resident }' \
    target/metrics/e15_retention_soak.prom

echo "== bench trajectory: BENCH_E*.json schema gate =="
# Every bench smoke above must also have emitted its schema-versioned
# trajectory entry at the repo root. The checker is the offline, jq-free
# validator in crates/bench; --require fails the gate when a bench ran
# without writing its report.
cargo run --offline -q -p demaq-bench --bin bench-check -- \
    --require e9,e10,e11,e12,e13,e14,e15 BENCH_E*.json

echo "== bench perf gate: E12 smoke vs committed trajectory =="
# The smoke-produced BENCH_E12.json is gated against the committed
# full-mode entry. On a quiet host the 256-msg smoke run measures
# slightly *above* the 2048-msg full run (~1.05-1.15x: same steady-state
# path, smaller working set), so a true >20% regression lands well under
# 0.85. The floor is 0.5, not 0.8, because the reference host's IO
# latency swings +/-40% between runs (measured with interleaved A/B runs
# of identical binaries) — a tighter floor flakes on host noise while
# 0.5 still catches any structural regression.
cargo run --offline -q -p demaq-bench --bin bench-check -- \
    --baseline target/e12_baseline.json --min-ratio 0.5 BENCH_E12.json

echo "== bench perf gate: E13 smoke vs committed trajectory =="
# Same shape as the E12 gate: the smoke run's absolute throughput numbers
# must stay within noise of the committed full-mode entry (0.5 floor for
# the same +/-40% host IO swing), and the scaling-ratio gate itself ran
# inside the bench above.
cargo run --offline -q -p demaq-bench --bin bench-check -- \
    --baseline target/e13_baseline.json --min-ratio 0.5 \
    --headline drain_throughput_4shard BENCH_E13.json

echo "== bench perf gate: E14 smoke vs committed trajectory =="
# The headline is per-message incremental throughput, which is flat in N
# by design — so the N=48 smoke run is directly comparable to the
# committed N=1024 full-mode entry. Same 0.5 floor as E12/E13 for host
# IO/noise swing; any structural regression (registry disabled, delta
# path broken) lands far below it.
cargo run --offline -q -p demaq-bench --bin bench-check -- \
    --baseline target/e14_baseline.json --min-ratio 0.5 \
    --headline incremental_throughput BENCH_E14.json

echo "== bench perf gate: E15 smoke vs committed trajectory =="
# The headline is per-message soak throughput, flat in uptime by design,
# so the 192-msg smoke run compares directly to the committed 3072-msg
# full-mode entry. Same 0.5 floor as E12-E14 for host IO/noise swing;
# a structural regression (narrowing taxing the hot path, GC scans gone
# quadratic) lands far below it.
cargo run --offline -q -p demaq-bench --bin bench-check -- \
    --baseline target/e15_baseline.json --min-ratio 0.5 \
    --headline soak_throughput BENCH_E15.json

echo "== clippy =="
# --no-deps keeps the vendored shims out of the lint gate; warnings in
# first-party crates are errors.
if cargo clippy --version >/dev/null 2>&1; then
    cargo clippy --offline --workspace --no-deps -- -D warnings
else
    echo "clippy not installed; skipping lint" >&2
fi

echo "== ci ok =="
