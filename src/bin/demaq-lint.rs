//! `demaq-lint` — whole-application static analysis for CI.
//!
//! Lints QDL/QML application programs with `demaq-analysis`: parse,
//! validate, analyze, report. Inputs are either `.qdl` files (one program
//! per file) or Rust sources (`.rs`), from which every raw-string literal
//! containing `create queue` is extracted and linted — the repo's
//! examples and paper-listing tests embed their programs that way.
//!
//! ```text
//! demaq-lint [--format human|json] [--deny CODE] [--warn CODE] [--allow CODE] FILE...
//! demaq-lint --explain CODE
//! ```
//!
//! Exit status: 0 when no deny-severity findings (parse and validation
//! errors count as deny; info findings are advisory and never fail), 1
//! otherwise, 2 on usage errors.

use demaq_analysis::{
    analyze_spec, extract_qdl_programs, json_str, Analysis, LintCode, LintConfig, Severity,
};
use std::process::ExitCode;

#[derive(Clone, Copy, PartialEq)]
enum Format {
    Human,
    Json,
}

/// One reportable finding: an analyzer diagnostic, or a parse/validation
/// error promoted to deny severity.
struct Finding {
    code: String,
    slug: String,
    severity: Severity,
    subject: String,
    message: String,
}

impl Finding {
    fn from_diag(d: &demaq_analysis::Diagnostic) -> Finding {
        Finding {
            code: d.code.as_str().to_string(),
            slug: d.code.slug().to_string(),
            severity: d.severity,
            subject: d.subject.clone(),
            message: d.message.clone(),
        }
    }
}

struct ProgramReport {
    path: String,
    /// Index of the program within the file (files can embed several).
    index: usize,
    findings: Vec<Finding>,
    lock_order: Vec<String>,
}

fn main() -> ExitCode {
    let mut format = Format::Human;
    let mut config = LintConfig::new();
    let mut paths: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--format" => match args.next().as_deref() {
                Some("human") => format = Format::Human,
                Some("json") => format = Format::Json,
                other => return usage(&format!("--format expects human|json, got {other:?}")),
            },
            "--deny" | "--warn" | "--allow" => {
                let sev = match arg.as_str() {
                    "--deny" => Severity::Deny,
                    "--warn" => Severity::Warn,
                    _ => Severity::Allow,
                };
                let Some(code) = args.next().as_deref().and_then(LintCode::parse) else {
                    return usage(&format!("{arg} expects a lint code (DQ001..DQ013 or slug)"));
                };
                config.set(code, sev);
            }
            "--explain" => {
                let Some(code) = args.next().as_deref().and_then(LintCode::parse) else {
                    return usage("--explain expects a lint code (DQ001..DQ013 or slug)");
                };
                explain(code);
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                print!("{}", HELP);
                return ExitCode::SUCCESS;
            }
            p if !p.starts_with('-') => paths.push(p.to_string()),
            other => return usage(&format!("unknown option {other}")),
        }
    }
    if paths.is_empty() {
        return usage("no input files");
    }

    let mut reports: Vec<ProgramReport> = Vec::new();
    for path in &paths {
        let source = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("demaq-lint: cannot read {path}: {e}");
                return ExitCode::from(2);
            }
        };
        let programs: Vec<String> = if path.ends_with(".rs") {
            extract_qdl_programs(&source)
        } else {
            vec![source]
        };
        for (index, program) in programs.iter().enumerate() {
            reports.push(lint_program(path, index, program, &config));
        }
    }

    let denies: usize = reports
        .iter()
        .flat_map(|r| r.findings.iter())
        .filter(|f| f.severity == Severity::Deny)
        .count();
    match format {
        Format::Human => render_human(&reports, denies),
        Format::Json => render_json(&reports, denies),
    }
    if denies > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn lint_program(path: &str, index: usize, program: &str, config: &LintConfig) -> ProgramReport {
    let mut report = ProgramReport {
        path: path.to_string(),
        index,
        findings: Vec::new(),
        lock_order: Vec::new(),
    };
    let spec = match demaq_qdl::parse_program(program) {
        Ok(s) => s,
        Err(e) => {
            report.findings.push(Finding {
                code: "PARSE".into(),
                slug: "parse-error".into(),
                severity: Severity::Deny,
                subject: "program".into(),
                message: e.to_string(),
            });
            return report;
        }
    };
    for v in demaq_qdl::validate(&spec) {
        report.findings.push(Finding {
            code: "QDL000".into(),
            slug: "validation-error".into(),
            severity: Severity::Deny,
            subject: v.subject.clone(),
            message: v.msg.clone(),
        });
    }
    let analysis: Analysis = analyze_spec(&spec, config);
    report
        .findings
        .extend(analysis.diagnostics.iter().map(Finding::from_diag));
    report.lock_order = analysis.lock_order;
    report
}

fn render_human(reports: &[ProgramReport], denies: usize) {
    let mut total = 0;
    for r in reports {
        if r.findings.is_empty() {
            continue;
        }
        println!("{} (program {}):", r.path, r.index + 1);
        for f in &r.findings {
            total += 1;
            println!(
                "  {} [{} {}] {}: {}",
                f.severity.as_str(),
                f.code,
                f.slug,
                f.subject,
                f.message
            );
        }
    }
    println!("{total} finding(s), {denies} deny");
}

fn render_json(reports: &[ProgramReport], denies: usize) {
    let mut out = String::from("{\"files\":[");
    for (i, r) in reports.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"path\":{},\"program\":{},\"diagnostics\":[",
            json_str(&r.path),
            r.index + 1
        ));
        for (j, f) in r.findings.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"code\":{},\"slug\":{},\"severity\":{},\"subject\":{},\"message\":{}}}",
                json_str(&f.code),
                json_str(&f.slug),
                json_str(f.severity.as_str()),
                json_str(&f.subject),
                json_str(&f.message)
            ));
        }
        out.push_str("],\"lock_order\":[");
        for (j, q) in r.lock_order.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&json_str(q));
        }
        out.push_str("]}");
    }
    let total: usize = reports.iter().map(|r| r.findings.len()).sum();
    out.push_str(&format!(
        "],\"summary\":{{\"total\":{total},\"deny\":{denies}}}}}"
    ));
    println!("{out}");
}

/// `--explain CODE`: what the lint detects, its default severity, and a
/// minimal program that triggers it.
fn explain(code: LintCode) {
    println!("{} ({})", code.as_str(), code.slug());
    println!("default severity: {}", code.default_severity().as_str());
    println!();
    println!("{}", code.description());
    println!();
    println!("example:");
    for line in code.example().lines() {
        println!("    {line}");
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("demaq-lint: {msg}");
    eprint!("{}", HELP);
    ExitCode::from(2)
}

const HELP: &str = "\
usage: demaq-lint [--format human|json] [--deny CODE] [--warn CODE] [--allow CODE] FILE...
       demaq-lint --explain CODE

Lints Demaq application programs. FILEs are .qdl programs or Rust sources
whose raw-string literals embed programs (`create queue …`). CODE is a
stable lint code (DQ001..DQ013) or its slug (e.g. unknown-enqueue-target).
`--explain` prints what a code detects, its default severity, and a
minimal triggering example. Info-severity findings are advisory and never
affect the exit status. Exits 1 when any deny-severity finding (including
parse/validation errors) is present.
";
