//! Umbrella crate re-exporting the Demaq workspace for examples and
//! integration tests.
pub use demaq as engine;
pub use demaq_analysis as analysis;
pub use demaq_qdl as qdl;
pub use demaq_xml as xml;
pub use demaq_xquery as xquery;
