//! Whole-application analysis over the repo's own programs plus a seeded
//! bad-app corpus (one test per lint code).
//!
//! The paper's listings (Figs. 2, 5-10, reproduced in
//! `tests/paper_listings.rs` / `tests/slicing_fig2.rs`) and the shipped
//! examples are the analyzer's negative controls: a lint that fires on
//! them is a false positive. The seeded corpus is the positive control:
//! each program contains exactly one defect and the matching DQ code must
//! fire.

use demaq_analysis::{analyze_spec, extract_qdl_programs, Analysis, LintCode, LintConfig, Severity};
use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

/// Extract and analyze every embedded program of a Rust source file,
/// asserting parse + validate + analyze are all clean.
fn assert_source_clean(path: &Path) -> usize {
    let source = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {path:?}: {e}"));
    let programs = extract_qdl_programs(&source);
    for (i, program) in programs.iter().enumerate() {
        let spec = demaq_qdl::parse_program(program)
            .unwrap_or_else(|e| panic!("{path:?} program {}: parse error: {e}", i + 1));
        let violations = demaq_qdl::validate(&spec);
        assert!(
            violations.is_empty(),
            "{path:?} program {}: validation: {violations:?}",
            i + 1
        );
        let a = analyze_spec(&spec, &LintConfig::new());
        // Info-severity diagnostics are advisory (DQ013 reports that an
        // optimization applies, not a defect) — only warn and above make
        // a shipped program dirty.
        let over_info: Vec<_> = a
            .diagnostics
            .iter()
            .filter(|d| d.severity > Severity::Info)
            .collect();
        assert!(
            over_info.is_empty(),
            "{path:?} program {} has diagnostics:\n{}",
            i + 1,
            a.render_human()
        );
    }
    programs.len()
}

#[test]
fn paper_listings_are_diagnostic_free() {
    let n = assert_source_clean(&repo_root().join("tests/paper_listings.rs"));
    assert_eq!(n, 8, "expected all eight paper listings to be extracted");
}

#[test]
fn slicing_fig2_is_diagnostic_free() {
    let n = assert_source_clean(&repo_root().join("tests/slicing_fig2.rs"));
    assert!(n >= 1, "expected the Fig. 2 program to be extracted");
}

#[test]
fn shipped_examples_are_diagnostic_free() {
    let dir = repo_root().join("examples");
    let mut checked = 0;
    for entry in std::fs::read_dir(&dir).expect("read examples/") {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            checked += assert_source_clean(&path);
        }
    }
    // perf_10k assembles its program at runtime (plain strings), so it is
    // covered by deploy-time analysis rather than extraction.
    assert!(checked >= 4, "expected programs in examples/, got {checked}");
}

// ---- seeded bad-app corpus: one defect per program, one test per code ----

fn run(src: &str) -> Analysis {
    let spec = demaq_qdl::parse_program(src).expect("corpus programs must parse");
    analyze_spec(&spec, &LintConfig::new())
}

fn codes(a: &Analysis) -> Vec<&'static str> {
    a.diagnostics.iter().map(|d| d.code.as_str()).collect()
}

#[test]
fn dq001_unknown_enqueue_target() {
    let a = run(r#"
        create queue inbox kind basic mode persistent
        create rule fwd for inbox
          if (//order) then do enqueue <fwd/> into billing
    "#);
    assert_eq!(codes(&a), ["DQ001"], "{}", a.render_human());
    assert!(a.has_deny());
    assert_eq!(a.diagnostics[0].code, LintCode::UnknownEnqueueTarget);
}

#[test]
fn dq002_enqueue_into_incoming_gateway() {
    let a = run(r#"
        create queue inbox kind incomingGateway mode persistent endpoint "urn:in"
        create queue work kind basic mode persistent
        create rule bounce for work
          if (//retry) then do enqueue <retry/> into inbox
    "#);
    assert_eq!(codes(&a), ["DQ002"], "{}", a.render_human());
    assert!(a.has_deny());
}

#[test]
fn dq002_echo_timer_target_may_not_be_incoming_gateway() {
    let a = run(r#"
        create queue inbox kind incomingGateway mode persistent endpoint "urn:in"
        create queue timers kind echo mode persistent
        create rule arm for inbox
          if (//order) then do enqueue <tick/> into timers
            with delay value "PT30S"
            with target value "inbox"
    "#);
    assert_eq!(codes(&a), ["DQ002"], "{}", a.render_human());
}

#[test]
fn dq003_unreachable_queue() {
    let a = run(r#"
        create queue inbox kind basic mode persistent
        create queue outbox kind basic mode persistent
        create queue orphan kind basic mode persistent
        create rule fwd for inbox
          if (//order) then do enqueue <fwd/> into outbox
    "#);
    assert_eq!(codes(&a), ["DQ003"], "{}", a.render_human());
    assert_eq!(a.diagnostics[0].subject, "queue orphan");
}

#[test]
fn dq004_dead_rule_constant_false_condition() {
    let a = run(r#"
        create queue inbox kind basic mode persistent
        create queue outbox kind basic mode persistent
        create rule live for inbox
          if (//order) then do enqueue <fwd/> into outbox
        create rule dead for inbox
          if (false()) then do enqueue <never/> into outbox
    "#);
    assert_eq!(codes(&a), ["DQ004"], "{}", a.render_human());
    assert_eq!(a.diagnostics[0].subject, "rule dead");
}

#[test]
fn dq004_dead_rule_trigger_outside_schema_vocabulary() {
    let a = run(r#"
        create schema order-schema {
            root order
            element order any
        }
        create queue orders kind basic mode persistent schema order-schema
        create queue outbox kind basic mode persistent
        create rule live for orders
          if (//order) then do enqueue <fwd/> into outbox
        create rule dead for orders
          if (//invoice) then do enqueue <never/> into outbox
    "#);
    assert_eq!(codes(&a), ["DQ004"], "{}", a.render_human());
    assert_eq!(a.diagnostics[0].subject, "rule dead");
}

#[test]
fn dq005_unguarded_flow_cycle() {
    let a = run(r#"
        create queue ping kind basic mode persistent
        create queue pong kind basic mode persistent
        create rule p1 for ping do enqueue <b/> into pong
        create rule p2 for pong do enqueue <a/> into ping
    "#);
    assert_eq!(codes(&a), ["DQ005"], "{}", a.render_human());
    assert!(a.diagnostics[0].subject.starts_with("cycle "));
}

#[test]
fn dq006_property_read_never_written() {
    let a = run(r#"
        create queue inbox kind basic mode persistent
        create queue outbox kind basic mode persistent
        create property region as xs:string fixed
        create rule route for inbox
          if (qs:property("region") = "eu") then do enqueue <eu/> into outbox
    "#);
    assert_eq!(codes(&a), ["DQ006"], "{}", a.render_human());
    assert_eq!(a.diagnostics[0].subject, "property region");
}

#[test]
fn dq007_error_queue_cycle() {
    // `set errorqueue sink` keeps `sink` an observable lineage terminal
    // so this program seeds exactly the DQ007 defect.
    let a = run(r#"
        set errorqueue sink
        create queue work kind basic mode persistent errorqueue handler
        create queue handler kind basic mode persistent errorqueue work
        create queue sink kind basic mode persistent
        create rule w for work if (//x) then do enqueue <y/> into sink
        create rule h for handler if (//y) then do enqueue <z/> into sink
    "#);
    assert_eq!(codes(&a), ["DQ007"], "{}", a.render_human());
    assert!(a.has_deny());
}

#[test]
fn dq008_slicing_key_never_written() {
    let a = run(r#"
        create queue inbox kind basic mode persistent
        create queue outbox kind basic mode persistent
        create property customer as xs:integer fixed
        create slicing perCustomer on customer
        create rule fwd for inbox
          if (//order) then do enqueue <fwd/> into outbox
    "#);
    assert_eq!(codes(&a), ["DQ008"], "{}", a.render_human());
    assert_eq!(a.diagnostics[0].subject, "slicing perCustomer");
}

#[test]
fn dq009_dead_end_lineage() {
    let a = run(r#"
        create queue inbox kind basic mode persistent
        create queue ship kind outgoingGateway mode persistent endpoint "urn:ship"
        create queue limbo kind basic mode persistent
        create rule send for inbox
          if (//order) then do enqueue <req/> into ship
        create rule stash for inbox
          if (//order) then do enqueue <copy/> into limbo
    "#);
    assert_eq!(codes(&a), ["DQ009"], "{}", a.render_human());
    assert_eq!(a.diagnostics[0].code, LintCode::DeadEndLineage);
    assert_eq!(a.diagnostics[0].subject, "queue limbo");
    assert!(!a.has_deny(), "dead-end lineage warns, it does not deny");
}

#[test]
fn dq012_unbounded_retention() {
    // Full-scan slice reads and no reset anywhere: the slicing's members
    // are provably never purgeable.
    let a = run(r#"
        create queue events kind basic mode persistent
        create queue outbox kind basic mode persistent
        create property device as xs:string fixed
            queue events value //@device
        create slicing byDevice on device
        create rule dumpAll for byDevice
          if (qs:message()/reading) then
            do enqueue <dump>{qs:slice()}</dump> into outbox
    "#);
    assert_eq!(codes(&a), ["DQ012"], "{}", a.render_human());
    assert_eq!(a.diagnostics[0].code, LintCode::UnboundedRetention);
    assert_eq!(a.diagnostics[0].subject, "slicing byDevice");
    assert_eq!(a.diagnostics[0].severity, Severity::Warn);
    assert!(
        a.diagnostics[0].message.contains("scan full slice contents"),
        "{}",
        a.diagnostics[0].message
    );
    assert!(!a.has_deny(), "unbounded retention warns, it does not deny");
}

#[test]
fn dq012_not_fired_when_a_reset_bounds_the_lifetime() {
    // Same shape, but a reset rule ends the slice lifetime: bounded.
    let a = run(r#"
        create queue events kind basic mode persistent
        create queue outbox kind basic mode persistent
        create property device as xs:string fixed
            queue events value //@device
        create slicing byDevice on device
        create rule dumpAll for byDevice
          if (qs:message()/reading) then
            do enqueue <dump>{qs:slice()}</dump> into outbox
        create rule release for byDevice
          if (qs:message()/retire) then
            do reset
    "#);
    assert!(a.diagnostics.is_empty(), "{}", a.render_human());
}

#[test]
fn dq013_retention_narrowed() {
    // Every slice read is an incrementally-maintained aggregate and the
    // member queue is read nowhere else: retention narrows to aggregate
    // cells, reported as an info-level heads-up.
    let a = run(r#"
        create queue readings kind basic mode persistent
        create queue alerts kind basic mode persistent
        create property device as xs:string fixed
            queue readings value //@device
        create slicing byDevice on device
        create rule alarm for byDevice
          if (count(qs:slice()) >= 5) then
            do enqueue <alert/> into alerts
    "#);
    assert_eq!(codes(&a), ["DQ013"], "{}", a.render_human());
    assert_eq!(a.diagnostics[0].code, LintCode::RetentionNarrowed);
    assert_eq!(a.diagnostics[0].subject, "slicing byDevice");
    assert_eq!(a.diagnostics[0].severity, Severity::Info);
    assert!(
        a.diagnostics[0].message.contains("add an explicit `do reset`"),
        "no-reset narrowing should suggest making intent explicit: {}",
        a.diagnostics[0].message
    );
    assert!(!a.has_deny());
}

#[test]
fn corpus_defects_are_absent_from_a_clean_program() {
    // Sanity: the minimal clean app used as the corpus baseline really is
    // clean, so each test above isolates exactly its seeded defect.
    let a = run(r#"
        create queue inbox kind basic mode persistent
        create queue outbox kind basic mode persistent
        create rule fwd for inbox
          if (//order) then do enqueue <fwd/> into outbox
    "#);
    assert!(a.diagnostics.is_empty(), "{}", a.render_human());
}
