//! Differential twin tests for incremental aggregate maintenance.
//!
//! Every scenario runs twice on otherwise identical servers — once with
//! `incremental_aggregates(true)` (the default: recognized aggregate
//! shapes answered from materialized cells validated by the store's
//! version clocks) and once with `incremental_aggregates(false)` (the
//! reference rescan) — and everything observable must match exactly:
//! queue bodies, attached property values, routed errors, and the
//! engine's evaluation stats. Scenarios cover the paper listings that
//! aggregate over slices and queues, aggregate error paths (`fn:sum`
//! over non-numeric content), a randomized enqueue/reset/GC interleaving
//! corpus over keyed and unkeyed scopes, a 4-shard twin, and SIGKILL
//! crash recovery (cells are process-local and must be rebuilt from the
//! recovered store, never trusted across a restart).

use demaq::{Server, ShardedServer};
use demaq_store::store::SyncPolicy;
use demaq_xquery::Atomic;
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::collections::BTreeMap;
use std::io::Write;
use std::path::Path;
use std::process::{Command, Stdio};
use std::time::Duration;

fn build(program: &str, incremental: bool) -> Server {
    Server::builder()
        .program(program)
        .in_memory()
        .sync_policy(SyncPolicy::Batch)
        .incremental_aggregates(incremental)
        .build()
        .unwrap()
}

/// Order-insensitive behavioral fingerprint: per queue, the sorted
/// multiset of `(payload, properties)` pairs.
fn fingerprint(s: &Server, queues: &[&str]) -> BTreeMap<String, Vec<(String, Vec<String>)>> {
    queues
        .iter()
        .map(|q| {
            let mut v: Vec<(String, Vec<String>)> = s
                .queue_messages(q)
                .unwrap()
                .iter()
                .map(|m| {
                    let mut props: Vec<String> = m
                        .props
                        .iter()
                        .map(|(n, p)| format!("{n}={p:?}"))
                        .collect();
                    props.sort();
                    (m.payload.to_string(), props)
                })
                .collect();
            v.sort();
            (q.to_string(), v)
        })
        .collect()
}

fn metric(s: &Server, name: &str) -> u64 {
    s.metrics()
        .registry
        .counter_total(name)
}

/// Drive both twins through the same feed and compare everything.
/// Returns the twins for scenario-specific extra assertions.
fn assert_twins(
    name: &str,
    program: &str,
    queues: &[&str],
    feed: &[(&str, String)],
) -> (Server, Server) {
    let inc = build(program, true);
    let re = build(program, false);
    for (q, xml) in feed {
        let a = inc.enqueue_external(q, xml);
        let b = re.enqueue_external(q, xml);
        assert_eq!(a.is_ok(), b.is_ok(), "{name}: enqueue divergence");
        inc.run_until_idle().unwrap();
        re.run_until_idle().unwrap();
    }
    assert_eq!(
        fingerprint(&inc, queues),
        fingerprint(&re, queues),
        "{name}: queue bodies or property values diverged"
    );
    let (si, sr) = (inc.stats(), re.stats());
    assert_eq!(si.processed, sr.processed, "{name}: processed diverged");
    assert_eq!(
        si.rules_evaluated, sr.rules_evaluated,
        "{name}: rules_evaluated diverged"
    );
    assert_eq!(
        si.errors_routed, sr.errors_routed,
        "{name}: errors_routed diverged"
    );
    // The rescan twin must never touch the registry (it has none).
    assert_eq!(metric(&re, "demaq_core_agg_hits_total"), 0, "{name}");
    assert_eq!(metric(&re, "demaq_core_agg_deltas_total"), 0, "{name}");
    assert_eq!(metric(&re, "demaq_core_agg_rebuilds_total"), 0, "{name}");
    (inc, re)
}

/// Domain registrar (paper Sec. 2.3.2): `count(qs:slice())` in a slicing
/// rule with resets — slice-scoped counting across slice lifetimes.
#[test]
fn registrar_slice_count_with_resets() {
    let program = r#"
        create queue registrar kind basic mode persistent
        create queue audit kind basic mode persistent
        create property domain as xs:string fixed queue registrar value //domain
        create slicing byDomain on domain
        create rule ownerChange for byDomain
          if (qs:message()/transfer) then do reset
        create rule history for byDomain
          if (qs:message()/query) then
            do enqueue <history>{count(qs:slice())}</history> into audit
    "#;
    let mut feed: Vec<(&str, String)> = Vec::new();
    for d in ["example.org", "example.net", "example.com"] {
        feed.push(("registrar", format!("<register><domain>{d}</domain></register>")));
        feed.push(("registrar", format!("<update><domain>{d}</domain></update>")));
        feed.push(("registrar", format!("<query><domain>{d}</domain></query>")));
        feed.push(("registrar", format!("<transfer><domain>{d}</domain></transfer>")));
        feed.push(("registrar", format!("<query><domain>{d}</domain></query>")));
    }
    let (inc, _) = assert_twins(
        "registrar",
        program,
        &["registrar", "audit"],
        &feed,
    );
    // The incremental twin actually exercised the fast/cell path.
    assert!(
        metric(&inc, "demaq_core_agg_hits_total")
            + metric(&inc, "demaq_core_agg_deltas_total")
            + metric(&inc, "demaq_core_agg_rebuilds_total")
            > 0,
        "incremental twin never used the registry"
    );
}

/// Per-device stats over a slice: count / sum / min / max / exists with
/// path steps below the member roots, plus `qs:slicekey()` in the output.
#[test]
fn per_device_slice_stats() {
    let program = r#"
        create queue intake kind basic mode persistent
        create queue report kind basic mode persistent
        create property device as xs:string fixed queue intake value //reading/@dev
        create slicing byDevice on device
        create rule stats for byDevice
          if (qs:message()//reading) then
            do enqueue
              <stat dev="{qs:slicekey()}"
                    n="{count(qs:slice())}"
                    total="{sum(qs:slice()//v)}"
                    lo="{min(qs:slice()//v)}"
                    hi="{max(qs:slice()//v)}"
                    hot="{exists(qs:slice()//alarm)}"/> into report
    "#;
    let mut feed: Vec<(&str, String)> = Vec::new();
    for i in 0..18u32 {
        let dev = ["d0", "d1", "d2"][(i % 3) as usize];
        let alarm = if i == 11 { "<alarm/>" } else { "" };
        feed.push((
            "intake",
            format!("<reading dev='{dev}'><v>{}</v>{alarm}</reading>", i * 3 % 17),
        ));
    }
    let (inc, _) = assert_twins("device-stats", program, &["intake", "report"], &feed);
    assert!(
        metric(&inc, "demaq_core_agg_deltas_total") > 0,
        "append-only slice growth should take the delta path"
    );
}

/// Queue-scope aggregates, including the error path: `fn:sum` over
/// non-numeric content raises, and the routed error document (which
/// embeds the message text) must be byte-identical — the incremental
/// path must decline rather than cache an errored fold.
#[test]
fn queue_scope_aggregates_and_error_parity() {
    let program = r#"
        create queue inbox kind basic mode persistent
        create queue audit kind basic mode persistent
        create queue out kind basic mode persistent
        create queue errs kind basic mode persistent
        create rule stash for inbox
          if (//item) then do enqueue <entry>{//item/node()}</entry> into audit
        create rule watch for inbox errorqueue errs
          if (//tick) then
            do enqueue
              <seen n="{count(qs:queue("audit"))}"
                    any="{exists(qs:queue("audit")//flag)}"
                    sum="{sum(qs:queue("audit")//amt)}"/> into out
    "#;
    let feed = vec![
        ("inbox", "<item><amt>3</amt></item>".to_string()),
        ("inbox", "<tick/>".to_string()),
        ("inbox", "<item><amt>4.5</amt><flag/></item>".to_string()),
        ("inbox", "<tick/>".to_string()),
        // Non-numeric amt: fn:sum raises from here on.
        ("inbox", "<item><amt>oops</amt></item>".to_string()),
        ("inbox", "<tick/>".to_string()),
        ("inbox", "<tick/>".to_string()),
    ];
    let (inc, re) = assert_twins(
        "queue-aggregates",
        program,
        &["inbox", "audit", "out", "errs"],
        &feed,
    );
    assert!(inc.stats().errors_routed >= 2, "sum error must route");
    assert_eq!(
        inc.queue_bodies("errs").unwrap(),
        re.queue_bodies("errs").unwrap(),
        "error documents must match byte-for-byte"
    );
}

/// Randomized interleaving corpus: keyed slice aggregates, unkeyed queue
/// aggregates, resets, and GC, in a deterministic pseudo-random order.
/// Cross-reading rules (each watcher aggregates over the *other* queue)
/// exercise multi-queue lock acquisition on every firing.
#[test]
fn randomized_interleaving_corpus() {
    let program = r#"
        create queue alpha kind basic mode persistent
        create queue beta kind basic mode persistent
        create queue out kind basic mode persistent
        create property sess as xs:string fixed queue alpha, beta value //@s
        create slicing bySess on sess
        create rule closeSess for bySess
          if (qs:message()/bye) then do reset
        create rule tallySess for bySess
          if (qs:message()/ev) then
            do enqueue <tally s="{qs:slicekey()}" n="{count(qs:slice())}"
                              sum="{sum(qs:slice()//w)}"/> into out
        create rule watchA for alpha
          if (//probe) then
            do enqueue <fromA n="{count(qs:queue("beta"))}"
                              hi="{max(qs:queue("beta")//w)}"/> into out
        create rule watchB for beta
          if (//probe) then
            do enqueue <fromB n="{count(qs:queue("alpha"))}"
                              any="{exists(qs:queue("alpha")//w)}"/> into out
    "#;
    let queues = ["alpha", "beta", "out"];
    for seed in 0..4u64 {
        let inc = build(program, true);
        let re = build(program, false);
        let mut rng = StdRng::seed_from_u64(0xA66_0000 + seed);
        for step in 0..120u32 {
            let q = if rng.gen::<bool>() { "alpha" } else { "beta" };
            let sess = rng.gen_range(0..5);
            let xml = match rng.gen_range(0..10) {
                0..=5 => format!("<ev s='s{sess}'><w>{}</w></ev>", rng.gen_range(0..50)),
                6 => format!("<bye s='s{sess}'/>"),
                _ => format!("<probe s='s{sess}'/>"),
            };
            let a = inc.enqueue_external(q, &xml);
            let b = re.enqueue_external(q, &xml);
            assert_eq!(a.is_ok(), b.is_ok(), "seed {seed} step {step}");
            inc.run_until_idle().unwrap();
            re.run_until_idle().unwrap();
            if rng.gen_bool(0.15) {
                let ga = inc.gc().unwrap();
                let gb = re.gc().unwrap();
                assert_eq!(ga, gb, "seed {seed} step {step}: GC reclaim diverged");
            }
        }
        assert_eq!(
            fingerprint(&inc, &queues),
            fingerprint(&re, &queues),
            "seed {seed}: corpus diverged"
        );
        assert_eq!(inc.stats().errors_routed, re.stats().errors_routed);
    }
}

/// 4-shard twin: cells are shard-local; a keyed aggregate workload on a
/// 4-shard incremental deployment must match the 4-shard rescan one.
#[test]
fn sharded_twin_4_shards() {
    let program = r#"
        create queue intake kind basic mode persistent
        create queue report kind basic mode persistent
        create property lane as xs:integer inherited
        create slicing lanes on lane
        create rule tally for lanes
          if (qs:message()/job) then
            do enqueue <t n="{count(qs:slice())}" s="{sum(qs:slice()//w)}"/> into report
    "#;
    let mk = |incremental: bool| -> ShardedServer {
        Server::builder()
            .program(program)
            .in_memory()
            .sync_policy(SyncPolicy::Batch)
            .incremental_aggregates(incremental)
            .shards(4)
            .build()
            .unwrap()
    };
    let (inc, re) = (mk(true), mk(false));
    for i in 0..48usize {
        let xml = format!("<job><w>{}</w></job>", i % 9);
        let props = vec![("lane".to_string(), Atomic::Int((i % 7) as i64))];
        inc.enqueue_external_with_props("intake", &xml, &props).unwrap();
        re.enqueue_external_with_props("intake", &xml, &props).unwrap();
    }
    inc.run_until_idle().unwrap();
    re.run_until_idle().unwrap();
    for q in ["intake", "report"] {
        let mut a = inc.queue_bodies(q).unwrap();
        let mut b = re.queue_bodies(q).unwrap();
        a.sort();
        b.sort();
        assert_eq!(a, b, "queue {q} diverged across sharded twins");
    }
    // Per-shard registries really ran on the incremental deployment.
    let text = inc.metrics_text();
    let used: f64 = ["hits", "deltas", "rebuilds"]
        .iter()
        .map(|k| sample(&text, &format!("demaq_core_agg_{k}_total")))
        .sum();
    assert!(used > 0.0, "sharded incremental twin never used a registry");
}

/// Sum of all samples of `name` in Prometheus-style metrics text (the
/// sharded server concatenates per-shard registries).
fn sample(text: &str, name: &str) -> f64 {
    text.lines()
        .filter(|l| l.starts_with(name))
        .filter_map(|l| l.rsplit(' ').next()?.parse::<f64>().ok())
        .sum()
}

// ---- crash recovery -----------------------------------------------------

const ACK_FILE: &str = "acks.txt";

const CRASH_PROGRAM: &str = r#"
    create queue intake kind basic mode persistent
    create queue report kind basic mode persistent
    create property device as xs:string fixed queue intake value //reading/@dev
    create slicing byDevice on device
    create rule stats for byDevice
      if (qs:message()//reading) then
        do enqueue <stat dev="{qs:slicekey()}" n="{count(qs:slice())}"
                         total="{sum(qs:slice()//v)}"/> into report
"#;

fn crash_server(root: &Path, incremental: bool) -> Server {
    Server::builder()
        .program(CRASH_PROGRAM)
        .dir(root)
        .sync_policy(SyncPolicy::Always)
        .incremental_aggregates(incremental)
        .build()
        .unwrap()
}

/// Child body: feed keyed readings with fsync-always durability, acking
/// each id after the commit returns, while a drain thread keeps the
/// aggregate cells hot — so the SIGKILL lands with warm cells that the
/// recovered process must NOT trust.
#[test]
#[ignore = "crash-harness child body; only meaningful when re-invoked by the parent test"]
fn aggregate_crash_child_body() {
    let Ok(dir) = std::env::var("DEMAQ_AGG_CRASH_DIR") else {
        return;
    };
    let root = std::path::PathBuf::from(dir);
    let server = crash_server(&root, true);
    let acks = std::sync::Mutex::new(
        std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(root.join(ACK_FILE))
            .unwrap(),
    );
    std::thread::scope(|s| {
        s.spawn(|| {
            for i in 0u64.. {
                let xml = format!("<reading dev='d{}'><v>{}</v></reading>", i % 5, i % 13);
                let id = server.enqueue_external("intake", &xml).unwrap();
                let mut f = acks.lock().unwrap();
                f.write_all(format!("{} {xml}\n", id.0).as_bytes()).unwrap();
                f.flush().unwrap();
            }
        });
        s.spawn(|| loop {
            server.run_until_idle().unwrap();
            std::thread::sleep(Duration::from_millis(1));
        });
    });
}

fn copy_dir(from: &Path, to: &Path) {
    std::fs::create_dir_all(to).unwrap();
    for entry in std::fs::read_dir(from).unwrap() {
        let entry = entry.unwrap();
        let dst = to.join(entry.file_name());
        if entry.file_type().unwrap().is_dir() {
            copy_dir(&entry.path(), &dst);
        } else {
            std::fs::copy(entry.path(), &dst).unwrap();
        }
    }
}

/// SIGKILL the child mid-workload, clone the surviving WAL directory, and
/// recover one copy with incremental aggregates and one with the rescan
/// engine: acked messages must be present in both, the finished cascades
/// must agree exactly, and the incremental server must have *rebuilt*
/// its cells from the recovered store (rebuild counter, not a hit).
#[test]
fn crash_recovery_rebuilds_cells_and_matches_rescan() {
    let exe = std::env::current_exe().unwrap();
    let mut total_acked = 0usize;
    for round in 0..2u64 {
        let dir = tempfile::TempDir::new().unwrap();
        let mut child = Command::new(&exe)
            .args(["aggregate_crash_child_body", "--exact", "--ignored", "--nocapture"])
            .env("DEMAQ_AGG_CRASH_DIR", dir.path())
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .unwrap();
        std::thread::sleep(Duration::from_millis(200 + 100 * round));
        child.kill().unwrap();
        let _ = child.wait();

        let ack_text = std::fs::read_to_string(dir.path().join(ACK_FILE)).unwrap_or_default();
        let complete = match ack_text.rfind('\n') {
            Some(end) => &ack_text[..end],
            None => "",
        };
        let acked: Vec<(u64, String)> = complete
            .lines()
            .filter_map(|l| {
                let (id, xml) = l.split_once(' ')?;
                Some((id.parse().ok()?, xml.to_string()))
            })
            .collect();

        // Twin recoveries from identical surviving bytes.
        let clone = tempfile::TempDir::new().unwrap();
        copy_dir(dir.path(), clone.path());
        let inc = crash_server(dir.path(), true);
        let re = crash_server(clone.path(), false);

        for s in [&inc, &re] {
            let present: BTreeMap<u64, String> = s
                .queue_messages("intake")
                .unwrap()
                .iter()
                .map(|m| (m.id.0, m.payload.to_string()))
                .collect();
            for (id, xml) in &acked {
                assert_eq!(
                    present.get(id),
                    Some(xml),
                    "round {round}: acked message {id} lost or altered"
                );
            }
            s.run_until_idle().unwrap();
        }
        assert_eq!(
            fingerprint(&inc, &["intake", "report"]),
            fingerprint(&re, &["intake", "report"]),
            "round {round}: recovered twins diverged"
        );
        if !acked.is_empty() {
            // Cells were rebuilt from the store, not carried over: the
            // first post-restart read of each grown slice cannot be a
            // same-version hit.
            assert!(
                metric(&inc, "demaq_core_agg_rebuilds_total") > 0,
                "round {round}: recovery must rebuild cells from the store"
            );
        }
        total_acked += acked.len();
    }
    assert!(total_acked > 0, "crash harness never acked a single enqueue");
}
