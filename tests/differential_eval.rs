//! Differential testing of the lowered-plan evaluator against the
//! reference AST interpreter.
//!
//! Every scenario runs twice on otherwise identical servers — once with
//! `lowered_plans(true)` (the default execution path) and once with
//! `lowered_plans(false)` (the reference `Evaluator`) — and the observable
//! outcomes must match exactly: the bodies of every queue, the number of
//! rules evaluated and skipped by the trigger filter, and the number of
//! errors routed. The scenarios cover every paper listing exercised in
//! `tests/paper_listings.rs` (Figs. 5–10 / Examples 3.1–3.5) plus
//! error-raising rule bodies, so a divergence in error *messages* (which
//! end up in error-queue documents) fails the comparison too.

use demaq::{Server, ServerBuilder};
use demaq_store::store::SyncPolicy;
use std::sync::Arc;

/// One end-to-end scenario: a program, optional master data, and a feed of
/// `(queue, xml)` messages, each followed by `run_until_idle`.
struct Scenario {
    name: &'static str,
    program: &'static str,
    collections: Vec<(&'static str, Vec<Arc<demaq_xml::Document>>)>,
    feed: Vec<(&'static str, &'static str)>,
}

fn build(s: &Scenario, lowered: bool) -> Server {
    let mut b = ServerBuilder::default()
        .program(s.program)
        .in_memory()
        .sync_policy(SyncPolicy::Batch)
        .lowered_plans(lowered);
    for (name, docs) in &s.collections {
        b = b.collection(name, docs.clone());
    }
    b.build().unwrap()
}

/// Run the scenario through both evaluators and compare everything
/// observable.
fn assert_equivalent(s: &Scenario) {
    let lowered = build(s, true);
    let reference = build(s, false);
    for (queue, xml) in &s.feed {
        let a = lowered.enqueue_external(queue, xml);
        let b = reference.enqueue_external(queue, xml);
        assert_eq!(a.is_ok(), b.is_ok(), "{}: enqueue divergence", s.name);
        lowered.run_until_idle().unwrap();
        reference.run_until_idle().unwrap();
    }
    let queues: Vec<String> = lowered.app().queues.keys().cloned().collect();
    for q in &queues {
        assert_eq!(
            lowered.queue_bodies(q).unwrap(),
            reference.queue_bodies(q).unwrap(),
            "{}: queue `{q}` diverged between lowered and reference",
            s.name
        );
    }
    let (sl, sr) = (lowered.stats(), reference.stats());
    assert_eq!(
        sl.processed, sr.processed,
        "{}: processed count diverged",
        s.name
    );
    assert_eq!(
        sl.rules_evaluated, sr.rules_evaluated,
        "{}: rules_evaluated diverged",
        s.name
    );
    assert_eq!(
        sl.rules_skipped_by_filter, sr.rules_skipped_by_filter,
        "{}: trigger filter diverged",
        s.name
    );
    assert_eq!(
        sl.errors_routed, sr.errors_routed,
        "{}: errors_routed diverged",
        s.name
    );
}

#[test]
fn example_3_1_fork_to_three_queues() {
    assert_equivalent(&Scenario {
        name: "fig5-fork",
        program: r#"
        create queue crm kind basic mode persistent
        create queue finance kind basic mode persistent
        create queue legal kind basic mode persistent
        create queue supplier kind basic mode persistent
        create rule newOfferRequest for crm
          if (//offerRequest) then
            let $customerInfo :=
              <requestCustomerInfo>
                {//requestID} {//customerID}
              </requestCustomerInfo>
            let $exportRestrictionInfo :=
              <requestRestrictionInfo>{//requestID} {//items}</requestRestrictionInfo>
            let $plantCapacityInfo :=
              <plantCapacityInfo>{//requestID} {//items}</plantCapacityInfo>
            return (do enqueue $customerInfo into finance,
                    do enqueue $exportRestrictionInfo into legal,
                    do enqueue $plantCapacityInfo into supplier
                      with Sender value "http://ws.chem.invalid/")
        "#,
        collections: vec![],
        feed: vec![(
            "crm",
            "<offerRequest><requestID>r1</requestID><customerID>c23</customerID>\
             <items><item>solvent</item></items></offerRequest>",
        )],
    });
}

#[test]
fn example_3_2_credit_rating() {
    assert_equivalent(&Scenario {
        name: "fig6-credit",
        program: r#"
        create queue crm kind basic mode persistent
        create queue finance kind basic mode persistent
        create queue invoices kind basic mode persistent
        create rule checkCreditRating for finance
          if (//requestCustomerInfo) then
            let $result :=
              <customerInfoResult> {//requestID} {//customerID}
                {let $invoices := qs:queue("invoices")
                 return
                   if ($invoices[//customerID = qs:message()//customerID])
                   then
                     <refuse/>
                   else
                     <accept/>}
              </customerInfoResult>
            return do enqueue $result into crm
        "#,
        collections: vec![],
        feed: vec![
            ("invoices", "<invoice><customerID>c23</customerID></invoice>"),
            (
                "finance",
                "<requestCustomerInfo><requestID>r1</requestID><customerID>c23</customerID></requestCustomerInfo>",
            ),
            (
                "finance",
                "<requestCustomerInfo><requestID>r2</requestID><customerID>c42</customerID></requestCustomerInfo>",
            ),
        ],
    });
}

#[test]
fn example_3_3_join_parallel_checks() {
    let pricelist =
        demaq_xml::parse("<pricelist><price currency='EUR'>95</price></pricelist>").unwrap();
    assert_equivalent(&Scenario {
        name: "fig7-join",
        program: r#"
        create queue crm kind basic mode persistent
        create queue customer kind basic mode persistent
        create property requestID as xs:string fixed
          queue crm, customer value //requestID
        create slicing requestMsgs on requestID
        create rule joinOrder for requestMsgs
          if (qs:slice()[/customerInfoResult] and
              qs:slice()[/restrictionsResult] and
              qs:slice()[/capacityResult] and
              not(qs:slice()[/offer or /refusal])) then
            if (qs:slice()[/customerInfoResult/accept] and
                not(qs:slice()[/restrictionsResult//restrictedItem])
                and qs:slice()[/capacityResult//accept]) then
              let $pricelist := collection("crm")[/pricelist]
              return
                do enqueue <offer>{//requestID}{$pricelist//price}</offer> into customer
            else
              do enqueue <refusal>{//requestID}</refusal> into customer
        "#,
        collections: vec![("crm", vec![pricelist])],
        feed: vec![
            (
                "crm",
                "<customerInfoResult><requestID>r1</requestID><accept/></customerInfoResult>",
            ),
            (
                "crm",
                "<restrictionsResult><requestID>r1</requestID></restrictionsResult>",
            ),
            (
                "crm",
                "<capacityResult><requestID>r1</requestID><accept/></capacityResult>",
            ),
            (
                "crm",
                "<customerInfoResult><requestID>r2</requestID><accept/></customerInfoResult>",
            ),
            (
                "crm",
                "<restrictionsResult><requestID>r2</requestID><restrictedItem>acid</restrictedItem></restrictionsResult>",
            ),
            (
                "crm",
                "<capacityResult><requestID>r2</requestID><accept/></capacityResult>",
            ),
        ],
    });
}

#[test]
fn fig_8_cleanup_request_reset() {
    assert_equivalent(&Scenario {
        name: "fig8-reset",
        program: r#"
        create queue crm kind basic mode persistent
        create queue customer kind basic mode persistent
        create property requestID as xs:string fixed
          queue crm, customer value //requestID
        create slicing requestMsgs on requestID
        create rule cleanupRequest for requestMsgs
          if (qs:slice()/offer or qs:slice()/refusal) then
            do reset
        "#,
        collections: vec![],
        feed: vec![
            ("crm", "<offerRequest><requestID>r1</requestID></offerRequest>"),
            ("customer", "<offer><requestID>r1</requestID></offer>"),
        ],
    });
}

#[test]
fn example_3_4_payment_reminder() {
    assert_equivalent(&Scenario {
        name: "fig9-reminder",
        program: r#"
        create queue invoices kind basic mode persistent
        create queue finance kind basic mode persistent
        create queue customer kind basic mode persistent
        create queue echoQueue kind echo mode persistent
        create property messageRequestID as xs:string fixed
          queue invoices, finance value //requestID
        create slicing invoiceRetention on messageRequestID
        create rule resetPayedInvoices for invoiceRetention
          if (qs:slice()//timeoutNotification
              and qs:slice()[/paymentConfirmation]) then
            do reset
        create rule sendInvoice for invoices
          if (//invoice) then
            do enqueue <timeoutNotification>{//requestID}</timeoutNotification> into echoQueue
              with delay value "PT30S"
              with target value "finance"
        create rule checkPayment for finance
          if (//timeoutNotification) then
            let $mRID := string(qs:message()//requestID)
            let $payments := qs:queue("finance")[/paymentConfirmation]
            return
              if (not($payments[//requestID = $mRID])) then
                let $invoice := qs:queue("invoices")[//requestID = $mRID]
                let $reminder := <reminder>{$invoice//requestID}</reminder>
                return do enqueue $reminder into customer
              else ()
        "#,
        collections: vec![],
        feed: vec![(
            "invoices",
            "<invoice><requestID>r1</requestID></invoice>",
        )],
    });
}

/// Fig. 10's error routing without the network: a rule body that raises a
/// dynamic error mid-evaluation. The routed error document embeds the rule
/// name, error kind, and the evaluator's error message — so this asserts
/// the lowered plan reproduces error *messages* verbatim, not just
/// error-ness.
#[test]
fn dynamic_errors_route_identically() {
    assert_equivalent(&Scenario {
        name: "error-div-zero",
        program: r#"
        create queue inbox kind basic mode persistent
        create queue outbox kind basic mode persistent
        create queue errs kind basic mode persistent
        create rule explode for inbox errorqueue errs
          if (//m) then
            do enqueue <x>{1 div 0}</x> into outbox
        create rule undef for inbox errorqueue errs
          if (//u) then
            do enqueue <x>{$nowhere}</x> into outbox
        create rule typed for inbox errorqueue errs
          if (//t) then
            do enqueue <x>{"a" + 1}</x> into outbox
        "#,
        collections: vec![],
        feed: vec![
            ("inbox", "<m/>"),
            ("inbox", "<u/>"),
            ("inbox", "<t/>"),
        ],
    });
}

/// FLWOR with order by, positional variables, quantifiers, and nested
/// scopes — the constructs whose variable accesses the lowering rewrites
/// into frame slots.
#[test]
fn flwor_order_by_and_quantifiers() {
    assert_equivalent(&Scenario {
        name: "flwor-slots",
        program: r#"
        create queue inbox kind basic mode persistent
        create queue outbox kind basic mode persistent
        create rule sorted for inbox
          if (//item) then
            for $i at $p in //item
            let $k := $i/@n
            order by $k descending
            return do enqueue <o p="{$p}">{$i/text()}</o> into outbox
        create rule quant for inbox
          if (some $i in //item satisfies $i/@n > 1) then
            do enqueue <sawBig/> into outbox
        create rule all for inbox
          if (every $i in //item satisfies $i/@n >= 1) then
            do enqueue <allPositive/> into outbox
        "#,
        collections: vec![],
        feed: vec![(
            "inbox",
            "<items><item n='2'>b</item><item n='1'>a</item><item n='3'>c</item></items>",
        )],
    });
}

/// Trigger pre-filtering: rules whose trigger elements never occur must be
/// skipped identically by the symbol-set filter and the string filter.
#[test]
fn trigger_filter_parity() {
    assert_equivalent(&Scenario {
        name: "trigger-filter",
        program: r#"
        create queue inbox kind basic mode persistent
        create queue outbox kind basic mode persistent
        create rule hit for inbox
          if (//present) then do enqueue <hit/> into outbox
        create rule miss for inbox
          if (//absentElement) then do enqueue <miss/> into outbox
        "#,
        collections: vec![],
        feed: vec![
            ("inbox", "<wrap><present/></wrap>"),
            ("inbox", "<wrap><other/></wrap>"),
        ],
    });
}

/// Merged per-queue canonical plans (paper Sec. 4.4.1) must agree with the
/// reference interpreter running the same merged expression.
#[test]
fn merged_plan_mode_parity() {
    let program = r#"
        create queue inbox kind basic mode persistent
        create queue outbox kind basic mode persistent
        create rule first for inbox
          if (//a) then do enqueue <fromA/> into outbox
        create rule second for inbox
          if (//b) then do enqueue <fromB/> into outbox
    "#;
    let mk = |lowered: bool| {
        ServerBuilder::default()
            .program(program)
            .in_memory()
            .sync_policy(SyncPolicy::Batch)
            .plan_mode(demaq::engine::PlanMode::Merged)
            .lowered_plans(lowered)
            .build()
            .unwrap()
    };
    let (l, r) = (mk(true), mk(false));
    for s in [&l, &r] {
        s.enqueue_external("inbox", "<m><a/></m>").unwrap();
        s.enqueue_external("inbox", "<m><b/><a/></m>").unwrap();
        s.run_until_idle().unwrap();
    }
    assert_eq!(
        l.queue_bodies("outbox").unwrap(),
        r.queue_bodies("outbox").unwrap()
    );
    assert_eq!(l.stats().errors_routed, r.stats().errors_routed);
}
