//! Differential twin tests for static retention narrowing.
//!
//! Every scenario runs twice on otherwise identical servers — once with
//! `static_retention(true)` (the default: the liveness plan lets GC fold
//! processed slice members into persisted aggregate base cells or keep
//! only the proven newest-k suffix) and once with
//! `static_retention(false)` (full retention, the behavior before the
//! pass existed) — and everything observable must match exactly: the
//! output queue bodies, attached property values, aggregate values that
//! span purged history, routed errors, and the engine's evaluation
//! stats. Only the store footprint may differ, and it must actually
//! shrink on the narrowed twin. Scenarios cover an aggregate-only
//! telemetry fan-in, a bounded-suffix (`qs:slice()[last()]`) session
//! monitor, a randomized enqueue/reset/GC interleaving corpus, a clean
//! restart (base cells must round-trip through the checkpoint), and
//! SIGKILL crash recovery.

use demaq::Server;
use demaq_store::store::SyncPolicy;
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::collections::BTreeMap;
use std::io::Write;
use std::path::Path;
use std::process::{Command, Stdio};
use std::time::Duration;

fn build(program: &str, narrowed: bool) -> Server {
    Server::builder()
        .program(program)
        .in_memory()
        .sync_policy(SyncPolicy::Batch)
        .static_retention(narrowed)
        .build()
        .unwrap()
}

/// Order-insensitive behavioral fingerprint: per queue, the sorted
/// multiset of `(payload, properties)` pairs.
fn fingerprint(s: &Server, queues: &[&str]) -> BTreeMap<String, Vec<(String, Vec<String>)>> {
    queues
        .iter()
        .map(|q| {
            let mut v: Vec<(String, Vec<String>)> = s
                .queue_messages(q)
                .unwrap()
                .iter()
                .map(|m| {
                    let mut props: Vec<String> = m
                        .props
                        .iter()
                        .map(|(n, p)| format!("{n}={p:?}"))
                        .collect();
                    props.sort();
                    (m.payload.to_string(), props)
                })
                .collect();
            v.sort();
            (q.to_string(), v)
        })
        .collect()
}

fn metric(s: &Server, name: &str) -> u64 {
    s.metrics().registry.counter_total(name)
}

fn assert_same_behavior(name: &str, nar: &Server, full: &Server, queues: &[&str]) {
    assert_eq!(
        fingerprint(nar, queues),
        fingerprint(full, queues),
        "{name}: observable queue bodies or property values diverged"
    );
    let (sn, sf) = (nar.stats(), full.stats());
    assert_eq!(sn.processed, sf.processed, "{name}: processed diverged");
    assert_eq!(
        sn.rules_evaluated, sf.rules_evaluated,
        "{name}: rules_evaluated diverged"
    );
    assert_eq!(
        sn.errors_routed, sf.errors_routed,
        "{name}: errors_routed diverged"
    );
    // The full-retention twin must never release anything.
    assert_eq!(
        metric(full, "demaq_engine_retention_released_total"),
        0,
        "{name}: full-retention twin released members"
    );
}

const TELEMETRY: &str = r#"
    create queue intake kind basic mode persistent
    create queue report kind basic mode persistent
    create property device as xs:string fixed queue intake value //reading/@dev
    create slicing byDevice on device
    create rule stats for byDevice
      if (qs:message()//reading) then
        do enqueue <stat dev="{qs:slicekey()}" n="{count(qs:slice())}"
                         total="{sum(qs:slice()//v)}"/> into report
"#;

/// Pull `attr="..."` out of a serialized stat element.
fn attr(xml: &str, name: &str) -> String {
    let pat = format!("{name}=\"");
    let start = xml.find(&pat).unwrap_or_else(|| panic!("no {name} in {xml}")) + pat.len();
    xml[start..][..xml[start..].find('"').unwrap()].to_string()
}

/// Aggregate-only telemetry fan-in: every slice read is an
/// incrementally-maintained aggregate, so GC may fold processed members
/// into base cells. Counts and sums must keep spanning the purged
/// history, and the narrowed store must actually get smaller.
#[test]
fn aggregate_only_twins_match_and_footprint_shrinks() {
    let nar = build(TELEMETRY, true);
    let full = build(TELEMETRY, false);
    let feed = |lo: u32, hi: u32| -> Vec<String> {
        (lo..hi)
            .map(|i| format!("<reading dev='d{}'><v>{}</v></reading>", i % 3, i % 7))
            .collect()
    };
    // Phase A, then GC on both twins: the narrowed one folds the
    // processed intake members into per-device base cells.
    for xml in feed(0, 21) {
        nar.enqueue_external("intake", &xml).unwrap();
        full.enqueue_external("intake", &xml).unwrap();
        nar.run_until_idle().unwrap();
        full.run_until_idle().unwrap();
    }
    nar.gc().unwrap();
    full.gc().unwrap();
    assert!(
        metric(&nar, "demaq_engine_retention_released_total") > 0,
        "narrowing never released a member"
    );
    // Phase B: post-purge aggregates must still count the folded history.
    for xml in feed(21, 33) {
        nar.enqueue_external("intake", &xml).unwrap();
        full.enqueue_external("intake", &xml).unwrap();
        nar.run_until_idle().unwrap();
        full.run_until_idle().unwrap();
    }
    assert_same_behavior("telemetry", &nar, &full, &["report"]);

    // The last d0 stat spans all 11 d0 readings even though the narrowed
    // intake no longer holds them all.
    let last_d0 = nar
        .queue_bodies("report")
        .unwrap()
        .into_iter()
        .filter(|b| b.contains("dev=\"d0\""))
        .next_back()
        .expect("d0 stats");
    assert_eq!(attr(&last_d0, "n"), "11");

    let (ni, fi) = (
        nar.queue_messages("intake").unwrap().len(),
        full.queue_messages("intake").unwrap().len(),
    );
    assert!(
        ni < fi,
        "narrowed intake ({ni}) should hold fewer members than full retention ({fi})"
    );
    assert!(
        nar.store().resident_payload_bytes() < full.store().resident_payload_bytes(),
        "narrowed twin should be resident-byte smaller"
    );
}

/// Bounded-suffix monitor: rules only ever look at `qs:slice()[last()]`,
/// so everything older than the newest member is purgeable once
/// processed. The visible close-out decisions must not change.
#[test]
fn bounded_suffix_twins_match_and_release_old_members() {
    let program = r#"
        create queue events kind basic mode persistent
        create queue out kind basic mode persistent
        create property sess as xs:string fixed queue events value //e/@s
        create slicing bySession on sess
        create rule latest for bySession
          if (qs:slice()[last()]//e/@kind = "close") then
            do enqueue <bye s="{qs:slicekey()}"/> into out
    "#;
    let nar = build(program, true);
    let full = build(program, false);
    let mut feed: Vec<String> = Vec::new();
    for s in 0..3u32 {
        for i in 0..6u32 {
            feed.push(format!("<e s='s{s}' kind='k{i}'/>"));
        }
    }
    feed.push("<e s='s1' kind='close'/>".to_string());
    for (i, xml) in feed.iter().enumerate() {
        nar.enqueue_external("events", xml).unwrap();
        full.enqueue_external("events", xml).unwrap();
        nar.run_until_idle().unwrap();
        full.run_until_idle().unwrap();
        if i == 11 {
            nar.gc().unwrap();
            full.gc().unwrap();
        }
    }
    assert_same_behavior("suffix", &nar, &full, &["out"]);
    assert_eq!(
        fingerprint(&full, &["out"])["out"].len(),
        1,
        "exactly one close fired"
    );
    assert!(
        metric(&nar, "demaq_engine_retention_released_total") > 0,
        "suffix narrowing never released a member"
    );
    assert!(
        nar.queue_messages("events").unwrap().len() < full.queue_messages("events").unwrap().len(),
        "narrowed events queue should shed pre-suffix members"
    );
}

/// Randomized interleaving corpus: keyed aggregate reads, explicit
/// resets, and GC in a deterministic pseudo-random order. Resets and
/// narrowing interact (a reset clears the base cells along with the
/// membership), and the visible tallies must never notice.
#[test]
fn randomized_interleaving_with_resets() {
    let program = r#"
        create queue alpha kind basic mode persistent
        create queue out kind basic mode persistent
        create property sess as xs:string fixed queue alpha value //@s
        create slicing bySess on sess
        create rule closeSess for bySess
          if (qs:message()/bye) then do reset
        create rule tallySess for bySess
          if (qs:message()/ev) then
            do enqueue <tally s="{qs:slicekey()}" n="{count(qs:slice())}"
                              sum="{sum(qs:slice()//w)}"/> into out
    "#;
    for seed in 0..4u64 {
        let nar = build(program, true);
        let full = build(program, false);
        let mut rng = StdRng::seed_from_u64(0x4E7_0000 + seed);
        for step in 0..120u32 {
            let sess = rng.gen_range(0..5);
            let xml = match rng.gen_range(0..8) {
                0 => format!("<bye s='s{sess}'/>"),
                _ => format!("<ev s='s{sess}'><w>{}</w></ev>", rng.gen_range(0..50)),
            };
            let a = nar.enqueue_external("alpha", &xml);
            let b = full.enqueue_external("alpha", &xml);
            assert_eq!(a.is_ok(), b.is_ok(), "seed {seed} step {step}");
            nar.run_until_idle().unwrap();
            full.run_until_idle().unwrap();
            if rng.gen_bool(0.15) {
                // Purge counts legitimately differ (that is the point);
                // only observable behavior must not.
                nar.gc().unwrap();
                full.gc().unwrap();
            }
        }
        assert_same_behavior(&format!("corpus seed {seed}"), &nar, &full, &["out"]);
    }
}

/// Clean restart: base cells travel through the checkpoint. After
/// maintenance folds and purges members, a reopened server must answer
/// aggregates spanning the purged history from the recovered base.
#[test]
fn narrowed_aggregates_survive_clean_restart() {
    let dir = tempfile::TempDir::new().unwrap();
    let mk = || {
        Server::builder()
            .program(TELEMETRY)
            .dir(dir.path())
            .sync_policy(SyncPolicy::Always)
            .build()
            .unwrap()
    };
    {
        let server = mk();
        for i in 0..10u32 {
            server
                .enqueue_external("intake", &format!("<reading dev='d0'><v>{i}</v></reading>"))
                .unwrap();
        }
        server.run_until_idle().unwrap();
        server.maintenance().unwrap();
        assert!(
            server.queue_messages("intake").unwrap().len() < 10,
            "maintenance should have folded processed members away"
        );
    }
    let server = mk();
    server
        .enqueue_external("intake", "<reading dev='d0'><v>100</v></reading>")
        .unwrap();
    server.run_until_idle().unwrap();
    let last = server
        .queue_bodies("report")
        .unwrap()
        .into_iter()
        .next_back()
        .expect("post-restart stat");
    assert_eq!(
        attr(&last, "n"),
        "11",
        "recovered base cell must count the purged members: {last}"
    );
    // sum(0..10) + 100
    assert_eq!(attr(&last, "total"), "145", "{last}");
}

// ---- crash recovery -----------------------------------------------------

const ACK_FILE: &str = "acks.txt";

fn crash_server(root: &Path, narrowed: bool) -> Server {
    Server::builder()
        .program(TELEMETRY)
        .dir(root)
        .sync_policy(SyncPolicy::Always)
        .static_retention(narrowed)
        .build()
        .unwrap()
}

/// Child body: feed keyed readings with fsync-always durability, acking
/// each id after the commit returns, while a drain thread interleaves
/// processing with `maintenance()` — so the SIGKILL lands between
/// fold/purge cycles with checkpoints that carry base cells.
#[test]
#[ignore = "crash-harness child body; only meaningful when re-invoked by the parent test"]
fn retention_crash_child_body() {
    let Ok(dir) = std::env::var("DEMAQ_RET_CRASH_DIR") else {
        return;
    };
    let root = std::path::PathBuf::from(dir);
    let server = crash_server(&root, true);
    let acks = std::sync::Mutex::new(
        std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(root.join(ACK_FILE))
            .unwrap(),
    );
    std::thread::scope(|s| {
        s.spawn(|| {
            for i in 0u64.. {
                let xml = format!("<reading dev='d{}'><v>{}</v></reading>", i % 4, i % 13);
                let id = server.enqueue_external("intake", &xml).unwrap();
                let mut f = acks.lock().unwrap();
                f.write_all(format!("{} d{}\n", id.0, i % 4).as_bytes()).unwrap();
                f.flush().unwrap();
            }
        });
        s.spawn(|| loop {
            server.run_until_idle().unwrap();
            server.maintenance().unwrap();
            std::thread::sleep(Duration::from_millis(1));
        });
    });
}

fn copy_dir(from: &Path, to: &Path) {
    std::fs::create_dir_all(to).unwrap();
    for entry in std::fs::read_dir(from).unwrap() {
        let entry = entry.unwrap();
        let dst = to.join(entry.file_name());
        if entry.file_type().unwrap().is_dir() {
            copy_dir(&entry.path(), &dst);
        } else {
            std::fs::copy(entry.path(), &dst).unwrap();
        }
    }
}

/// SIGKILL the child mid-workload, clone the surviving bytes, and
/// recover one copy narrowed and one with full retention: the finished
/// cascades must agree, and a fresh probe reading per device must see a
/// count covering every acked reading — whether the member survived as
/// a resident payload or only inside a checkpointed base cell.
#[test]
fn crash_recovery_preserves_folded_history() {
    let exe = std::env::current_exe().unwrap();
    let mut total_acked = 0usize;
    for round in 0..2u64 {
        let dir = tempfile::TempDir::new().unwrap();
        let mut child = Command::new(&exe)
            .args(["retention_crash_child_body", "--exact", "--ignored", "--nocapture"])
            .env("DEMAQ_RET_CRASH_DIR", dir.path())
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .unwrap();
        std::thread::sleep(Duration::from_millis(250 + 100 * round));
        child.kill().unwrap();
        let _ = child.wait();

        let ack_text = std::fs::read_to_string(dir.path().join(ACK_FILE)).unwrap_or_default();
        let complete = match ack_text.rfind('\n') {
            Some(end) => &ack_text[..end],
            None => "",
        };
        let mut acked_per_dev: BTreeMap<String, u64> = BTreeMap::new();
        for line in complete.lines() {
            if let Some((_, dev)) = line.split_once(' ') {
                *acked_per_dev.entry(dev.to_string()).or_default() += 1;
            }
        }

        // Twin recoveries from identical surviving bytes.
        let clone = tempfile::TempDir::new().unwrap();
        copy_dir(dir.path(), clone.path());
        let nar = crash_server(dir.path(), true);
        let full = crash_server(clone.path(), false);
        nar.run_until_idle().unwrap();
        full.run_until_idle().unwrap();
        assert_eq!(
            fingerprint(&nar, &["report"]),
            fingerprint(&full, &["report"]),
            "round {round}: recovered twins diverged"
        );

        // One probe per device: its stat counts every acked reading plus
        // itself, no matter how much of the history was folded away.
        for (dev, acked) in &acked_per_dev {
            let probe = format!("<reading dev='{dev}'><v>0</v></reading>");
            nar.enqueue_external("intake", &probe).unwrap();
            full.enqueue_external("intake", &probe).unwrap();
            nar.run_until_idle().unwrap();
            full.run_until_idle().unwrap();
            let last = |s: &Server| {
                s.queue_bodies("report")
                    .unwrap()
                    .into_iter()
                    .filter(|b| b.contains(&format!("dev=\"{dev}\"")))
                    .next_back()
                    .unwrap_or_else(|| panic!("round {round}: no stat for {dev}"))
            };
            let (ln, lf) = (last(&nar), last(&full));
            assert_eq!(
                attr(&ln, "n"),
                attr(&lf, "n"),
                "round {round} {dev}: probe counts diverged"
            );
            let n: u64 = attr(&ln, "n").parse().unwrap();
            assert!(
                n >= acked + 1,
                "round {round} {dev}: probe saw {n} readings, {acked} were acked"
            );
            total_acked += *acked as usize;
        }
    }
    assert!(total_acked > 0, "crash harness never acked a single enqueue");
}
