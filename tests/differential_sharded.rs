//! Differential twin tests for the sharded engine runtime: the same
//! workload on a plain `Server`, a 1-shard `ShardedServer`, and a 4-shard
//! `ShardedServer` must agree on final queue bodies, slice memberships,
//! and lineage chains. Shard counts only move *where* messages live and
//! commit — never *what* the application computes.
//!
//! A crash-recovery iteration re-invokes this binary as a child driving a
//! 4-shard deployment with fsync-always durability, SIGKILLs it
//! mid-workload, reopens the same directories, and asserts every
//! acknowledged enqueue survived in its shard's WAL (acked ⇒ present).

use demaq::{Server, ShardedServer};
use demaq_store::store::SyncPolicy;
use demaq_store::PropValue;
use demaq_xquery::Atomic;
use std::collections::BTreeMap;
use std::io::Write;
use std::path::Path;
use std::process::{Command, Stdio};
use std::time::Duration;

/// The E12/E13 pipeline with a slicing key, so the flow group
/// intake → enriched → done is key-partitioned across shards.
const KEYED_PIPELINE: &str = r#"
    create queue intake kind basic mode persistent
    create queue enriched kind basic mode persistent
    create queue done kind basic mode persistent
    create property lane as xs:integer inherited
    create slicing lanes on lane
    create rule enrich for intake
      if (//job) then do enqueue <enriched>{string(//job/@n)}</enriched> into enriched
    create rule finish for enriched
      if (//enriched) then do enqueue <done>{//enriched/text()}</done> into done
"#;

/// The keyed pipeline with a *rekeying* enrich stage: the produced
/// message's lane hashes to a different shard than its trigger's, so
/// every enrich firing rides the cross-shard forward path.
const REKEY: &str = r#"
    create queue intake kind basic mode persistent
    create queue enriched kind basic mode persistent
    create queue done kind basic mode persistent
    create property lane as xs:integer inherited
    create slicing lanes on lane
    create rule enrich for intake
      if (//job) then
        do enqueue <enriched>{string(//job/@n)}</enriched> into enriched
          with lane value ((xs:integer(//job/@n) * 3 + 1) mod 7)
    create rule finish for enriched
      if (//enriched) then do enqueue <done>{//enriched/text()}</done> into done
"#;

fn single(program: &str) -> Server {
    Server::builder()
        .program(program)
        .in_memory()
        .sync_policy(SyncPolicy::Batch)
        .build()
        .unwrap()
}

fn sharded(program: &str, shards: usize) -> ShardedServer {
    Server::builder()
        .program(program)
        .in_memory()
        .sync_policy(SyncPolicy::Batch)
        .shards(shards)
        .build()
        .unwrap()
}

fn lane(i: usize) -> Vec<(String, Atomic)> {
    vec![("lane".to_string(), Atomic::Int((i % 7) as i64))]
}

/// Sorted bodies of every queue: the order-insensitive behavioral
/// fingerprint (shard merge order is not part of the contract).
fn sorted_bodies(queues: &[&str], get: impl Fn(&str) -> Vec<String>) -> BTreeMap<String, Vec<String>> {
    queues
        .iter()
        .map(|q| {
            let mut v = get(q);
            v.sort();
            (q.to_string(), v)
        })
        .collect()
}

#[test]
fn keyed_pipeline_twin_1_vs_4_shards() {
    const N: usize = 60;
    let queues = ["intake", "enriched", "done"];

    let s1 = single(KEYED_PIPELINE);
    let s4 = sharded(KEYED_PIPELINE, 4);
    for i in 0..N {
        let xml = format!("<job n='{i}'/>");
        s1.enqueue_external_with_props("intake", &xml, &lane(i)).unwrap();
        s4.enqueue_external_with_props("intake", &xml, &lane(i)).unwrap();
    }
    s1.run_until_idle().unwrap();
    s4.run_until_idle().unwrap();

    // Identical queue bodies.
    let b1 = sorted_bodies(&queues, |q| s1.queue_bodies(q).unwrap());
    let b4 = sorted_bodies(&queues, |q| s4.queue_bodies(q).unwrap());
    assert_eq!(b1, b4);
    assert_eq!(b1["done"].len(), N);

    // Identical slice memberships: per lane key, the multiset of member
    // payloads (ids differ across shard counts by construction).
    for k in 0..7i64 {
        let key = PropValue::Int(k);
        let mut m1: Vec<String> = s1
            .store()
            .slice_members("lanes", &key)
            .iter()
            .map(|id| s1.store().payload(*id).unwrap().to_string())
            .collect();
        let mut m4: Vec<String> = Vec::new();
        for s in 0..s4.num_shards() {
            let shard = s4.shard(s);
            m4.extend(
                shard
                    .store()
                    .slice_members("lanes", &key)
                    .iter()
                    .map(|id| shard.store().payload(*id).unwrap().to_string()),
            );
        }
        m1.sort();
        m4.sort();
        assert_eq!(m1, m4, "lane {k} members diverged");
        // Each lane's members must live on exactly one shard (slice
        // coherence is the whole point of key-partitioned placement).
        let shards_with_members = (0..s4.num_shards())
            .filter(|&s| !s4.shard(s).store().slice_members("lanes", &key).is_empty())
            .count();
        assert!(shards_with_members <= 1, "lane {k} split across shards");
    }

    // Identical lineage chains: every done message walks back
    // done → enriched → intake through the same rules.
    for twin_chain in [
        s1.queue_messages("done")
            .unwrap()
            .iter()
            .map(|m| chain_shape(&s1.lineage(m.id)))
            .collect::<Vec<_>>(),
        s4.queue_messages("done")
            .unwrap()
            .iter()
            .map(|m| chain_shape(&s4.lineage(m.id)))
            .collect::<Vec<_>>(),
    ] {
        assert_eq!(twin_chain.len(), N);
        for shape in twin_chain {
            assert_eq!(
                shape,
                vec![
                    ("done".to_string(), Some("finish".to_string())),
                    ("enriched".to_string(), Some("enrich".to_string())),
                    ("intake".to_string(), None),
                ]
            );
        }
    }
}

/// (queue, creating rule) along the causal chain, target first.
fn chain_shape(l: &demaq::Lineage) -> Vec<(String, Option<String>)> {
    let mut shape = Vec::new();
    if let Some(t) = &l.target {
        shape.push((t.queue.clone(), t.rule.clone()));
    }
    for a in &l.ancestors {
        shape.push((a.queue.clone(), a.rule.clone()));
    }
    shape
}

/// A pipeline whose enrich stage *reassigns* the slicing key, so the
/// produced message hashes to a different shard than its trigger and the
/// enqueue must ride the cross-shard forward path. Bodies, slices, and
/// lineage must still match the single-server run exactly.
#[test]
fn rekeying_pipeline_forwards_across_shards() {
    const N: usize = 40;
    let s1 = single(REKEY);
    let s4 = sharded(REKEY, 4);
    for i in 0..N {
        let xml = format!("<job n='{i}'/>");
        s1.enqueue_external_with_props("intake", &xml, &lane(i)).unwrap();
        s4.enqueue_external_with_props("intake", &xml, &lane(i)).unwrap();
    }
    s1.run_until_idle().unwrap();
    s4.run_until_idle().unwrap();

    let queues = ["intake", "enriched", "done"];
    assert_eq!(
        sorted_bodies(&queues, |q| s1.queue_bodies(q).unwrap()),
        sorted_bodies(&queues, |q| s4.queue_bodies(q).unwrap()),
    );
    // The rekey must actually have exercised the forward machinery —
    // otherwise this twin proves nothing about cross-shard enqueues.
    let forwards = metric_value(&s4.metrics_text(), "demaq_engine_shard_forwards_total");
    assert!(forwards > 0.0, "expected cross-shard forwards, got {forwards}");
    // Lineage chains span shards via the shared provenance index.
    for m in s4.queue_messages("done").unwrap() {
        let shape = chain_shape(&s4.lineage(m.id));
        assert_eq!(shape.len(), 3, "done → enriched → intake: {shape:?}");
    }
}

/// First sample of `name` in Prometheus-style metrics text.
fn metric_value(text: &str, name: &str) -> f64 {
    text.lines()
        .filter(|l| l.starts_with(name))
        .filter_map(|l| l.rsplit(' ').next()?.parse().ok())
        .next()
        .unwrap_or(f64::NAN)
}

#[test]
fn keyed_pipeline_parallel_drain_matches() {
    const N: usize = 60;
    let s1 = single(KEYED_PIPELINE);
    let s4 = sharded(KEYED_PIPELINE, 4);
    for i in 0..N {
        let xml = format!("<job n='{i}'/>");
        s1.enqueue_external_with_props("intake", &xml, &lane(i)).unwrap();
        s4.enqueue_external_with_props("intake", &xml, &lane(i)).unwrap();
    }
    let d1 = s1.process_all_parallel(2).unwrap();
    let d4 = s4.process_all_parallel(2).unwrap();
    assert_eq!(d1, (3 * N) as u64);
    assert_eq!(d4, (3 * N) as u64);
    let queues = ["intake", "enriched", "done"];
    assert_eq!(
        sorted_bodies(&queues, |q| s1.queue_bodies(q).unwrap()),
        sorted_bodies(&queues, |q| s4.queue_bodies(q).unwrap()),
    );
}

/// The rekeying pipeline under *parallel* drain: cross-shard forwards race
/// the fleet's termination detection. Regression test for the drain bug
/// where a worker could observe empty schedulers and no active peers while
/// a just-popped message was about to forward cross-shard, terminate the
/// fleet, and strand the forward in a dead shard's mailbox. Several rounds
/// vary the thread interleaving.
#[test]
fn rekeying_pipeline_parallel_drain_matches() {
    const N: usize = 40;
    for _round in 0..4 {
        let s1 = single(REKEY);
        let s4 = sharded(REKEY, 4);
        for i in 0..N {
            let xml = format!("<job n='{i}'/>");
            s1.enqueue_external_with_props("intake", &xml, &lane(i)).unwrap();
            s4.enqueue_external_with_props("intake", &xml, &lane(i)).unwrap();
        }
        let d1 = s1.process_all_parallel(2).unwrap();
        let d4 = s4.process_all_parallel(2).unwrap();
        assert_eq!(d1, (3 * N) as u64);
        assert_eq!(d4, (3 * N) as u64, "sharded drain lost work");
        let queues = ["intake", "enriched", "done"];
        assert_eq!(
            sorted_bodies(&queues, |q| s1.queue_bodies(q).unwrap()),
            sorted_bodies(&queues, |q| s4.queue_bodies(q).unwrap()),
        );
        let forwards = metric_value(&s4.metrics_text(), "demaq_engine_shard_forwards_total");
        assert!(forwards > 0.0, "expected cross-shard forwards, got {forwards}");
    }
}

/// Paper listings on 1-shard vs 4-shard deployments: programs without a
/// usable partition key fall back to fixed per-group placement and must
/// still behave identically.
#[test]
fn paper_listings_twin() {
    struct Case {
        program: &'static str,
        feeds: Vec<(&'static str, String)>,
        queues: Vec<&'static str>,
    }
    let cases = vec![
        // Example 3.1 / Fig. 5: fork to three queues.
        Case {
            program: r#"
                create queue crm kind basic mode persistent
                create queue finance kind basic mode persistent
                create queue legal kind basic mode persistent
                create queue supplier kind basic mode persistent
                create rule newOfferRequest for crm
                  if (//offerRequest) then
                    let $customerInfo :=
                      <requestCustomerInfo>{//requestID} {//customerID}</requestCustomerInfo>
                    let $exportRestrictionInfo :=
                      <requestRestrictionInfo>{//requestID} {//items}</requestRestrictionInfo>
                    let $plantCapacityInfo :=
                      <plantCapacityInfo>{//requestID} {//items}</plantCapacityInfo>
                    return (do enqueue $customerInfo into finance,
                            do enqueue $exportRestrictionInfo into legal,
                            do enqueue $plantCapacityInfo into supplier)
            "#,
            feeds: (0..12)
                .map(|i| {
                    (
                        "crm",
                        format!(
                            "<offerRequest><requestID>r{i}</requestID>\
                             <customerID>c{i}</customerID>\
                             <items><item>solvent</item></items></offerRequest>"
                        ),
                    )
                })
                .collect(),
            queues: vec!["crm", "finance", "legal", "supplier"],
        },
        // Slice lifetimes (domain registrar, Sec. 2.3.2): slicing rules
        // with resets, keyed by a fixed property.
        Case {
            program: r#"
                create queue registrar kind basic mode persistent
                create queue audit kind basic mode persistent
                create property domain as xs:string fixed queue registrar value //domain
                create slicing byDomain on domain
                create rule ownerChange for byDomain
                  if (qs:message()/transfer) then do reset
                create rule history for byDomain
                  if (qs:message()/query) then
                    do enqueue <history>{count(qs:slice())}</history> into audit
            "#,
            feeds: ["example.org", "example.net", "example.com"]
                .iter()
                .flat_map(|d| {
                    vec![
                        ("registrar", format!("<register><domain>{d}</domain></register>")),
                        ("registrar", format!("<update><domain>{d}</domain></update>")),
                        ("registrar", format!("<query><domain>{d}</domain></query>")),
                    ]
                })
                .collect(),
            queues: vec!["registrar", "audit"],
        },
    ];

    for case in cases {
        let s1 = single(case.program);
        let s4 = sharded(case.program, 4);
        for (q, xml) in &case.feeds {
            s1.enqueue_external(q, xml).unwrap();
            s1.run_until_idle().unwrap();
            s4.enqueue_external(q, xml).unwrap();
            s4.run_until_idle().unwrap();
        }
        assert_eq!(
            sorted_bodies(&case.queues, |q| s1.queue_bodies(q).unwrap()),
            sorted_bodies(&case.queues, |q| s4.queue_bodies(q).unwrap()),
        );
    }
}

/// A 1-shard `ShardedServer` degrades *exactly* to today's server:
/// identical message ids, bodies, and lineage — not just equivalent ones.
#[test]
fn single_shard_is_bit_identical_to_server() {
    const N: usize = 20;
    let s = single(KEYED_PIPELINE);
    let sh = sharded(KEYED_PIPELINE, 1);
    for i in 0..N {
        let xml = format!("<job n='{i}'/>");
        let id_a = s.enqueue_external_with_props("intake", &xml, &lane(i)).unwrap();
        let id_b = sh.enqueue_external_with_props("intake", &xml, &lane(i)).unwrap();
        assert_eq!(id_a, id_b, "1-shard deployment must allocate the same ids");
    }
    s.run_until_idle().unwrap();
    sh.run_until_idle().unwrap();
    for q in ["intake", "enriched", "done"] {
        let a: Vec<(u64, String)> = s
            .queue_messages(q)
            .unwrap()
            .iter()
            .map(|m| (m.id.0, m.payload.to_string()))
            .collect();
        let b: Vec<(u64, String)> = sh
            .queue_messages(q)
            .unwrap()
            .iter()
            .map(|m| (m.id.0, m.payload.to_string()))
            .collect();
        assert_eq!(a, b, "queue {q} diverged");
    }
    for m in s.queue_messages("done").unwrap() {
        assert_eq!(chain_shape(&s.lineage(m.id)), chain_shape(&sh.lineage(m.id)));
    }
}

// ---- crash recovery -----------------------------------------------------

const CRASH_SHARDS: usize = 4;
const ACK_FILE: &str = "acks.txt";

fn crash_deployment(root: &Path) -> ShardedServer {
    Server::builder()
        .program(KEYED_PIPELINE)
        .dir(root)
        .sync_policy(SyncPolicy::Always)
        .shards(CRASH_SHARDS)
        .build()
        .unwrap()
}

/// Child body: enqueue keyed messages forever with fsync-always
/// durability, acking each id only after `enqueue` (and therefore the
/// owning shard's WAL commit) returned. Drain workers run concurrently so
/// the kill also lands mid-processing and mid-forward.
#[test]
#[ignore = "crash-harness child body; only meaningful when re-invoked by the parent test"]
fn sharded_crash_child_body() {
    let Ok(dir) = std::env::var("DEMAQ_SHARD_CRASH_DIR") else {
        return;
    };
    let root = std::path::PathBuf::from(dir);
    let server = crash_deployment(&root);
    let acks = std::sync::Mutex::new(
        std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(root.join(ACK_FILE))
            .unwrap(),
    );
    std::thread::scope(|s| {
        // Feeder: ack after the commit returns.
        s.spawn(|| {
            for i in 0.. {
                let xml = format!("<job n='{i}'/>");
                let id = server
                    .enqueue_external_with_props("intake", &xml, &lane(i))
                    .unwrap();
                let mut f = acks.lock().unwrap();
                f.write_all(format!("{} {xml}\n", id.0).as_bytes()).unwrap();
                f.flush().unwrap();
            }
        });
        // Drainers: keep the pipeline (and cross-shard mailboxes) hot.
        s.spawn(|| loop {
            server.process_all_parallel(1).unwrap();
            std::thread::sleep(Duration::from_millis(1));
        });
    });
}

#[test]
fn sharded_crash_recovery_acked_is_present() {
    let iters: usize = std::env::var("DEMAQ_CRASH_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    let exe = std::env::current_exe().unwrap();
    let mut total_acked = 0usize;
    for round in 0..iters {
        let dir = tempfile::TempDir::new().unwrap();
        let mut child = Command::new(&exe)
            .args(["sharded_crash_child_body", "--exact", "--ignored", "--nocapture"])
            .env("DEMAQ_SHARD_CRASH_DIR", dir.path())
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .unwrap();
        std::thread::sleep(Duration::from_millis(150 + 100 * round as u64));
        child.kill().unwrap();
        let _ = child.wait();

        // Complete, acked lines only: a torn tail is un-acked, not corrupt.
        let ack_text = std::fs::read_to_string(dir.path().join(ACK_FILE)).unwrap_or_default();
        let complete = match ack_text.rfind('\n') {
            Some(end) => &ack_text[..end],
            None => "",
        };
        let acked: Vec<(u64, String)> = complete
            .lines()
            .filter_map(|l| {
                let (id, xml) = l.split_once(' ')?;
                Some((id.parse().ok()?, xml.to_string()))
            })
            .collect();

        // Reopen the same shard directories: per-shard WAL recovery.
        let server = crash_deployment(dir.path());
        let mut present: BTreeMap<u64, String> = BTreeMap::new();
        for m in server.queue_messages("intake").unwrap() {
            present.insert(m.id.0, m.payload.to_string());
        }
        for (id, xml) in &acked {
            assert_eq!(
                present.get(id),
                Some(xml),
                "round {round}: acked message {id} lost or altered \
                 (shard {} WAL)",
                id >> 48,
            );
        }
        // The recovered deployment keeps working.
        server.run_until_idle().unwrap();
        assert!(
            server.queue_messages("done").unwrap().len() >= acked.len(),
            "round {round}: recovered pipeline did not finish the cascade"
        );
        total_acked += acked.len();
    }
    // Guard against a vacuous pass: across all rounds the child must have
    // gotten real acked work in before the kill.
    assert!(total_acked > 0, "crash harness never acked a single enqueue");
}
