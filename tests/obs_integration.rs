//! End-to-end observability: after a multi-queue run, the Prometheus
//! exposition from [`Server::metrics_text`] must agree with the store's
//! ground truth, and the tracer must have recorded the message lifecycle.

use demaq::Server;
use demaq_store::store::SyncPolicy;
use std::collections::BTreeMap;

/// Parse every `name{queue="..."} value` sample of `metric` out of a
/// Prometheus text exposition.
fn labeled_samples(text: &str, metric: &str) -> BTreeMap<String, u64> {
    let mut out = BTreeMap::new();
    for line in text.lines() {
        let Some(rest) = line.strip_prefix(metric) else {
            continue;
        };
        let Some(rest) = rest.strip_prefix("{queue=\"") else {
            continue;
        };
        let Some((queue, rest)) = rest.split_once("\"}") else {
            continue;
        };
        let value: u64 = rest.trim().parse().expect("integer sample value");
        out.insert(queue.to_string(), value);
    }
    out
}

fn build_server() -> Server {
    Server::builder()
        .program(
            r#"
            create queue orders kind basic mode persistent
            create queue confirmations kind basic mode persistent
            create queue rejections kind basic mode persistent
            create queue audit kind basic mode persistent

            create rule triage for orders
              if (//order) then
                if (//order/quantity <= 1000) then
                  do enqueue <confirmation>{//order/id}</confirmation>
                     into confirmations
                else
                  do enqueue <rejection>{//order/id}</rejection>
                     into rejections

            create rule audit_confirm for confirmations
              do enqueue <audited>{//confirmation}</audited> into audit
            "#,
        )
        .in_memory()
        .sync_policy(SyncPolicy::Batch)
        .build()
        .unwrap()
}

#[test]
fn processed_counters_match_store_ground_truth() {
    let server = build_server();
    for (id, qty) in [(1, 100), (2, 5000), (3, 900), (4, 1000), (5, 2000)] {
        server
            .enqueue_external(
                "orders",
                &format!("<order><id>{id}</id><quantity>{qty}</quantity></order>"),
            )
            .unwrap();
    }
    let processed = server.run_until_idle().unwrap();
    assert!(processed > 0);

    let text = server.metrics_text();
    let processed_by_queue = labeled_samples(&text, "demaq_engine_processed_total");
    let enqueued_by_queue = labeled_samples(&text, "demaq_engine_enqueued_total");

    // Ground truth: count processed messages per queue straight from the
    // store. Every queue that holds messages must have matching counters.
    for queue in ["orders", "confirmations", "rejections", "audit"] {
        let msgs = server.queue_messages(queue).unwrap();
        let done = msgs.iter().filter(|m| m.processed).count() as u64;
        assert_eq!(
            processed_by_queue.get(queue).copied().unwrap_or(0),
            done,
            "processed counter for `{queue}` disagrees with the store"
        );
        assert_eq!(
            enqueued_by_queue.get(queue).copied().unwrap_or(0),
            msgs.len() as u64,
            "enqueued counter for `{queue}` disagrees with the store"
        );
    }

    // The per-queue counters sum to the aggregate ServerStats view.
    let stats = server.stats();
    assert_eq!(processed_by_queue.values().sum::<u64>(), stats.processed);
    assert_eq!(processed, stats.processed);
    assert_eq!(enqueued_by_queue.values().sum::<u64>(), stats.enqueued);
}

#[test]
fn exposition_contains_latency_histograms() {
    let server = build_server();
    server
        .enqueue_external(
            "orders",
            "<order><id>1</id><quantity>10</quantity></order>",
        )
        .unwrap();
    server.run_until_idle().unwrap();

    let text = server.metrics_text();
    // Histogram families render TYPE metadata plus cumulative buckets,
    // a +Inf bucket, and _sum/_count samples.
    for metric in ["demaq_engine_rule_eval_ns", "demaq_engine_txn_commit_ns"] {
        assert!(
            text.contains(&format!("# TYPE {metric} histogram")),
            "missing TYPE line for {metric}"
        );
        assert!(text.contains(&format!("{metric}_bucket{{le=\"+Inf\"}}")));
        assert!(text.contains(&format!("{metric}_sum")));
        assert!(text.contains(&format!("{metric}_count")));
    }
    // Store-side instrumentation reports through the same registry.
    assert!(text.contains("# TYPE demaq_store_wal_flush_ns histogram"));
    assert!(text.contains("demaq_store_commits_total"));

    // The engine recorded at least one rule evaluation in the histogram.
    let count_line = text
        .lines()
        .find(|l| l.starts_with("demaq_engine_rule_eval_ns_count"))
        .expect("rule_eval count sample");
    let evals: u64 = count_line
        .rsplit(' ')
        .next()
        .unwrap()
        .parse()
        .expect("count value");
    assert!(evals >= 1, "rule evaluation histogram is empty");
}

#[test]
fn gc_metrics_report_per_queue_purges_and_retained_backlog() {
    // `scratch` messages are purgeable once processed; `ledger` messages
    // are retained by the byK slicing (no reset, never read by rules) and
    // become the processed-but-retained backlog.
    let server = Server::builder()
        .program(
            r#"
            create queue scratch kind basic mode persistent
            create queue ledger kind basic mode persistent
            create property k as xs:string fixed
                queue ledger value //@k
            create slicing byK on k
            "#,
        )
        .in_memory()
        .sync_policy(SyncPolicy::Batch)
        .build()
        .unwrap();
    for i in 0..3 {
        server
            .enqueue_external("scratch", &format!("<t n='{i}'/>"))
            .unwrap();
    }
    for k in ["a", "b"] {
        server
            .enqueue_external("ledger", &format!("<entry k='{k}'/>"))
            .unwrap();
    }
    server.run_until_idle().unwrap();
    let purged = server.gc().unwrap();
    assert_eq!(purged, 3, "only the unsliced scratch messages are purgeable");

    let text = server.metrics_text();
    // GC purges are attributed per queue via labels.
    let purged_by_queue = labeled_samples(&text, "demaq_store_gc_purged_total");
    assert_eq!(purged_by_queue.get("scratch").copied(), Some(3));
    assert_eq!(purged_by_queue.get("ledger").copied().unwrap_or(0), 0);
    assert_eq!(purged_by_queue.values().sum::<u64>(), 3);

    // The retained-processed backlog gauge counts what GC could not purge.
    let backlog_line = text
        .lines()
        .find(|l| l.starts_with("demaq_store_retained_processed_backlog"))
        .expect("backlog gauge sample");
    let backlog: u64 = backlog_line.rsplit(' ').next().unwrap().parse().unwrap();
    assert_eq!(backlog, 2, "both ledger entries are processed yet retained");

    // Resident payload bytes: gauge agrees with the store accessor.
    let resident_line = text
        .lines()
        .find(|l| l.starts_with("demaq_store_resident_payload_bytes"))
        .expect("resident bytes gauge sample");
    let resident: u64 = resident_line.rsplit(' ').next().unwrap().parse().unwrap();
    assert_eq!(resident, server.store().resident_payload_bytes());
    assert!(resident > 0, "the retained ledger entries have payload bytes");
}

#[test]
fn tracer_records_message_lifecycle() {
    let server = build_server();
    server
        .enqueue_external(
            "orders",
            "<order><id>7</id><quantity>70</quantity></order>",
        )
        .unwrap();
    server.run_until_idle().unwrap();

    let tail = server.trace_tail(64);
    assert!(!tail.is_empty(), "tracer recorded nothing");
    let kinds: Vec<&str> = tail.iter().map(|e| e.kind).collect();
    assert!(kinds.contains(&"msg.enqueue"), "kinds: {kinds:?}");
    assert!(kinds.contains(&"msg.processed"), "kinds: {kinds:?}");
    // Events come back oldest-first with monotonically increasing
    // sequence numbers.
    for pair in tail.windows(2) {
        assert!(pair[0].seq < pair[1].seq);
    }
    // Every event renders to a single human-readable line.
    for ev in &tail {
        assert!(!ev.render().contains('\n'));
    }
}
