//! Functional reproduction of every QML code listing in the paper
//! (Figures 5–10 / Examples 3.1–3.5), executed end-to-end on the engine.
//!
//! The listings are used (nearly) verbatim; where the paper elides code
//! with `...`, minimal concrete XML is substituted.

use demaq::Server;
use demaq_store::store::SyncPolicy;
use std::sync::Arc;

fn server(program: &str) -> Server {
    Server::builder()
        .program(program)
        .in_memory()
        .sync_policy(SyncPolicy::Batch)
        .build()
        .unwrap()
}

/// Example 3.1 / Fig. 5: "Message handling and content access" — the
/// newOfferRequest rule forks three checks to finance, legal, supplier.
#[test]
fn example_3_1_fork_to_three_queues() {
    let s = server(
        r#"
        create queue crm kind basic mode persistent
        create queue finance kind basic mode persistent
        create queue legal kind basic mode persistent
        create queue supplier kind basic mode persistent
        create rule newOfferRequest for crm
          if (//offerRequest) then
            let $customerInfo :=
              <requestCustomerInfo>
                {//requestID} {//customerID}
              </requestCustomerInfo>
            let $exportRestrictionInfo :=
              <requestRestrictionInfo>{//requestID} {//items}</requestRestrictionInfo>
            let $plantCapacityInfo :=
              <plantCapacityInfo>{//requestID} {//items}</plantCapacityInfo>
            return (do enqueue $customerInfo into finance,
                    do enqueue $exportRestrictionInfo into legal,
                    do enqueue $plantCapacityInfo into supplier
                      with Sender value "http://ws.chem.invalid/")
        "#,
    );
    s.enqueue_external(
        "crm",
        "<offerRequest><requestID>r1</requestID><customerID>c23</customerID>\
         <items><item>solvent</item></items></offerRequest>",
    )
    .unwrap();
    s.run_until_idle().unwrap();

    let fin = s.queue_bodies("finance").unwrap();
    assert_eq!(
        fin,
        ["<requestCustomerInfo><requestID>r1</requestID><customerID>c23</customerID></requestCustomerInfo>"]
    );
    assert_eq!(s.queue_bodies("legal").unwrap().len(), 1);
    let sup = s.queue_messages("supplier").unwrap();
    assert_eq!(sup.len(), 1);
    // The with-clause property is attached.
    assert_eq!(
        sup[0].prop("Sender"),
        Some(&demaq_store::PropValue::Str(
            "http://ws.chem.invalid/".into()
        ))
    );
}

/// Example 3.2 / Fig. 6: "Queue access" — checkCreditRating inspects the
/// invoices queue for unpaid bills of the same customer.
#[test]
fn example_3_2_credit_rating() {
    let program = r#"
        create queue crm kind basic mode persistent
        create queue finance kind basic mode persistent
        create queue invoices kind basic mode persistent
        create rule checkCreditRating for finance
          if (//requestCustomerInfo) then
            let $result :=
              <customerInfoResult> {//requestID} {//customerID}
                {let $invoices := qs:queue("invoices")
                 return
                   if ($invoices[//customerID = qs:message()//customerID])
                   then
                     <refuse/> (: unpaid bills! :)
                   else
                     <accept/>}
              </customerInfoResult>
            return do enqueue $result into crm
    "#;

    // Customer with an unpaid bill -> refuse.
    let s = server(program);
    s.enqueue_external(
        "invoices",
        "<invoice><customerID>c23</customerID></invoice>",
    )
    .unwrap();
    s.run_until_idle().unwrap();
    s.enqueue_external(
        "finance",
        "<requestCustomerInfo><requestID>r1</requestID><customerID>c23</customerID></requestCustomerInfo>",
    )
    .unwrap();
    s.run_until_idle().unwrap();
    let crm = s.queue_bodies("crm").unwrap();
    assert_eq!(crm.len(), 1);
    assert!(crm[0].contains("<refuse/>"), "{}", crm[0]);
    assert!(crm[0].contains("<requestID>r1</requestID>"));

    // Clean customer -> accept.
    let s = server(program);
    s.enqueue_external(
        "finance",
        "<requestCustomerInfo><requestID>r2</requestID><customerID>c42</customerID></requestCustomerInfo>",
    )
    .unwrap();
    s.run_until_idle().unwrap();
    assert!(s.queue_bodies("crm").unwrap()[0].contains("<accept/>"));
}

/// Example 3.3 / Fig. 7: "Control flow synchronization" — joinOrder joins
/// the three parallel checks via the requestMsgs slicing, consulting master
/// data through collection("crm").
#[test]
fn example_3_3_join_parallel_checks() {
    let program = r#"
        create queue crm kind basic mode persistent
        create queue customer kind basic mode persistent
        create property requestID as xs:string fixed
          queue crm, customer value //requestID
        create slicing requestMsgs on requestID
        create rule joinOrder for requestMsgs
          if (qs:slice()[/customerInfoResult] and
              qs:slice()[/restrictionsResult] and
              qs:slice()[/capacityResult] and
              (: guard: the reply itself joins the slice (customer queue
                 carries requestID), so fire only once — the paper relies on
                 Fig. 8's cleanupRequest reset for the same purpose :)
              not(qs:slice()[/offer or /refusal])) then
            if (qs:slice()[/customerInfoResult/accept] and
                not(qs:slice()[/restrictionsResult//restrictedItem])
                and qs:slice()[/capacityResult//accept]) then
              let $pricelist := collection("crm")[/pricelist]
              return
                do enqueue <offer>{//requestID}{$pricelist//price}</offer> into customer
            else (: problems :)
              do enqueue <refusal>{//requestID}</refusal> into customer
        (: Fig. 8's companion rule: release the request's messages once the
           reply is out — without it the slicing retains every request's
           messages forever (the analyzer's DQ012 flags exactly that) :)
        create rule cleanupRequest for requestMsgs
          if (qs:slice()/offer or qs:slice()/refusal) then
            do reset
    "#;
    let pricelist =
        demaq_xml::parse("<pricelist><price currency='EUR'>95</price></pricelist>").unwrap();

    // Happy path: all three checks pass.
    let s = Server::builder()
        .program(program)
        .in_memory()
        .sync_policy(SyncPolicy::Batch)
        .collection("crm", vec![Arc::clone(&pricelist)])
        .build()
        .unwrap();
    for (i, part) in [
        "<customerInfoResult><requestID>r1</requestID><accept/></customerInfoResult>",
        "<restrictionsResult><requestID>r1</requestID></restrictionsResult>",
        "<capacityResult><requestID>r1</requestID><accept/></capacityResult>",
    ]
    .iter()
    .enumerate()
    {
        s.enqueue_external("crm", part).unwrap();
        s.run_until_idle().unwrap();
        let out = s.queue_bodies("customer").unwrap();
        if i < 2 {
            assert!(out.is_empty(), "no offer before all checks arrived");
        } else {
            assert_eq!(out.len(), 1);
            assert!(out[0].starts_with("<offer>"), "{}", out[0]);
            assert!(out[0].contains("<requestID>r1</requestID>"));
            assert!(
                out[0].contains("<price currency=\"EUR\">95</price>"),
                "master data joined in"
            );
        }
    }

    // Failure path: a restricted item causes a refusal.
    let s = Server::builder()
        .program(program)
        .in_memory()
        .sync_policy(SyncPolicy::Batch)
        .collection("crm", vec![pricelist])
        .build()
        .unwrap();
    s.enqueue_external(
        "crm",
        "<customerInfoResult><requestID>r2</requestID><accept/></customerInfoResult>",
    )
    .unwrap();
    s.run_until_idle().unwrap();
    s.enqueue_external(
        "crm",
        "<restrictionsResult><requestID>r2</requestID><restrictedItem>acid</restrictedItem></restrictionsResult>",
    )
    .unwrap();
    s.run_until_idle().unwrap();
    s.enqueue_external(
        "crm",
        "<capacityResult><requestID>r2</requestID><accept/></capacityResult>",
    )
    .unwrap();
    s.run_until_idle().unwrap();
    let out = s.queue_bodies("customer").unwrap();
    assert_eq!(out, ["<refusal><requestID>r2</requestID></refusal>"]);
}

/// Fig. 8: "Resetting a slice" — cleanupRequest releases the request's
/// messages once an offer or refusal was sent.
#[test]
fn fig_8_cleanup_request_reset() {
    let program = r#"
        create queue crm kind basic mode persistent
        create queue customer kind basic mode persistent
        create property requestID as xs:string fixed
          queue crm, customer value //requestID
        create slicing requestMsgs on requestID
        create rule cleanupRequest for requestMsgs
          if (qs:slice()/offer or qs:slice()/refusal) then
            do reset
    "#;
    let s = server(program);
    s.enqueue_external(
        "crm",
        "<offerRequest><requestID>r1</requestID></offerRequest>",
    )
    .unwrap();
    s.run_until_idle().unwrap();
    // Retained: the request is still pending.
    assert_eq!(s.gc().unwrap(), 0);
    assert_eq!(s.queue_bodies("crm").unwrap().len(), 1);

    // The offer completes the request; cleanupRequest resets the slice.
    s.enqueue_external("customer", "<offer><requestID>r1</requestID></offer>")
        .unwrap();
    s.run_until_idle().unwrap();
    let purged = s.gc().unwrap();
    assert_eq!(purged, 2, "request + offer released after reset");
}

/// Example 3.4 / Fig. 9: "Message retention" — grace-period timeout via an
/// echo queue; a reminder is sent when no payment confirmation arrived;
/// resetPayedInvoices releases the retention slice when payment came.
#[test]
fn example_3_4_payment_reminder() {
    let program = r#"
        create queue invoices kind basic mode persistent
        create queue finance kind basic mode persistent
        create queue customer kind basic mode persistent
        create queue echoQueue kind echo mode persistent
        create property messageRequestID as xs:string fixed
          queue invoices, finance value //requestID
        create slicing invoiceRetention on messageRequestID
        create rule resetPayedInvoices for invoiceRetention
          if (qs:slice()//timeoutNotification
              and qs:slice()[/paymentConfirmation]) then
            do reset
        create rule sendInvoice for invoices
          if (//invoice) then
            do enqueue <timeoutNotification>{//requestID}</timeoutNotification> into echoQueue
              with delay value "PT30S"
              with target value "finance"
        create rule checkPayment for finance
          if (//timeoutNotification) then
            let $mRID := string(qs:message()//requestID)
            let $payments := qs:queue("finance")[/paymentConfirmation]
            return
              if (not($payments[//requestID = $mRID])) then
                let $invoice := qs:queue("invoices")[//requestID = $mRID]
                let $reminder := <reminder>{$invoice//requestID}</reminder>
                return do enqueue $reminder into customer
              else ()
    "#;

    // Case 1: no payment before the timeout -> reminder.
    let s = server(program);
    s.enqueue_external("invoices", "<invoice><requestID>r1</requestID></invoice>")
        .unwrap();
    s.run_until_idle().unwrap(); // fast-forwards through the 30s echo timer
    let reminders = s.queue_bodies("customer").unwrap();
    assert_eq!(
        reminders,
        ["<reminder><requestID>r1</requestID></reminder>"]
    );
    assert!(s.clock().now() >= 30_000);

    // Case 2: payment arrives before the timeout -> no reminder, and the
    // retention slice is reset so everything can be purged.
    let s = server(program);
    s.enqueue_external("invoices", "<invoice><requestID>r2</requestID></invoice>")
        .unwrap();
    // Process the invoice (registers the timer) but do not cross the delay.
    while s.step().unwrap() {}
    s.enqueue_external(
        "finance",
        "<paymentConfirmation><requestID>r2</requestID></paymentConfirmation>",
    )
    .unwrap();
    while s.step().unwrap() {}
    // Now let the timeout fire.
    s.run_until_idle().unwrap();
    assert!(
        s.queue_bodies("customer").unwrap().is_empty(),
        "payment arrived in time: no reminder"
    );
    // The retention slice was reset by resetPayedInvoices (the timeout
    // notification and payment are both in the slice).
    let purged = s.gc().unwrap();
    assert!(
        purged >= 2,
        "invoice and payment confirmation released, purged {purged}"
    );
}

/// Example 3.5 / Fig. 10: "Error handling" — confirmations that cannot be
/// delivered (disconnected transport) are compensated by postal mail.
#[test]
fn example_3_5_dead_link_compensation() {
    let clock = demaq_net::Clock::virtual_at(0);
    let net = Arc::new(demaq_net::Network::new(clock.clone(), 7));
    // The customer endpoint exists but is down; the postal service works.
    net.register("urn:customer", Arc::new(|_env| {}));
    let postal_log = Arc::new(std::sync::Mutex::new(Vec::<String>::new()));
    let pl = Arc::clone(&postal_log);
    net.register(
        "urn:postal",
        Arc::new(move |env| pl.lock().unwrap().push(env.body)),
    );
    net.disconnect("urn:customer");

    let s = Server::builder()
        .program(
            r#"
            create queue crmErrors kind basic mode persistent
            create queue crm kind basic mode persistent
            create queue customer kind outgoingGateway mode persistent endpoint "urn:customer"
            create queue postalService kind outgoingGateway mode persistent endpoint "urn:postal"
            create property orderID as xs:integer
              queue crm value //customerOrder/orderID
            create slicing retainOrders on orderID
            create rule confirmOrder for crm errorqueue crmErrors
              if (//customerOrder) then (: send confirmation :)
                let $confirmation := <confirmation>
                  {//orderID} (: additional details :)
                </confirmation>
                return do enqueue $confirmation into customer
            create rule deadLink for crmErrors
              if (/error/disconnectedTransport) then
                (: send confirmation via snail mail :)
                let $initialOrderID := /error/initialMessage//orderID
                let $address := <address>resolved-postal-address</address>
                let $request := <sendMessage>{$address}
                  {/error/initialMessage/*}</sendMessage>
                return do enqueue $request into postalService
            "#,
        )
        .in_memory()
        .sync_policy(SyncPolicy::Batch)
        .network(Arc::clone(&net))
        .build()
        .unwrap();

    s.enqueue_external("crm", "<customerOrder><orderID>7</orderID></customerOrder>")
        .unwrap();
    s.run_until_idle().unwrap();

    // The error queue received the disconnectedTransport error…
    let errors = s.queue_bodies("crmErrors").unwrap();
    assert_eq!(errors.len(), 1);
    assert!(
        errors[0].contains("<disconnectedTransport/>"),
        "{}",
        errors[0]
    );
    assert!(errors[0].contains("<rule>confirmOrder</rule>"));
    // …and the deadLink rule compensated via the postal service.
    let mail = postal_log.lock().unwrap();
    assert_eq!(mail.len(), 1);
    assert!(mail[0].contains("<sendMessage>"), "{}", mail[0]);
    assert!(mail[0].contains("<address>resolved-postal-address</address>"));
    assert!(
        mail[0].contains("<confirmation>"),
        "original confirmation embedded: {}",
        mail[0]
    );

    // The order is retained by the retainOrders slicing even after
    // processing (paper: messages "scattered throughout the system" encode
    // process state); the confirmation, error, and mail-request messages
    // are unsliced and purgeable.
    assert_eq!(s.gc().unwrap(), 3, "auxiliary messages purged");
    assert_eq!(
        s.queue_bodies("crm").unwrap().len(),
        1,
        "order retained by retainOrders"
    );
}

/// Sec. 2.1.1: "a priority level that determines the relative importance of
/// processing messages from this queue compared to other queues."
#[test]
fn priority_levels_affect_processing_order() {
    let s = server(
        r#"
        create queue urgent kind basic mode persistent priority 5
        create queue bulk kind basic mode persistent priority 0
        create queue trace kind basic mode persistent
        create rule u for urgent if (//m) then do enqueue <u/> into trace
        create rule b for bulk if (//m) then do enqueue <b/> into trace
        "#,
    );
    for _ in 0..3 {
        s.enqueue_external("bulk", "<m/>").unwrap();
    }
    for _ in 0..3 {
        s.enqueue_external("urgent", "<m/>").unwrap();
    }
    s.run_until_idle().unwrap();
    let trace = s.queue_bodies("trace").unwrap();
    assert_eq!(
        trace[..3],
        ["<u/>", "<u/>", "<u/>"],
        "urgent processed first: {trace:?}"
    );
}

/// Sec. 2.3.2: slice resets give slices multiple lifetimes (domain-name
/// registrar example).
#[test]
fn slice_lifetimes_domain_registrar() {
    let s = server(
        r#"
        create queue registrar kind basic mode persistent
        create queue audit kind basic mode persistent
        create property domain as xs:string fixed queue registrar value //domain
        create slicing byDomain on domain
        create rule ownerChange for byDomain
          if (qs:message()/transfer) then do reset
        create rule history for byDomain
          if (qs:message()/query) then
            do enqueue <history>{count(qs:slice())}</history> into audit
        "#,
    );
    // Old owner's messages.
    s.enqueue_external(
        "registrar",
        "<register><domain>example.org</domain></register>",
    )
    .unwrap();
    s.enqueue_external("registrar", "<update><domain>example.org</domain></update>")
        .unwrap();
    s.run_until_idle().unwrap();
    // Query sees both + itself.
    s.enqueue_external("registrar", "<query><domain>example.org</domain></query>")
        .unwrap();
    s.run_until_idle().unwrap();
    assert_eq!(s.queue_bodies("audit").unwrap(), ["<history>3</history>"]);

    // Ownership transfer starts a new lifetime.
    s.enqueue_external(
        "registrar",
        "<transfer><domain>example.org</domain></transfer>",
    )
    .unwrap();
    s.run_until_idle().unwrap();
    s.enqueue_external("registrar", "<query><domain>example.org</domain></query>")
        .unwrap();
    s.run_until_idle().unwrap();
    let audit = s.queue_bodies("audit").unwrap();
    assert_eq!(
        audit[1], "<history>1</history>",
        "old owner's messages invisible after reset: {audit:?}"
    );
}
