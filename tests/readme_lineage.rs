//! Keeps the README "Tracing a message's lineage" example honest: this
//! is the same code, verbatim, run as a test.

use demaq::Server;
use demaq::TraceFilter;

#[test]
fn readme_lineage_example() -> Result<(), Box<dyn std::error::Error>> {
    let server = Server::builder()
        .program(r#"
            create queue order kind basic mode persistent
            create queue approval kind basic mode persistent
            create queue archive kind basic mode persistent
            create rule approve for order
              if (//order) then do enqueue <approved/> into approval
            create rule archive for approval
              if (//approved) then do enqueue <archived/> into archive
        "#)
        .in_memory().build()?;
    let root = server.enqueue_external("order", "<order id='o-1'/>")?;
    server.run_until_idle()?;

    let archived = server.queue_messages("archive")?[0].id;
    let lineage = server.lineage(archived);
    assert_eq!(lineage.target.as_ref().unwrap().rule.as_deref(), Some("archive"));
    assert_eq!(lineage.ancestors.last().unwrap().msg, root.0);

    for p in server.rule_profiles() {
        println!("{}: {} fires, {} produced, p99 {}ns", p.rule, p.fires,
                 p.messages_produced, p.eval_ns_p99);
    }

    let tree = server.trace_tail_filtered(1024, &TraceFilter {
        trace_id: Some(root.0), ..Default::default()
    });
    assert!(tree.iter().any(|e| e.queue == "archive"));
    Ok(())
}
