//! Reproduction of Figure 2: "Slicing example (customer transactions)".
//!
//! Three physical queues (requests, orders, delivery notifications) hold
//! messages of many customers; slices group the messages of one customer
//! across all three queues — e.g. the slices for customers 23 and 42 in
//! the figure.

use demaq::Server;
use demaq_store::{store::SyncPolicy, PropValue};

#[test]
fn fig_2_customer_transaction_slices() {
    let s = Server::builder()
        .program(
            r#"
            create queue requests kind basic mode persistent
            create queue orders kind basic mode persistent
            create queue deliveryNotifications kind basic mode persistent
            create property customer as xs:integer fixed
              queue requests, orders, deliveryNotifications value //customerID
            create slicing customerTxns on customer
            "#,
        )
        .in_memory()
        .sync_policy(SyncPolicy::Batch)
        .build()
        .unwrap();

    // The figure's population: messages for customers 23, 47, 7, 42, 9, 15
    // spread over the three queues.
    let population: &[(&str, u32)] = &[
        ("requests", 23),
        ("requests", 47),
        ("requests", 15),
        ("orders", 7),
        ("orders", 42),
        ("orders", 23),
        ("orders", 23),
        ("deliveryNotifications", 9),
        ("deliveryNotifications", 42),
        ("deliveryNotifications", 23),
    ];
    for (queue, customer) in population {
        s.enqueue_external(
            queue,
            &format!("<msg><customerID>{customer}</customerID></msg>"),
        )
        .unwrap();
    }
    s.run_until_idle().unwrap();

    let store = s.store();
    // Slice for customer 23 spans all three queues (4 messages).
    let slice23 = store.slice_members("customerTxns", &PropValue::Int(23));
    assert_eq!(slice23.len(), 4);
    let queues23: std::collections::HashSet<String> = slice23
        .iter()
        .map(|m| store.message(*m).unwrap().queue)
        .collect();
    assert_eq!(
        queues23.len(),
        3,
        "slice 23 crosses requests/orders/notifications"
    );

    // Slice for customer 42: order + delivery notification.
    let slice42 = store.slice_members("customerTxns", &PropValue::Int(42));
    assert_eq!(slice42.len(), 2);

    // Singleton slices.
    for c in [47, 7, 9, 15] {
        assert_eq!(
            store
                .slice_members("customerTxns", &PropValue::Int(c))
                .len(),
            1,
            "customer {c}"
        );
    }
    // Messages appear in arrival order within a slice.
    let payloads: Vec<String> = slice23
        .iter()
        .map(|m| store.message(*m).unwrap().id.0.to_string())
        .collect();
    let mut sorted = payloads.clone();
    sorted.sort_by_key(|s| s.parse::<u64>().unwrap());
    assert_eq!(payloads, sorted);

    // Active slice keys of the slicing (one per customer).
    let keys = store.slice_keys("customerTxns");
    assert_eq!(keys.len(), 6);
}
