#![allow(clippy::all)] // vendored shim: not a first-party lint target
//! Offline mini-criterion.
//!
//! Implements the subset of the criterion 0.5 API the bench suite uses:
//! `criterion_group!` / `criterion_main!`, `Criterion::benchmark_group`,
//! `BenchmarkGroup::{sample_size, throughput, measurement_time,
//! bench_with_input, bench_function, finish}`, `Bencher::{iter,
//! iter_custom}`, `BenchmarkId`, `Throughput`, and `black_box`.
//!
//! Instead of criterion's statistical machinery it takes `sample_size`
//! timed samples of one iteration each (after one warmup), reports
//! median/min/max per benchmark on stdout, and appends a JSON line per
//! benchmark to `target/criterion-lite.jsonl` so snapshots can be diffed.

use std::fmt::Display;
use std::io::Write as _;
use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            name: name.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            name: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }

    fn label(&self) -> String {
        match &self.parameter {
            Some(p) if self.name.is_empty() => p.clone(),
            Some(p) => format!("{}/{}", self.name, p),
            None => self.name.clone(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> BenchmarkId {
        BenchmarkId {
            name: name.to_string(),
            parameter: None,
        }
    }
}

pub struct Bencher {
    sample: Duration,
}

impl Bencher {
    /// Time one execution of `f` (called once per sample).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        black_box(f());
        self.sample = start.elapsed();
    }

    /// The routine reports its own measured duration for `iters`
    /// iterations; we normalize to per-iteration time.
    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut f: F) {
        let iters = 8;
        let total = f(iters);
        self.sample = total / iters as u32;
    }
}

pub struct Criterion {
    _private: (),
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { _private: () }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let mut g = self.benchmark_group(name.to_string());
        g.bench_with_id(BenchmarkId::from("self"), f);
        g.finish();
        self
    }
}

pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = id.label();
        self.run(&label, |b| f(b, input));
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.bench_with_id(id.into(), f);
        self
    }

    fn bench_with_id<F: FnMut(&mut Bencher)>(&mut self, id: BenchmarkId, mut f: F) {
        let label = id.label();
        self.run(&label, |b| f(b));
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, label: &str, mut f: F) {
        // Keep offline runs bounded: cap samples, always one warmup.
        let samples = self.sample_size.min(20);
        let mut b = Bencher {
            sample: Duration::ZERO,
        };
        f(&mut b); // warmup
        let mut times: Vec<Duration> = Vec::with_capacity(samples);
        for _ in 0..samples {
            f(&mut b);
            times.push(b.sample);
        }
        times.sort();
        let median = times[times.len() / 2];
        let min = times[0];
        let max = times[times.len() - 1];
        let full = format!("{}/{}", self.name, label);
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if median > Duration::ZERO => {
                format!(" ({:.0} elem/s)", n as f64 / median.as_secs_f64())
            }
            Some(Throughput::Bytes(n)) if median > Duration::ZERO => {
                format!(" ({:.0} B/s)", n as f64 / median.as_secs_f64())
            }
            _ => String::new(),
        };
        println!(
            "bench {full}: median {median:?} min {min:?} max {max:?} over {samples} samples{rate}"
        );
        let _ = append_jsonl(&full, median, min, max);
    }

    pub fn finish(self) {}
}

fn append_jsonl(name: &str, median: Duration, min: Duration, max: Duration) -> std::io::Result<()> {
    let dir = std::path::Path::new("target");
    std::fs::create_dir_all(dir)?;
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(dir.join("criterion-lite.jsonl"))?;
    writeln!(
        f,
        "{{\"bench\":\"{}\",\"median_ns\":{},\"min_ns\":{},\"max_ns\":{}}}",
        name.replace('"', "'"),
        median.as_nanos(),
        min.as_nanos(),
        max.as_nanos()
    )
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3).throughput(Throughput::Elements(10));
        let mut ran = 0;
        group.bench_with_input(BenchmarkId::new("id", 1), &5u64, |b, &n| {
            b.iter(|| {
                ran += 1;
                (0..n).sum::<u64>()
            });
        });
        group.finish();
        assert!(ran >= 4, "warmup + samples: {ran}");
    }

    #[test]
    fn iter_custom_normalizes() {
        let mut b = Bencher {
            sample: Duration::ZERO,
        };
        b.iter_custom(|iters| Duration::from_nanos(100 * iters));
        assert_eq!(b.sample, Duration::from_nanos(100));
    }
}
