#![allow(clippy::all)] // vendored shim: not a first-party lint target
//! Offline shim for the `parking_lot` API surface this workspace uses.
//!
//! Wraps `std::sync` primitives: no lock poisoning (a poisoned lock is
//! recovered transparently, matching parking_lot semantics), `lock()` /
//! `read()` / `write()` return guards directly, and `Condvar::wait_for`
//! takes the guard by `&mut` and returns a [`WaitTimeoutResult`].

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync;
use std::time::Duration;

pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

pub struct MutexGuard<'a, T: ?Sized>(Option<sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(
            self.0.lock().unwrap_or_else(|e| e.into_inner()),
        ))
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(sync::TryLockError::Poisoned(e)) => Some(MutexGuard(Some(e.into_inner()))),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

impl<'a, T: ?Sized> Deref for MutexGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard taken")
    }
}

impl<'a, T: ?Sized> DerefMut for MutexGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard taken")
    }
}

pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

pub struct RwLockReadGuard<'a, T: ?Sized>(sync::RwLockReadGuard<'a, T>);
pub struct RwLockWriteGuard<'a, T: ?Sized>(sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<'a, T: ?Sized> Deref for RwLockReadGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<'a, T: ?Sized> Deref for RwLockWriteGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<'a, T: ?Sized> DerefMut for RwLockWriteGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

#[derive(Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    pub fn new() -> Condvar {
        Condvar(sync::Condvar::new())
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard taken");
        let inner = self.0.wait(inner).unwrap_or_else(|e| e.into_inner());
        guard.0 = Some(inner);
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard taken");
        let (inner, res) = match self.0.wait_timeout(inner, timeout) {
            Ok(pair) => pair,
            Err(e) => e.into_inner(),
        };
        guard.0 = Some(inner);
        WaitTimeoutResult(res.timed_out())
    }

    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1]);
        assert_eq!(l.read().len(), 1);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(res.timed_out());
    }

    #[test]
    fn condvar_notify_wakes() {
        let m = Arc::new(Mutex::new(false));
        let cv = Arc::new(Condvar::new());
        let (m2, cv2) = (Arc::clone(&m), Arc::clone(&cv));
        let h = std::thread::spawn(move || {
            *m2.lock() = true;
            cv2.notify_all();
        });
        let mut g = m.lock();
        while !*g {
            let r = cv.wait_for(&mut g, Duration::from_secs(5));
            assert!(!r.timed_out());
        }
        h.join().unwrap();
    }
}
