#![allow(clippy::all)] // vendored shim: not a first-party lint target
//! Offline mini-proptest.
//!
//! Implements the subset of the proptest 1.x API used by this workspace's
//! property tests: the [`Strategy`] trait with `prop_map` /
//! `prop_recursive`, [`Just`], numeric range strategies, tuple strategies,
//! a regex-subset string strategy (`"[a-z]{1,8}"`-style patterns),
//! `collection::{vec, hash_set}`, `prop_oneof!`, `any::<T>()`, and the
//! `proptest!` test macro with `#![proptest_config(..)]`.
//!
//! Differences from real proptest: generation is deterministic per test
//! (seeded from the test name, overridable with `PROPTEST_SEED`), and there
//! is **no shrinking** — a failing case panics with the generated inputs
//! visible in the assertion message.

use std::collections::HashSet;
use std::hash::Hash;
use std::marker::PhantomData;
use std::ops::Range;
use std::sync::Arc;

pub mod test_runner {
    /// Deterministic SplitMix64 RNG driving all generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn seed_from_u64(seed: u64) -> TestRng {
            TestRng {
                state: seed ^ 0x5851f42d4c957f2d,
            }
        }

        /// Seed derived from a test name (stable across runs), unless
        /// `PROPTEST_SEED` overrides it.
        pub fn from_name(name: &str) -> TestRng {
            if let Ok(s) = std::env::var("PROPTEST_SEED") {
                if let Ok(seed) = s.parse::<u64>() {
                    return TestRng::seed_from_u64(seed);
                }
            }
            let mut h: u64 = 0xcbf29ce484222325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            TestRng::seed_from_u64(h)
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }

        pub fn below(&mut self, n: u64) -> u64 {
            if n == 0 {
                0
            } else {
                self.next_u64() % n
            }
        }

        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

use test_runner::TestRng;

/// A value generator. `gen_one` produces one value per test case.
pub trait Strategy {
    type Value;

    fn gen_one(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }

    /// Recursive strategy: at each level choose between the leaf and one
    /// level of `recurse` applied to the previous strategy. `_desired_size`
    /// and `_branch_size` are accepted for API compatibility.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth {
            let deeper = recurse(strat.clone()).boxed();
            strat = Union::new(vec![leaf.clone(), deeper]).boxed();
        }
        strat
    }
}

/// Type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<V>(Arc<dyn Strategy<Value = V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn gen_one(&self, rng: &mut TestRng) -> V {
        self.0.gen_one(rng)
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn gen_one(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.gen_one(rng))
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn gen_one(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed alternatives (the `prop_oneof!` backend).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Union<V> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn gen_one(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].gen_one(rng)
    }
}

// ---- numeric ranges ---------------------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn gen_one(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128 as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn gen_one(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn gen_one(&self, rng: &mut TestRng) -> f32 {
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

// ---- any::<T>() -------------------------------------------------------------

pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite doubles spanning a wide magnitude range.
        let mag = rng.unit_f64() * 600.0 - 300.0;
        let sign = if rng.next_u64() & 1 == 1 { -1.0 } else { 1.0 };
        sign * mag.exp2()
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        char::from_u32((b' ' as u32) + rng.below(95) as u32).unwrap_or('?')
    }
}

/// `any::<T>()` strategy over [`Arbitrary`] types.
pub struct Any<T>(PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn gen_one(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

// ---- tuples -----------------------------------------------------------------

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn gen_one(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.gen_one(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (S0.0)
    (S0.0, S1.1)
    (S0.0, S1.1, S2.2)
    (S0.0, S1.1, S2.2, S3.3)
    (S0.0, S1.1, S2.2, S3.3, S4.4)
    (S0.0, S1.1, S2.2, S3.3, S4.4, S5.5)
}

// ---- regex-subset string strategies -----------------------------------------

/// One regex atom: a set of candidate chars plus a repetition range.
#[derive(Debug, Clone)]
struct PatternAtom {
    chars: Vec<char>,
    min: usize,
    max: usize,
}

fn parse_class(pattern: &[char], mut i: usize) -> (Vec<char>, usize) {
    // `pattern[i]` is the char after '['.
    let mut chars = Vec::new();
    while i < pattern.len() && pattern[i] != ']' {
        let c = pattern[i];
        if i + 2 < pattern.len() && pattern[i + 1] == '-' && pattern[i + 2] != ']' {
            let (lo, hi) = (c as u32, pattern[i + 2] as u32);
            for v in lo..=hi {
                if let Some(ch) = char::from_u32(v) {
                    chars.push(ch);
                }
            }
            i += 3;
        } else {
            chars.push(c);
            i += 1;
        }
    }
    (chars, i + 1) // skip ']'
}

fn parse_quantifier(pattern: &[char], mut i: usize) -> (usize, usize, usize) {
    // Returns (min, max, next index). Supports `{m}`, `{m,n}`, `?`, `*`, `+`.
    if i < pattern.len() {
        match pattern[i] {
            '{' => {
                let mut j = i + 1;
                let mut digits = String::new();
                while j < pattern.len() && pattern[j] != '}' {
                    digits.push(pattern[j]);
                    j += 1;
                }
                let (min, max) = match digits.split_once(',') {
                    Some((a, b)) => (
                        a.trim().parse().unwrap_or(0),
                        b.trim().parse().unwrap_or(8),
                    ),
                    None => {
                        let n = digits.trim().parse().unwrap_or(1);
                        (n, n)
                    }
                };
                return (min, max, j + 1);
            }
            '?' => return (0, 1, i + 1),
            '*' => return (0, 8, i + 1),
            '+' => {
                i += 1;
                return (1, 8, i);
            }
            _ => {}
        }
    }
    (1, 1, i)
}

fn parse_pattern(pattern: &str) -> Vec<PatternAtom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let candidates = match chars[i] {
            '[' => {
                let (set, next) = parse_class(&chars, i + 1);
                i = next;
                set
            }
            '.' => {
                i += 1;
                // Printable ASCII, as proptest's `.` effectively yields for
                // the never-panics tests here.
                (b' '..=b'~').map(|b| b as char).collect()
            }
            '\\' if i + 1 < chars.len() => {
                let c = chars[i + 1];
                i += 2;
                vec![c]
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        let (min, max, next) = parse_quantifier(&chars, i);
        i = next;
        atoms.push(PatternAtom {
            chars: candidates,
            min,
            max,
        });
    }
    atoms
}

impl Strategy for &'static str {
    type Value = String;
    fn gen_one(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for atom in &atoms {
            let n = atom.min + rng.below((atom.max - atom.min + 1) as u64) as usize;
            for _ in 0..n {
                if atom.chars.is_empty() {
                    continue;
                }
                let i = rng.below(atom.chars.len() as u64) as usize;
                out.push(atom.chars[i]);
            }
        }
        out
    }
}

// ---- collections ------------------------------------------------------------

pub mod collection {
    use super::*;

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_one(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.end.saturating_sub(self.size.start).max(1);
            let n = self.size.start + rng.below(span as u64) as usize;
            (0..n).map(|_| self.element.gen_one(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    pub struct HashSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for HashSetStrategy<S>
    where
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;
        fn gen_one(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let span = self.size.end.saturating_sub(self.size.start).max(1);
            let want = self.size.start + rng.below(span as u64) as usize;
            let mut out = HashSet::new();
            // Bounded retries: duplicate draws shrink the set, never hang.
            for _ in 0..want.saturating_mul(10).max(8) {
                if out.len() >= want {
                    break;
                }
                out.insert(self.element.gen_one(rng));
            }
            out
        }
    }

    pub fn hash_set<S: Strategy>(element: S, size: Range<usize>) -> HashSetStrategy<S> {
        HashSetStrategy { element, size }
    }
}

// ---- config & macros --------------------------------------------------------

#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 48 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Skip the current generated case when its precondition fails.
/// Expands to `continue` of the per-case loop inside `proptest!`.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            continue;
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($(: $weight:literal =>)? $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr)
        $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut prop_rng =
                    $crate::test_runner::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
                for _prop_case in 0..cfg.cases {
                    $(let $pat = $crate::Strategy::gen_one(&($strat), &mut prop_rng);)+
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, Union,
    };
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn regex_subset_shapes() {
        let mut rng = TestRng::seed_from_u64(3);
        for _ in 0..200 {
            let s = Strategy::gen_one(&"[a-z]{1,8}", &mut rng);
            assert!((1..=8).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));

            let t = Strategy::gen_one(&"[a-zA-Z][a-zA-Z0-9_.-]{0,8}", &mut rng);
            assert!(!t.is_empty() && t.len() <= 9);
            assert!(t.chars().next().unwrap().is_ascii_alphabetic());

            let p = Strategy::gen_one(&"[ -~]{0,12}", &mut rng);
            assert!(p.len() <= 12);
            assert!(p.bytes().all(|b| (b' '..=b'~').contains(&b)));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::seed_from_u64(4);
        for _ in 0..500 {
            let v = Strategy::gen_one(&(-1000i64..1000), &mut rng);
            assert!((-1000..1000).contains(&v));
            let f = Strategy::gen_one(&(0.0f64..0.7), &mut rng);
            assert!((0.0..0.7).contains(&f));
        }
    }

    #[test]
    fn oneof_and_map_compose() {
        let strat = prop_oneof![
            Just("a".to_string()),
            "[b-d]{1,2}".prop_map(|s| s),
            (0u8..5).prop_map(|n| n.to_string()),
        ];
        let mut rng = TestRng::seed_from_u64(5);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(Strategy::gen_one(&strat, &mut rng));
        }
        assert!(seen.len() > 3, "union explores all arms: {seen:?}");
    }

    #[test]
    fn recursive_terminates() {
        #[derive(Debug)]
        #[allow(dead_code)] // variant payloads only inspected via Debug
        enum Tree {
            Leaf(u8),
            Node(Vec<Tree>),
        }
        let leaf = (0u8..10).prop_map(Tree::Leaf);
        let strat = leaf.prop_recursive(3, 24, 4, |inner| {
            crate::collection::vec(inner, 0..4).prop_map(Tree::Node)
        });
        let mut rng = TestRng::seed_from_u64(6);
        for _ in 0..100 {
            let t = Strategy::gen_one(&strat, &mut rng);
            fn depth(t: &Tree) -> usize {
                match t {
                    Tree::Leaf(_) => 0,
                    Tree::Node(cs) => 1 + cs.iter().map(depth).max().unwrap_or(0),
                }
            }
            assert!(depth(&t) <= 4);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_binds_patterns((a, b) in (0u8..10, 0u8..10), v in crate::collection::vec(0i64..5, 0..4)) {
            prop_assume!(a != 200);
            prop_assert!(a < 10 && b < 10);
            prop_assert_eq!(v.iter().filter(|x| **x >= 5).count(), 0);
        }
    }
}
