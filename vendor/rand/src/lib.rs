#![allow(clippy::all)] // vendored shim: not a first-party lint target
//! Offline shim for the small slice of the `rand` 0.8 API this workspace
//! uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`, and `Rng::gen` for
//! primitive types. The generator is SplitMix64 — deterministic per seed,
//! which is exactly what the simulated network's failure injection needs.

pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }

    /// Uniform in `[low, high)` for u64-expressible integer ranges.
    fn gen_range(&mut self, range: std::ops::Range<u64>) -> u64 {
        let span = range.end - range.start;
        assert!(span > 0, "empty range");
        range.start + self.next_u64() % span
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }
}
