#![allow(clippy::all)] // vendored shim: not a first-party lint target
//! Offline shim for the `tempfile::TempDir` API this workspace uses.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::{env, fs, io};

static NEXT: AtomicU64 = AtomicU64::new(0);

/// A directory under the system temp dir, removed on drop.
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    pub fn new() -> io::Result<TempDir> {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.subsec_nanos())
            .unwrap_or(0);
        let path = env::temp_dir().join(format!(
            "demaq-tmp-{}-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed),
            nanos,
        ));
        fs::create_dir_all(&path)?;
        Ok(TempDir { path })
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Consume without deleting, returning the path.
    pub fn into_path(self) -> PathBuf {
        let path = self.path.clone();
        std::mem::forget(self);
        path
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.path);
    }
}

/// Create a fresh temp dir (function-style API).
pub fn tempdir() -> io::Result<TempDir> {
    TempDir::new()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn creates_and_removes() {
        let dir = TempDir::new().unwrap();
        let p = dir.path().to_path_buf();
        assert!(p.is_dir());
        fs::write(p.join("f"), b"x").unwrap();
        drop(dir);
        assert!(!p.exists());
    }

    #[test]
    fn dirs_are_unique() {
        let a = TempDir::new().unwrap();
        let b = TempDir::new().unwrap();
        assert_ne!(a.path(), b.path());
    }
}
